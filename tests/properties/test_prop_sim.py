"""Property-based tests on the packet simulator.

Invariants: everything is delivered; per-packet latency is at least the
path length; total link traversals equal total hops; and for ODR the link
counters equal the analytic loads for any placement.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.network import SimNetwork
from repro.sim.workloads import complete_exchange_packets
from repro.torus.topology import Torus


@st.composite
def sim_scenario(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=2))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=2, max_value=min(6, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return Placement(torus, ids), seed


class TestSimInvariants:
    @settings(max_examples=30, deadline=None)
    @given(sim_scenario())
    def test_everything_delivered(self, scenario):
        placement, seed = scenario
        routing = OrderedDimensionalRouting(placement.torus.d)
        packets = complete_exchange_packets(placement, routing, seed=seed)
        result = CycleEngine(SimNetwork(placement.torus)).run(packets)
        assert result.delivered == len(packets)

    @settings(max_examples=30, deadline=None)
    @given(sim_scenario())
    def test_latency_at_least_path_length(self, scenario):
        placement, seed = scenario
        routing = OrderedDimensionalRouting(placement.torus.d)
        packets = complete_exchange_packets(placement, routing, seed=seed)
        CycleEngine(SimNetwork(placement.torus)).run(packets)
        for p in packets:
            assert p.latency >= p.path_length

    @settings(max_examples=30, deadline=None)
    @given(sim_scenario())
    def test_total_traversals_equal_total_hops(self, scenario):
        placement, seed = scenario
        routing = OrderedDimensionalRouting(placement.torus.d)
        packets = complete_exchange_packets(placement, routing, seed=seed)
        result = CycleEngine(SimNetwork(placement.torus)).run(packets)
        assert result.link_counts.sum() == sum(p.path_length for p in packets)

    @settings(max_examples=20, deadline=None)
    @given(sim_scenario())
    def test_odr_counters_equal_analytic(self, scenario):
        placement, seed = scenario
        routing = OrderedDimensionalRouting(placement.torus.d)
        packets = complete_exchange_packets(placement, routing, seed=seed)
        result = CycleEngine(SimNetwork(placement.torus)).run(packets)
        assert np.allclose(
            result.link_counts.astype(float), odr_edge_loads(placement)
        )

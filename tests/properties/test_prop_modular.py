"""Property-based tests: cyclic and Lee distance are metrics."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.modular import (
    cyclic_distance,
    lee_distance,
    minimal_correction,
    minimal_correction_array,
)

ks = st.integers(min_value=2, max_value=64)


@st.composite
def ring_pair(draw):
    k = draw(ks)
    i = draw(st.integers(min_value=0, max_value=k - 1))
    j = draw(st.integers(min_value=0, max_value=k - 1))
    return k, i, j


@st.composite
def ring_triple(draw):
    k = draw(ks)
    vals = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(3)]
    return (k, *vals)


class TestCyclicDistanceMetric:
    @given(ring_pair())
    def test_nonnegative_and_bounded(self, data):
        k, i, j = data
        d = cyclic_distance(i, j, k)
        assert 0 <= d <= k // 2

    @given(ring_pair())
    def test_symmetry(self, data):
        k, i, j = data
        assert cyclic_distance(i, j, k) == cyclic_distance(j, i, k)

    @given(ring_pair())
    def test_identity(self, data):
        k, i, j = data
        assert (cyclic_distance(i, j, k) == 0) == (i == j)

    @given(ring_triple())
    def test_triangle_inequality(self, data):
        k, a, b, c = data
        assert cyclic_distance(a, c, k) <= (
            cyclic_distance(a, b, k) + cyclic_distance(b, c, k)
        )

    @given(ring_pair(), st.integers(min_value=-3, max_value=3))
    def test_translation_invariance(self, data, shift):
        k, i, j = data
        assert cyclic_distance(i, j, k) == cyclic_distance(
            (i + shift) % k, (j + shift) % k, k
        )


@st.composite
def torus_pair(draw):
    k = draw(st.integers(min_value=2, max_value=16))
    d = draw(st.integers(min_value=1, max_value=5))
    p = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    q = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    return k, p, q


class TestLeeDistanceMetric:
    @given(torus_pair())
    def test_symmetry(self, data):
        k, p, q = data
        assert lee_distance(p, q, k) == lee_distance(q, p, k)

    @given(torus_pair())
    def test_identity(self, data):
        k, p, q = data
        assert (lee_distance(p, q, k) == 0) == (p == q)

    @given(torus_pair())
    def test_bounded_by_diameter(self, data):
        k, p, q = data
        assert lee_distance(p, q, k) <= len(p) * (k // 2)


class TestMinimalCorrection:
    @given(ring_pair())
    def test_reaches_target(self, data):
        k, i, j = data
        delta, _ = minimal_correction(i, j, k)
        assert (i + delta) % k == j

    @given(ring_pair())
    def test_magnitude_is_cyclic_distance(self, data):
        k, i, j = data
        delta, _ = minimal_correction(i, j, k)
        assert abs(delta) == cyclic_distance(i, j, k)

    @given(ring_pair())
    def test_tie_only_at_half_ring(self, data):
        k, i, j = data
        _, tied = minimal_correction(i, j, k)
        assert tied == (k % 2 == 0 and (j - i) % k == k // 2)


class TestScalarArrayAgreement:
    """The scalar and vectorized minimal corrections are the same function.

    Exhaustive over every ``(p, q, k)`` with ``k <= 12`` — covering both
    parities and the even-``k`` half-ring ties — so the two
    implementations can never drift apart silently.
    """

    def test_exhaustive_agreement(self):
        for k in range(2, 13):
            ps, qs = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
            ps, qs = ps.ravel(), qs.ravel()
            deltas, ties = minimal_correction_array(ps, qs, k)
            for p, q, delta, tied in zip(ps, qs, deltas, ties):
                s_delta, s_tied = minimal_correction(int(p), int(q), k)
                assert s_delta == delta, (p, q, k)
                assert s_tied == tied, (p, q, k)

    def test_even_k_ties_resolve_plus(self):
        for k in range(2, 13, 2):
            ps = np.arange(k)
            deltas, ties = minimal_correction_array(ps, (ps + k // 2) % k, k)
            assert np.all(ties)
            assert np.all(deltas == k // 2)  # the + direction, scalar policy
            for p in ps:
                assert minimal_correction(int(p), int(p + k // 2), k) == (
                    k // 2,
                    True,
                )

"""Property-based tests on placement families."""

import math

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.placements.analysis import is_uniform, layer_counts
from repro.placements.linear import linear_placement, solve_linear_congruence
from repro.placements.multiple import multiple_linear_placement
from repro.torus.topology import Torus

small_params = st.tuples(
    st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=3)
).filter(lambda kd: kd[0] ** kd[1] <= 600)


class TestLinearPlacements:
    @given(small_params, st.integers(min_value=0, max_value=20))
    def test_size_law(self, kd, offset):
        k, d = kd
        p = linear_placement(Torus(k, d), offset=offset)
        assert len(p) == k ** (d - 1)

    @given(small_params, st.integers(min_value=0, max_value=20))
    def test_membership_equation(self, kd, offset):
        k, d = kd
        p = linear_placement(Torus(k, d), offset=offset)
        assert np.all(p.coords().sum(axis=1) % k == offset % k)

    @given(small_params)
    def test_uniform(self, kd):
        k, d = kd
        assume(d >= 2)
        p = linear_placement(Torus(k, d))
        assert is_uniform(p)
        # exactly k^(d-2) per principal subtorus (Sec. 5)
        for dim in range(d):
            assert np.all(layer_counts(p, dim) == k ** (d - 2))

    @given(
        small_params,
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=7),
    )
    def test_general_coefficients(self, kd, coeff, offset):
        k, d = kd
        assume(math.gcd(coeff, k) == 1)
        coeffs = [coeff] + [1] * (d - 1)
        coords = solve_linear_congruence(k, d, coeffs, offset)
        assert coords.shape[0] == k ** (d - 1)
        assert np.all((coords @ np.array(coeffs)) % k == offset % k)


class TestMultipleLinear:
    @given(small_params, st.integers(min_value=1, max_value=4))
    def test_size_law(self, kd, t):
        k, d = kd
        assume(t <= k)
        p = multiple_linear_placement(Torus(k, d), t)
        assert len(p) == t * k ** (d - 1)

    @given(small_params, st.integers(min_value=1, max_value=4))
    def test_classes_cover_consecutive_residues(self, kd, t):
        k, d = kd
        assume(t <= k)
        p = multiple_linear_placement(Torus(k, d), t)
        sums = set((p.coords().sum(axis=1) % k).tolist())
        assert sums == set(range(t))

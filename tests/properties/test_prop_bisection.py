"""Property-based tests on the bisection machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bisection.dimension_cut import best_dimension_cut
from repro.bisection.hyperplane import hyperplane_bisection
from repro.bisection.separator import separator_edges, separator_size
from repro.load.formulas import (
    appendix_sweep_bound,
    corollary1_bisection_bound,
)
from repro.placements.base import Placement
from repro.torus.topology import Torus


@st.composite
def torus_and_subset(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=3))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=1, max_value=min(10, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    return torus, np.array(sorted(ids))


class TestSeparator:
    @settings(max_examples=40, deadline=None)
    @given(torus_and_subset())
    def test_complement_symmetry(self, data):
        torus, ids = data
        comp = np.setdiff1d(np.arange(torus.num_nodes), ids)
        if comp.size == 0:
            assert separator_size(torus, ids) == 0
        else:
            assert np.array_equal(
                separator_edges(torus, ids), separator_edges(torus, comp)
            )

    @settings(max_examples=40, deadline=None)
    @given(torus_and_subset())
    def test_edges_actually_cross(self, data):
        torus, ids = data
        inside = set(ids.tolist())
        for eid in separator_edges(torus, ids):
            e = torus.edges.decode(int(eid))
            assert (e.tail in inside) != (e.head in inside)

    @settings(max_examples=40, deadline=None)
    @given(torus_and_subset())
    def test_size_bounded_by_degree_sum(self, data):
        torus, ids = data
        assert separator_size(torus, ids) <= ids.size * 4 * torus.d


class TestBisections:
    @settings(max_examples=30, deadline=None)
    @given(torus_and_subset())
    def test_hyperplane_balance_and_bounds(self, data):
        torus, ids = data
        placement = Placement(torus, ids)
        sweep = hyperplane_bisection(placement)
        assert abs(sweep.processors_a - sweep.processors_b) <= 1
        assert sweep.array_edges_crossed <= appendix_sweep_bound(torus.k, torus.d)
        assert sweep.torus_cut_size <= corollary1_bisection_bound(
            torus.k, torus.d
        )

    @settings(max_examples=30, deadline=None)
    @given(torus_and_subset())
    def test_dimension_cut_size_is_theorem1(self, data):
        torus, ids = data
        placement = Placement(torus, ids)
        cut = best_dimension_cut(placement)
        assert cut.cut_size == 4 * torus.k ** (torus.d - 1)
        # two-cut construction balance is within one whenever any dimension
        # admits a balanced band; always within the placement size
        assert 0 <= cut.imbalance <= len(placement)

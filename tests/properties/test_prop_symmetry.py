"""Property-based tests: torus automorphisms preserve the load profile."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.base import Placement
from repro.placements.symmetry import (
    permute_dimensions,
    reflect_dimensions,
    translate_placement,
)
from repro.torus.topology import Torus


@st.composite
def placement_and_transform(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=3))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=2, max_value=min(6, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    offset = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d)]
    perm = draw(st.permutations(list(range(d))))
    return Placement(torus, ids), offset, list(perm)


class TestAutomorphismInvariance:
    @settings(max_examples=30, deadline=None)
    @given(placement_and_transform())
    def test_translation_preserves_odr_load_multiset(self, data):
        placement, offset, _perm = data
        moved = translate_placement(placement, offset)
        assert np.allclose(
            np.sort(odr_edge_loads(placement)), np.sort(odr_edge_loads(moved))
        )

    @settings(max_examples=20, deadline=None)
    @given(placement_and_transform())
    def test_permutation_preserves_udr_load_multiset(self, data):
        placement, _offset, perm = data
        moved = permute_dimensions(placement, perm)
        # sorted comparison with tolerance: the fractional |A|!|B|!/s! sums
        # accumulate in different orders under the permutation
        assert np.allclose(
            np.sort(udr_edge_loads(placement)), np.sort(udr_edge_loads(moved))
        )

    @settings(max_examples=20, deadline=None)
    @given(placement_and_transform())
    def test_transforms_preserve_size(self, data):
        placement, offset, perm = data
        assert len(translate_placement(placement, offset)) == len(placement)
        assert len(permute_dimensions(placement, perm)) == len(placement)
        assert len(reflect_dimensions(placement, [0])) == len(placement)

"""Property-based tests on the routing algorithms.

Invariants from the paper: every path the algorithms return is a
*shortest* path (Definition 3), ODR returns exactly one canonical path,
UDR returns exactly s!, and the full relation's count matches the
multinomial closed form.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.minimal import AllMinimalPaths, count_minimal_paths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


@st.composite
def torus_and_pair(draw, max_k=7, max_d=3):
    k = draw(st.integers(min_value=2, max_value=max_k))
    d = draw(st.integers(min_value=1, max_value=max_d))
    p = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    q = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    return Torus(k, d), p, q


class TestODR:
    @given(torus_and_pair())
    def test_single_minimal_path(self, data):
        torus, p, q = data
        odr = OrderedDimensionalRouting(torus.d)
        paths = odr.paths(torus, p, q)
        assert len(paths) == 1
        assert paths[0].length == torus.lee_distance(p, q)

    @given(torus_and_pair())
    def test_endpoints(self, data):
        torus, p, q = data
        path = OrderedDimensionalRouting(torus.d).path(torus, p, q)
        assert path.source == torus.node_id(p)
        assert path.destination == torus.node_id(q)

    @given(torus_and_pair())
    def test_dimension_monotone(self, data):
        torus, p, q = data
        path = OrderedDimensionalRouting(torus.d).path(torus, p, q)
        dims = [torus.edges.decode(e).dim for e in path.edge_ids]
        assert dims == sorted(dims)


class TestUDR:
    @given(torus_and_pair())
    def test_s_factorial_paths(self, data):
        torus, p, q = data
        udr = UnorderedDimensionalRouting()
        s = len(udr.differing_dims(torus, p, q))
        paths = udr.paths(torus, p, q)
        assert len(paths) == max(1, math.factorial(s))
        assert udr.num_paths(torus, p, q) == math.factorial(s)

    @given(torus_and_pair())
    def test_all_paths_minimal_and_distinct(self, data):
        torus, p, q = data
        udr = UnorderedDimensionalRouting()
        paths = udr.paths(torus, p, q)
        lee = torus.lee_distance(p, q)
        assert all(path.length == lee for path in paths)
        assert len({path.nodes for path in paths}) == len(paths)


class TestAllMinimal:
    @settings(max_examples=40, deadline=None)
    @given(torus_and_pair(max_k=5, max_d=2))
    def test_count_matches_enumeration(self, data):
        torus, p, q = data
        algo = AllMinimalPaths()
        paths = algo.paths(torus, p, q)
        assert len(paths) == count_minimal_paths(torus, p, q)
        # distinctness is per directed-link sequence: on k = 2 the tied +/−
        # directions visit the same nodes over distinct parallel links
        assert len({path.edge_ids for path in paths}) == len(paths)

    @settings(max_examples=40, deadline=None)
    @given(torus_and_pair(max_k=5, max_d=2))
    def test_udr_subset_of_all_minimal(self, data):
        torus, p, q = data
        all_nodes = {
            path.nodes for path in AllMinimalPaths().paths(torus, p, q)
        }
        udr_nodes = {
            path.nodes
            for path in UnorderedDimensionalRouting().paths(torus, p, q)
        }
        assert udr_nodes <= all_nodes

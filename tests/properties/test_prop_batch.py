"""Property: batched evaluation is indistinguishable from sequential.

Hypothesis drives random batches — linear, random, and subtorus
placements mixed freely on tori up to :math:`T_5^3`, under ODR, UDR, and
all-minimal routing — and checks that every row of
``LoadEngine.edge_loads_many`` is *bit*-identical (``np.array_equal``,
not allclose) to the corresponding sequential ``edge_loads`` call, for
any chunking ``batch_size``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.engine import LoadEngine
from repro.load.plancache import PlanCache, using_plan_cache
from repro.placements.fully import single_subtorus_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


@st.composite
def batch_case(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=3))
    torus = Torus(k, d)

    def one_placement():
        family = draw(st.sampled_from(["linear", "random", "subtorus"]))
        if family == "linear":
            # Definition 10 needs one coefficient coprime to k — pin the
            # last to 1 and let the rest roam.
            coeffs = draw(
                st.lists(
                    st.integers(min_value=0, max_value=k - 1),
                    min_size=d - 1,
                    max_size=d - 1,
                )
            ) + [1]
            offset = draw(st.integers(min_value=0, max_value=k - 1))
            return linear_placement(torus, coefficients=coeffs, offset=offset)
        if family == "random":
            size = draw(
                st.integers(min_value=2, max_value=min(8, torus.num_nodes))
            )
            seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
            return random_placement(torus, size, seed=seed)
        dim = draw(st.integers(min_value=0, max_value=d - 1))
        value = draw(st.integers(min_value=0, max_value=k - 1))
        return single_subtorus_placement(torus, dim=dim, value=value)

    batch_len = draw(st.integers(min_value=1, max_value=6))
    placements = [one_placement() for _ in range(batch_len)]
    routing = draw(
        st.sampled_from(
            [
                OrderedDimensionalRouting(d),
                UnorderedDimensionalRouting(),
                AllMinimalPaths(),
            ]
        )
    )
    block = draw(st.integers(min_value=1, max_value=batch_len))
    return placements, routing, block


@given(batch_case())
@settings(max_examples=50, deadline=None)
def test_batched_rows_bit_identical_to_sequential(case):
    placements, routing, block = case
    with using_plan_cache(PlanCache()):
        engine = LoadEngine("fft")
        batched = engine.edge_loads_many(placements, routing, batch_size=block)
        sequential = np.stack(
            [engine.edge_loads(p, routing) for p in placements]
        )
    assert batched.shape == sequential.shape
    assert np.array_equal(batched, sequential)


@given(batch_case())
@settings(max_examples=25, deadline=None)
def test_emax_many_bit_identical_to_sequential_emax(case):
    placements, routing, block = case
    with using_plan_cache(PlanCache()):
        engine = LoadEngine("fft")
        batched = engine.emax_many(placements, routing, batch_size=block)
        single = [engine.emax(p, routing) for p in placements]
    assert batched.tolist() == single

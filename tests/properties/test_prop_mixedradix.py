"""Property-based tests on the mixed-radix generalization."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mixedradix import (
    MixedPlacement,
    MixedTorus,
    lcm_linear_placement,
    mixed_dimension_cut,
    mixed_linear_placement,
    mixed_odr_edge_loads,
)

shapes = st.lists(
    st.integers(min_value=2, max_value=6), min_size=1, max_size=3
).map(tuple).filter(lambda s: int(np.prod(s)) <= 200)


class TestTorusStructure:
    @given(shapes, st.integers(min_value=0, max_value=10**6))
    def test_coord_roundtrip(self, shape, seed):
        t = MixedTorus(shape)
        nid = seed % t.num_nodes
        assert int(t.node_ids(t.coords([nid]))[0]) == nid

    @given(shapes, st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_lee_distance_symmetric(self, shape, s1, s2):
        t = MixedTorus(shape)
        u = t.coords([s1 % t.num_nodes])[0]
        v = t.coords([s2 % t.num_nodes])[0]
        assert t.lee_distance(u, v) == t.lee_distance(v, u)

    @given(shapes, st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_corrections_reach_target(self, shape, s1, s2):
        t = MixedTorus(shape)
        u = t.coords([s1 % t.num_nodes])
        v = t.coords([s2 % t.num_nodes])
        delta = t.minimal_corrections(u, v)
        assert np.all(np.mod(u + delta, t.radii) == v)


class TestPlacementLaws:
    @given(shapes, st.integers(min_value=0, max_value=8))
    def test_gcd_placement_size_and_uniformity(self, shape, offset):
        g = math.gcd(*shape)
        assume(g >= 2)
        t = MixedTorus(shape)
        p = mixed_linear_placement(t, offset=offset)
        assert len(p) == t.num_nodes // g
        # uniformity needs d >= 2 (each subtorus gets |P|/k_i processors;
        # for d = 1 the placement is a fraction of a single ring)
        if t.d >= 2:
            assert p.is_uniform()

    @given(shapes, st.integers(min_value=0, max_value=8))
    def test_lcm_placement_size(self, shape, offset):
        t = MixedTorus(shape)
        L = math.lcm(*shape)
        p = lcm_linear_placement(t, offset=offset)
        assert len(p) == t.num_nodes // L


class TestLoadsAndCuts:
    @settings(max_examples=30, deadline=None)
    @given(shapes, st.data())
    def test_conservation(self, shape, data):
        t = MixedTorus(shape)
        size = data.draw(
            st.integers(min_value=2, max_value=min(6, t.num_nodes))
        )
        ids = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=t.num_nodes - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        p = MixedPlacement(t, ids)
        loads = mixed_odr_edge_loads(p)
        coords = p.coords()
        m = len(p)
        lee = sum(
            t.lee_distance(coords[i], coords[j])
            for i in range(m)
            for j in range(m)
            if i != j
        )
        assert loads.sum() == lee

    @settings(max_examples=30, deadline=None)
    @given(shapes)
    def test_cut_size_is_four_cross_sections(self, shape):
        g = math.gcd(*shape)
        assume(g >= 2)
        t = MixedTorus(shape)
        p = mixed_linear_placement(t)
        for dim in range(t.d):
            cut = mixed_dimension_cut(p, dim)
            assert cut.cut_size == 4 * t.num_nodes // shape[dim]

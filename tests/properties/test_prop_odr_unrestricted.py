"""Property-based tests for the unrestricted ODR variant."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.edge_loads import edge_loads_reference
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.odr_unrestricted import UnrestrictedODR
from repro.torus.topology import Torus


@st.composite
def torus_and_pair(draw):
    k = draw(st.integers(min_value=2, max_value=7))
    d = draw(st.integers(min_value=1, max_value=3))
    p = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    q = tuple(draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(d))
    return Torus(k, d), p, q


class TestUnrestrictedPaths:
    @given(torus_and_pair())
    def test_count_is_two_to_the_ties(self, data):
        torus, p, q = data
        algo = UnrestrictedODR()
        ties = sum(
            1
            for a, b in zip(p, q)
            if torus.k % 2 == 0 and (b - a) % torus.k == torus.k // 2
        )
        paths = algo.paths(torus, p, q)
        assert len(paths) == 2**ties
        assert algo.num_paths(torus, p, q) == 2**ties

    @given(torus_and_pair())
    def test_all_minimal_and_distinct(self, data):
        torus, p, q = data
        paths = UnrestrictedODR().paths(torus, p, q)
        lee = torus.lee_distance(p, q)
        assert all(path.length == lee for path in paths)
        assert len({path.edge_ids for path in paths}) == len(paths)

    # AllMinimalPaths explodes combinatorially on T_6^3 long displacements;
    # wall-clock is workload, not a hang, so drop the per-example deadline.
    @given(torus_and_pair())
    @settings(deadline=None)
    def test_subset_of_all_minimal(self, data):
        torus, p, q = data
        unres = {path.edge_ids for path in UnrestrictedODR().paths(torus, p, q)}
        allmin = {path.edge_ids for path in AllMinimalPaths().paths(torus, p, q)}
        assert unres <= allmin

    @given(torus_and_pair())
    def test_contains_restricted_path(self, data):
        torus, p, q = data
        restricted = OrderedDimensionalRouting(torus.d).path(torus, p, q)
        unres = {path.edge_ids for path in UnrestrictedODR().paths(torus, p, q)}
        assert restricted.edge_ids in unres


class TestUnrestrictedLoads:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_total_traffic_conserved(self, k, seed):
        # conservation holds for ANY placement; note that the never-worse
        # property does NOT — on asymmetric placements the − links freed
        # tie traffic lands on can already be loaded (hypothesis found a
        # counterexample at k=6), so dominance is claimed (and verified in
        # EXP-21) for linear placements only
        torus = Torus(k, 2)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, min(7, torus.num_nodes) + 1))
        ids = rng.choice(torus.num_nodes, size=size, replace=False)
        placement = Placement(torus, ids)
        restricted = odr_edge_loads(placement)
        unrestricted = edge_loads_reference(placement, UnrestrictedODR())
        assert abs(unrestricted.sum() - restricted.sum()) < 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=4, max_value=8).filter(lambda k: k % 2 == 0),
        st.integers(min_value=0, max_value=7),
    )
    def test_never_worse_on_linear_placements(self, k, offset):
        from repro.placements.linear import linear_placement

        placement = linear_placement(Torus(k, 2), offset=offset)
        restricted = odr_edge_loads(placement)
        unrestricted = edge_loads_reference(placement, UnrestrictedODR())
        assert unrestricted.max() <= restricted.max() + 1e-9

"""Property-based tests on the greedy phase scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placements.base import Placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.schedule.greedy import greedy_phase_schedule
from repro.torus.topology import Torus


@st.composite
def schedule_scenario(draw):
    k = draw(st.integers(min_value=3, max_value=5))
    d = draw(st.integers(min_value=1, max_value=2))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=2, max_value=min(6, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    udr = draw(st.booleans())
    return Placement(torus, ids), seed, udr


def _routing(torus, udr):
    return UnorderedDimensionalRouting() if udr else OrderedDimensionalRouting(torus.d)


class TestScheduleInvariants:
    @settings(max_examples=40, deadline=None)
    @given(schedule_scenario())
    def test_valid_and_complete(self, scenario):
        placement, seed, udr = scenario
        sched = greedy_phase_schedule(
            placement, _routing(placement.torus, udr), seed=seed
        )
        assert sched.validate()
        assert sched.num_messages == len(placement) * (len(placement) - 1)

    @settings(max_examples=40, deadline=None)
    @given(schedule_scenario())
    def test_phases_at_least_bandwidth_bound(self, scenario):
        placement, seed, udr = scenario
        sched = greedy_phase_schedule(
            placement, _routing(placement.torus, udr), seed=seed
        )
        assert sched.num_phases >= sched.lower_bound

    @settings(max_examples=40, deadline=None)
    @given(schedule_scenario())
    def test_no_empty_phases(self, scenario):
        placement, seed, udr = scenario
        sched = greedy_phase_schedule(
            placement, _routing(placement.torus, udr), seed=seed
        )
        assert all(len(phase) > 0 for phase in sched.phases)

"""Property-based tests on the load analyses.

The central conservation law: for any minimal routing, total edge load
equals the sum of Lee distances over all ordered pairs — every message
contributes exactly its path length, and the fractional weights per pair
sum to 1.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.edge_loads import edge_loads_reference
from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.base import Placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


@st.composite
def random_small_placement(draw, max_nodes=64):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=3))
    torus = Torus(k, d)
    n = min(torus.num_nodes, max_nodes)
    size = draw(st.integers(min_value=2, max_value=min(8, n)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    return Placement(torus, ids, name="hypothesis")


def _total_lee(placement: Placement) -> float:
    coords = placement.coords()
    m = len(placement)
    idx = np.arange(m)
    pi, qi = np.meshgrid(idx, idx, indexing="ij")
    keep = pi != qi
    return float(
        placement.torus.lee_distances_array(
            coords[pi[keep]], coords[qi[keep]]
        ).sum()
    )


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(random_small_placement())
    def test_odr_total(self, placement):
        assert odr_edge_loads(placement).sum() == _total_lee(placement)

    @settings(max_examples=50, deadline=None)
    @given(random_small_placement())
    def test_udr_total(self, placement):
        assert np.isclose(udr_edge_loads(placement).sum(), _total_lee(placement))


class TestVectorizedVsOracle:
    @settings(max_examples=25, deadline=None)
    @given(random_small_placement())
    def test_odr_matches_reference(self, placement):
        fast = odr_edge_loads(placement)
        slow = edge_loads_reference(
            placement, OrderedDimensionalRouting(placement.torus.d)
        )
        assert np.allclose(fast, slow)

    @settings(max_examples=25, deadline=None)
    @given(random_small_placement())
    def test_udr_matches_reference(self, placement):
        fast = udr_edge_loads(placement)
        slow = edge_loads_reference(placement, UnorderedDimensionalRouting())
        assert np.allclose(fast, slow)


class TestDominance:
    @settings(max_examples=30, deadline=None)
    @given(random_small_placement())
    def test_loads_nonnegative(self, placement):
        assert np.all(odr_edge_loads(placement) >= 0)
        assert np.all(udr_edge_loads(placement) >= 0)

    @settings(max_examples=30, deadline=None)
    @given(random_small_placement())
    def test_lemma1_singleton_bound_holds(self, placement):
        # Eq. (6) is routing-independent: check it against both algorithms
        from repro.load.formulas import blaum_lower_bound

        bound = blaum_lower_bound(len(placement), placement.torus.d)
        assert odr_edge_loads(placement).max() >= bound - 1e-9
        assert udr_edge_loads(placement).max() >= bound - 1e-9

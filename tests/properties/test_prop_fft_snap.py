"""Property: the FFT backend's integer snap-back is a rounding, not a fix.

The :mod:`repro.load.quantize` contract says the spectral accumulation
lands so close to the exact rational grid that snapping moves every value
by strictly less than :data:`~repro.load.quantize.LOAD_SNAP_TOLERANCE`.
Hypothesis drives random placements, routings, and integer traffic
through the backend and checks the observed drift never approaches the
tolerance — and that the snapped result is the oracle's value exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.edge_loads import edge_loads_reference
from repro.load.engine import FFTBackend
from repro.load.quantize import (
    LOAD_SNAP_TOLERANCE,
    routing_load_quantum,
    snap_loads,
)
from repro.placements.base import Placement
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.odr_unrestricted import UnrestrictedODR
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


@st.composite
def fft_case(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=3))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=2, max_value=min(7, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    placement = Placement(torus, ids, name="hypothesis")
    routing = draw(
        st.sampled_from(
            [
                OrderedDimensionalRouting(d),
                UnorderedDimensionalRouting(),
                UnrestrictedODR(),
                AllMinimalPaths(),
            ]
        )
    )
    weighted = draw(st.booleans())
    if weighted:
        cells = draw(
            st.lists(
                st.integers(min_value=0, max_value=5),
                min_size=size * size,
                max_size=size * size,
            )
        )
        weights = np.array(cells, dtype=np.float64).reshape(size, size)
        np.fill_diagonal(weights, 0.0)
    else:
        weights = None
    return placement, routing, weights


@given(fft_case())
@settings(max_examples=60, deadline=None)
def test_snap_never_moves_a_value_near_tolerance(case):
    placement, routing, weights = case
    backend = FFTBackend()
    got = backend.compute(placement, routing, pair_weights=weights)
    # the drift the snap-back applied is far below the failure threshold
    assert backend.last_snap_drift < LOAD_SNAP_TOLERANCE
    assert backend.last_snap_drift < 1e-6
    oracle = edge_loads_reference(placement, routing, weights)
    quantum = routing_load_quantum(routing, placement.torus.d)
    if quantum is not None:
        assert np.array_equal(
            snap_loads(got, quantum), snap_loads(oracle, quantum)
        )
    else:
        assert np.abs(got - oracle).max(initial=0.0) <= 1e-9

"""Property-based tests on the wormhole engine.

Invariants: dateline dimension-order routing never deadlocks (every run
completes), per-flit latency is at least ``hops + flits - 1``, link flit
counters total exactly ``flits × total hops``, and VC assignments are
monotone within a dimension (once on VC1, stay on VC1 until the dimension
changes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placements.base import Placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.sim.workloads import complete_exchange_packets
from repro.sim.wormhole import (
    WormholeConfig,
    WormholeEngine,
    assign_virtual_channels,
)
from repro.torus.topology import Torus


@st.composite
def wormhole_scenario(draw):
    k = draw(st.integers(min_value=3, max_value=5))
    d = draw(st.integers(min_value=1, max_value=2))
    torus = Torus(k, d)
    size = draw(st.integers(min_value=2, max_value=min(5, torus.num_nodes)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=torus.num_nodes - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    flits = draw(st.integers(min_value=1, max_value=4))
    buffers = draw(st.integers(min_value=1, max_value=3))
    return Placement(torus, ids), WormholeConfig(flits, buffers)


class TestWormholeInvariants:
    @settings(max_examples=30, deadline=None)
    @given(wormhole_scenario())
    def test_deadlock_free_completion(self, scenario):
        placement, cfg = scenario
        torus = placement.torus
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(torus.d), seed=0
        )
        res = WormholeEngine(torus, cfg, max_cycles=100_000).run(packets)
        assert res.delivered == len(packets)

    @settings(max_examples=30, deadline=None)
    @given(wormhole_scenario())
    def test_latency_floor(self, scenario):
        placement, cfg = scenario
        torus = placement.torus
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(torus.d), seed=0
        )
        WormholeEngine(torus, cfg, max_cycles=100_000).run(packets)
        for p in packets:
            if p.path_length:
                assert p.latency >= p.path_length + cfg.flits_per_packet - 1

    @settings(max_examples=30, deadline=None)
    @given(wormhole_scenario())
    def test_flit_conservation(self, scenario):
        placement, cfg = scenario
        torus = placement.torus
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(torus.d), seed=0
        )
        res = WormholeEngine(torus, cfg, max_cycles=100_000).run(packets)
        total_hops = sum(p.path_length for p in packets)
        assert res.link_flit_counts.sum() == total_hops * cfg.flits_per_packet

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_vc_monotone_within_dimension(self, k, d, s1, s2):
        torus = Torus(k, d)
        u = torus.coord(s1 % torus.num_nodes)
        v = torus.coord(s2 % torus.num_nodes)
        path = OrderedDimensionalRouting(d).path(torus, u, v)
        vcs = assign_virtual_channels(torus, path.edge_ids)
        dims = [torus.edges.decode(e).dim for e in path.edge_ids]
        for i in range(1, len(vcs)):
            if dims[i] == dims[i - 1]:
                assert vcs[i] >= vcs[i - 1]

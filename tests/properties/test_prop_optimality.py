"""Property-based consistency between the optimality machinery layers.

The catalog (exhaustive), the local search (heuristic), and the bounds
must tell one coherent story: no search result beats the catalog minimum,
no catalog minimum beats the best lower bound, and the per-dimension
decomposition agrees with the global maximum.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.bounds import best_known_lower_bound
from repro.load.distribution import load_distribution, per_dimension_total
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.placements.catalog import global_minimum_emax
from repro.placements.search import local_search_placement
from repro.torus.topology import Torus


class TestLayersAgree:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_search_never_beats_catalog(self, seed):
        torus = Torus(3, 2)
        catalog = global_minimum_emax(torus, 3)
        rng = np.random.default_rng(seed)
        ids = rng.choice(torus.num_nodes, size=3, replace=False)
        start = Placement(torus, ids)
        res = local_search_placement(start, max_moves=10, seed=seed)
        assert res.best_emax >= catalog.minimum_emax - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_bounds_below_any_placement(self, seed):
        torus = Torus(4, 2)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, 8))
        ids = rng.choice(torus.num_nodes, size=size, replace=False)
        placement = Placement(torus, ids)
        emax = float(odr_edge_loads(placement).max())
        report = best_known_lower_bound(placement)
        assert emax >= report.best - 1e-9


class TestDistributionConsistency:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_global_max_is_max_of_dim_maxima(self, k, d, seed):
        torus = Torus(k, d)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, min(7, torus.num_nodes) + 1))
        ids = rng.choice(torus.num_nodes, size=size, replace=False)
        placement = Placement(torus, ids)
        loads = odr_edge_loads(placement)
        dist = load_distribution(torus, loads)
        assert dist.global_max == loads.max()
        assert per_dimension_total(torus, loads).sum() == loads.sum()
        if d >= 3:
            assert dist.global_max == max(dist.boundary_max, dist.interior_max)

"""Property-based tests on the torus substrate."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.torus.graph import to_networkx
from repro.torus.topology import Torus

small_torus = st.tuples(
    st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=3)
).filter(lambda kd: kd[0] ** kd[1] <= 300)


class TestStructure:
    @given(small_torus)
    def test_edge_count(self, kd):
        t = Torus(*kd)
        assert t.num_edges == 2 * t.d * t.num_nodes

    @given(small_torus, st.integers(min_value=0, max_value=10**6))
    def test_id_coord_roundtrip(self, kd, seed):
        t = Torus(*kd)
        nid = seed % t.num_nodes
        assert t.node_id(t.coord(nid)) == nid

    @given(small_torus, st.integers(min_value=0, max_value=10**6))
    def test_neighbors_at_distance_one(self, kd, seed):
        t = Torus(*kd)
        nid = seed % t.num_nodes
        for v in t.neighbors(nid):
            assert t.lee_distance_ids(nid, v) == 1

    @given(small_torus, st.integers(min_value=0, max_value=10**6))
    def test_edge_reverse_is_involution(self, kd, seed):
        t = Torus(*kd)
        eid = seed % t.num_edges
        assert t.edges.reverse(t.edges.reverse(eid)) == eid


class TestDistanceVsGraph:
    @settings(max_examples=15, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=2, max_value=5),
            st.integers(min_value=1, max_value=2),
        ),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_lee_equals_shortest_path(self, kd, s1, s2):
        t = Torus(*kd)
        g = to_networkx(t)
        u = s1 % t.num_nodes
        v = s2 % t.num_nodes
        assert t.lee_distance_ids(u, v) == nx.shortest_path_length(g, u, v)

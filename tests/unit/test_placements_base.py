"""Unit tests for repro.placements.base."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.placements.base import Placement
from repro.torus.topology import Torus


class TestConstruction:
    def test_sorted_deduplicated(self, torus_4_2):
        p = Placement(torus_4_2, [5, 3, 5, 1])
        assert p.node_ids.tolist() == [1, 3, 5]

    def test_empty_rejected(self, torus_4_2):
        with pytest.raises(PlacementError):
            Placement(torus_4_2, [])

    def test_out_of_range_rejected(self, torus_4_2):
        with pytest.raises(PlacementError):
            Placement(torus_4_2, [16])
        with pytest.raises(PlacementError):
            Placement(torus_4_2, [-1])

    def test_len_and_size(self, torus_4_2):
        p = Placement(torus_4_2, [0, 1, 2])
        assert len(p) == p.size == 3


class TestQueries:
    def test_coords_sorted_by_id(self, torus_4_2):
        p = Placement(torus_4_2, [4, 0])
        assert p.coords().tolist() == [[0, 0], [1, 0]]

    def test_contains(self, torus_4_2):
        p = Placement(torus_4_2, [2, 7])
        assert p.contains(2) and p.contains(7)
        assert not p.contains(3)

    def test_contains_coord(self, torus_4_2):
        p = Placement(torus_4_2, [torus_4_2.node_id((1, 2))])
        assert p.contains_coord((1, 2))
        assert not p.contains_coord((2, 1))

    def test_mask(self, torus_4_2):
        p = Placement(torus_4_2, [0, 15])
        m = p.mask()
        assert m[0] and m[15] and m.sum() == 2

    def test_ordered_pairs_count(self, torus_4_2):
        p = Placement(torus_4_2, [0, 1, 2, 3])
        assert p.ordered_pairs_count() == 12

    def test_complement(self, torus_4_2):
        p = Placement(torus_4_2, [0, 1])
        c = p.complement()
        assert len(c) == 14
        assert not c.contains(0)

    def test_restrict(self, torus_4_2):
        p = Placement(torus_4_2, [0, 1, 2, 3])
        keep = np.array([True, False, True, False])
        r = p.restrict(keep)
        assert r.node_ids.tolist() == [0, 2]

    def test_restrict_bad_mask(self, torus_4_2):
        p = Placement(torus_4_2, [0, 1])
        with pytest.raises(PlacementError):
            p.restrict(np.array([True]))


class TestEquality:
    def test_equal(self, torus_4_2):
        assert Placement(torus_4_2, [1, 2]) == Placement(torus_4_2, [2, 1])

    def test_unequal_different_torus(self):
        a = Placement(Torus(4, 2), [0])
        b = Placement(Torus(5, 2), [0])
        assert a != b

    def test_hashable(self, torus_4_2):
        assert hash(Placement(torus_4_2, [1])) == hash(Placement(torus_4_2, [1]))

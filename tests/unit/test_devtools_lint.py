"""Tests for the repro.devtools.lint framework and rule set RL001-RL010.

Every rule gets one failing and one passing fixture snippet; the
framework-level tests cover suppressions, reporters, the runner CLI, and
the self-check that the repo's own sources are clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import (
    SYNTAX_ERROR_CODE,
    all_rules,
    lint_file,
    lint_paths,
    parse_noqa,
)
from repro.devtools.lint.__main__ import run
from repro.devtools.lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint_snippet(tmp_path: Path, rel_path: str, source: str):
    """Write ``source`` under ``tmp_path/rel_path`` and lint just that file."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return lint_file(target)


def _codes(findings) -> set[str]:
    return {f.code for f in findings}


# ------------------------------------------------------------------ RL001


class TestRL001FloorOnLoad:
    def test_flags_floor_division_of_load(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/analysis/mod.py",
            "def f(total_load, n):\n    return total_load // n\n",
        )
        assert "RL001" in _codes(findings)

    def test_flags_floor_call_on_bound(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/analysis/mod.py",
            "import math\n\ndef f(eq8_bound):\n    return math.floor(eq8_bound)\n",
        )
        assert "RL001" in _codes(findings)

    def test_flags_assignment_to_load_name(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/analysis/mod.py",
            "def f(x, n):\n    emax = x // n\n    return emax\n",
        )
        assert "RL001" in _codes(findings)

    def test_index_arithmetic_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/analysis/mod.py",
            "def f(m, k):\n    half = m // 2\n    return half, k // 2\n",
        )
        assert "RL001" not in _codes(findings)


# ------------------------------------------------------------------ RL002


class TestRL002UnguardedDivision:
    def test_flags_unguarded_denominator(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(x, n):\n    return x / n\n",
        )
        assert "RL002" in _codes(findings)

    def test_guarded_denominator_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(x, n):\n"
            "    if n <= 0:\n"
            "        raise ValueError('n must be positive')\n"
            "    return x / n\n",
        )
        assert "RL002" not in _codes(findings)

    def test_ternary_guard_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "def f(x, n):\n    return x / n if n else 0.0\n",
        )
        assert "RL002" not in _codes(findings)

    def test_len_denominator_guarded_by_emptiness_check(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(w, paths):\n"
            "    if not paths:\n"
            "        raise ValueError('no paths')\n"
            "    return w / len(paths)\n",
        )
        assert "RL002" not in _codes(findings)

    def test_single_letter_name_needs_its_own_guard(self, tmp_path):
        # a guard mentioning `link` must not cover a denominator `k`
        findings = _lint_snippet(
            tmp_path,
            "repro/bisection/mod.py",
            "def f(x, k, link):\n"
            "    if link:\n"
            "        pass\n"
            "    return x / k\n",
        )
        assert "RL002" in _codes(findings)

    def test_out_of_scope_package_ignored(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/viz/mod.py",
            "def f(x, n):\n    return x / n\n",
        )
        assert "RL002" not in _codes(findings)


# ------------------------------------------------------------------ RL003


class TestRL003RoutingInvarianceFlag:
    def test_flags_missing_declaration(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/routing/mod.py",
            "class MyRouting(RoutingAlgorithm):\n"
            "    def paths(self, torus, p, q):\n"
            "        return []\n",
        )
        assert "RL003" in _codes(findings)

    def test_explicit_declaration_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/routing/mod.py",
            "class MyRouting(RoutingAlgorithm):\n"
            "    translation_invariant = True\n"
            "    def paths(self, torus, p, q):\n"
            "        return []\n",
        )
        assert "RL003" not in _codes(findings)

    def test_indirect_subclass_inherits(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/routing/mod.py",
            "class Derived(DimensionOrderRouting):\n"
            "    pass\n",
        )
        assert "RL003" not in _codes(findings)


# ------------------------------------------------------------------ RL004


class TestRL004FacadeBypass:
    def test_flags_oracle_import_outside_load(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "from repro.load.edge_loads import edge_loads_reference\n\n"
            "def f(p, r):\n    return edge_loads_reference(p, r)\n",
        )
        assert "RL004" in _codes(findings)

    def test_flags_backend_class_use(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import repro.load.engine.reference as ref\n\n"
            "def f():\n    return ref.ReferenceBackend()\n",
        )
        assert "RL004" in _codes(findings)

    def test_facade_use_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "from repro.load.engine import LoadEngine\n\n"
            "def f(p, r):\n    return LoadEngine('reference').edge_loads(p, r)\n",
        )
        assert "RL004" not in _codes(findings)

    def test_inside_load_package_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from repro.load.edge_loads import edge_loads_reference\n\n"
            "def f(p, r):\n    return edge_loads_reference(p, r)\n",
        )
        assert "RL004" not in _codes(findings)


# ------------------------------------------------------------------ RL005


class TestRL005ConstructorValidation:
    def test_flags_unvalidated_constructor(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/torus/mod.py",
            "class Grid:\n"
            "    def __init__(self, k, d):\n"
            "        self.k = k\n"
            "        self.d = d\n",
        )
        assert "RL005" in _codes(findings)

    def test_validated_constructor_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/torus/mod.py",
            "from repro.util.validation import check_torus_params\n\n"
            "class Grid:\n"
            "    def __init__(self, k, d):\n"
            "        self.k, self.d = check_torus_params(k, d)\n",
        )
        assert "RL005" not in _codes(findings)

    def test_private_class_and_no_init_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/mixedradix/mod.py",
            "class _Helper:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n\n"
            "class Frozen:\n"
            "    pass\n",
        )
        assert "RL005" not in _codes(findings)


# ------------------------------------------------------------------ RL006


class TestRL006UnusedImport:
    def test_flags_unused_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "import numpy as np\n\ndef f():\n    return 1\n",
        )
        assert "RL006" in _codes(findings)

    def test_used_import_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "import numpy as np\n\ndef f():\n    return np.zeros(3)\n",
        )
        assert "RL006" not in _codes(findings)

    def test_future_and_all_reexport_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "from __future__ import annotations\n"
            "from math import tau\n\n"
            "__all__ = ['tau']\n",
        )
        assert "RL006" not in _codes(findings)

    def test_init_file_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/__init__.py",
            "from math import tau\n",
        )
        assert "RL006" not in _codes(findings)

    def test_flake8_noqa_on_line_honored(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "import repro.experiments  # noqa: F401\n",
        )
        assert "RL006" not in _codes(findings)


# ------------------------------------------------------------------ RL007


class TestRL007MutableDefault:
    def test_flags_mutable_default(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "def f(acc=[]):\n    return acc\n",
        )
        assert "RL007" in _codes(findings)

    def test_none_default_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "def f(acc=None):\n    return acc if acc is not None else []\n",
        )
        assert "RL007" not in _codes(findings)

    def test_kwonly_dict_default_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "def f(*, table={}):\n    return table\n",
        )
        assert "RL007" in _codes(findings)


# ------------------------------------------------------------------ RL008


class TestRL008FullLoadEvalInLoop:
    _LOOP_SNIPPET = (
        "from repro.load.odr_loads import odr_edge_loads\n"
        "def sweep(candidates):\n"
        "    best = None\n"
        "    for p in candidates:\n"
        "        emax = odr_edge_loads(p).max()\n"
        "        best = emax if best is None else min(best, emax)\n"
        "    return best\n"
    )

    def test_flags_call_in_loop_in_placements(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "repro/placements/mod.py", self._LOOP_SNIPPET
        )
        assert "RL008" in _codes(findings)

    def test_comprehension_counts_as_loop(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "def sweep(candidates):\n"
            "    return [odr_edge_loads(p).max() for p in candidates]\n",
        )
        assert "RL008" in _codes(findings)

    def test_nested_loop_reports_once(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "def sweep(grid):\n"
            "    out = []\n"
            "    for row in grid:\n"
            "        for p in row:\n"
            "            out.append(odr_edge_loads(p).max())\n"
            "    return out\n",
        )
        assert [f.code for f in findings].count("RL008") == 1

    def test_call_outside_loop_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "def once(p):\n"
            "    return odr_edge_loads(p).max()\n",
        )
        assert "RL008" not in _codes(findings)

    def test_other_packages_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "repro/experiments/mod.py", self._LOOP_SNIPPET
        )
        assert "RL008" not in _codes(findings)

    def test_noqa_escape_hatch(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "def oracle(candidates):\n"
            "    out = []\n"
            "    for p in candidates:\n"
            "        out.append(odr_edge_loads(p).max())  # repro: noqa(RL008)\n"
            "    return out\n",
        )
        assert "RL008" not in _codes(findings)


# ------------------------------------------------------------------ RL009


class TestRL009DirectPoolConstruction:
    def test_flags_process_pool_executor(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def fan_out(shards):\n"
            "    with ProcessPoolExecutor(4) as pool:\n"
            "        return list(pool.map(len, shards))\n",
        )
        assert "RL009" in _codes(findings)

    def test_flags_aliased_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from concurrent.futures import ProcessPoolExecutor as PPE\n"
            "def fan_out():\n"
            "    return PPE(2)\n",
        )
        assert "RL009" in _codes(findings)

    def test_flags_multiprocessing_pool(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "import multiprocessing as mp\n"
            "def fan_out():\n"
            "    return mp.Pool(2)\n",
        )
        assert "RL009" in _codes(findings)

    def test_flags_dotted_attribute(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "import concurrent.futures\n"
            "def fan_out():\n"
            "    return concurrent.futures.ProcessPoolExecutor(2)\n",
        )
        assert "RL009" in _codes(findings)

    def test_unrelated_pool_attribute_passes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "def reuse(connections):\n"
            "    return connections.Pool(2)\n",
        )
        assert "RL009" not in _codes(findings)

    def test_exec_package_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exec/mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def build():\n"
            "    return ProcessPoolExecutor(2)\n",
        )
        assert "RL009" not in _codes(findings)

    def test_tests_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "tests/test_mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def test_bare_pool():\n"
            "    assert ProcessPoolExecutor(2) is not None\n",
        )
        assert "RL009" not in _codes(findings)

    def test_noqa_escape_hatch(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def build():\n"
            "    return ProcessPoolExecutor(2)  # repro: noqa(RL009)\n",
        )
        assert "RL009" not in _codes(findings)


# ------------------------------------------------------------------ RL010


class TestRL010WallClockOrPrint:
    def test_flags_time_time_call(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "import time\ndef f():\n    return time.time()\n",
        )
        assert "RL010" in _codes(findings)

    def test_flags_time_time_reference(self, tmp_path):
        # the ExecutionReport.started_at bug class: a bare reference used
        # as a default_factory, never syntactically called
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "import time\n"
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class R:\n"
            "    started: float = field(default_factory=time.time)\n",
        )
        assert "RL010" in _codes(findings)

    def test_flags_from_time_import_time(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from time import time as now\ndef f():\n    return now()\n",
        )
        assert "RL010" in _codes(findings)

    def test_flags_bare_print(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(x):\n    print(x)\n    return x\n",
        )
        assert "RL010" in _codes(findings)

    def test_monotonic_clocks_pass(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "import time\n"
            "def f():\n"
            "    return time.perf_counter() - time.monotonic()\n",
        )
        assert "RL010" not in _codes(findings)

    def test_cli_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/cli.py",
            "import time\ndef f():\n    print(time.time())\n",
        )
        assert "RL010" not in _codes(findings)

    def test_devtools_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/devtools/lint/mod.py",
            "def f(x):\n    print(x)\n",
        )
        assert "RL010" not in _codes(findings)

    def test_console_module_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/obs/console.py",
            "import time\ndef wall_clock():\n    return time.time()\n",
        )
        assert "RL010" not in _codes(findings)

    def test_tests_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "tests/test_mod.py",
            "import time\ndef test_now():\n    print(time.time())\n",
        )
        assert "RL010" not in _codes(findings)

    def test_noqa_escape_hatch(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa(RL010)\n",
        )
        assert "RL010" not in _codes(findings)


# ------------------------------------------------------------------ RL016


class TestRL016PerPlacementLoopEval:
    _LOOP_SNIPPET = (
        "from repro.load.engine import LoadEngine\n"
        "def sweep(engine, candidates, routing):\n"
        "    out = []\n"
        "    for p in candidates:\n"
        "        out.append(engine.emax(p, routing))\n"
        "    return out\n"
    )

    def test_flags_facade_emax_loop_in_experiments(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "repro/experiments/mod.py", self._LOOP_SNIPPET
        )
        assert "RL016" in _codes(findings)

    def test_flags_edge_loads_loop_in_placements(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "def sweep(engine, candidates, routing):\n"
            "    return [engine.edge_loads(p, routing) for p in candidates]\n",
        )
        assert "RL016" in _codes(findings)

    def test_per_torus_sweep_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "from repro.placements.linear import linear_placement\n"
            "from repro.torus.topology import Torus\n"
            "def sweep(ks):\n"
            "    out = []\n"
            "    for k in ks:\n"
            "        torus = Torus(k, 2)\n"
            "        out.append(odr_edge_loads(linear_placement(torus)).max())\n"
            "    return out\n",
        )
        assert "RL016" not in _codes(findings)

    def test_inner_loop_of_per_torus_sweep_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "from repro.torus.topology import Torus\n"
            "def sweep(ks, families):\n"
            "    out = []\n"
            "    for k in ks:\n"
            "        torus = Torus(k, 2)\n"
            "        for family in families:\n"
            "            out.append(odr_edge_loads(family(torus)).max())\n"
            "    return out\n",
        )
        assert "RL016" not in _codes(findings)

    def test_once_evaluated_iterable_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "from repro.load.udr_loads import udr_edge_loads\n"
            "def both(placement):\n"
            "    out = {}\n"
            "    for name, loads in (\n"
            "        ('ODR', odr_edge_loads(placement)),\n"
            "        ('UDR', udr_edge_loads(placement)),\n"
            "    ):\n"
            "        out[name] = float(loads.max())\n"
            "    return out\n",
        )
        assert "RL016" not in _codes(findings)

    def test_other_packages_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "repro/core/mod.py", self._LOOP_SNIPPET
        )
        assert "RL016" not in _codes(findings)

    def test_noqa_escape_hatch(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/placements/mod.py",
            "from repro.load.odr_loads import odr_edge_loads\n"
            "def oracle(candidates):\n"
            "    return [\n"
            "        odr_edge_loads(p).max()  # repro: noqa(RL008,RL016)\n"
            "        for p in candidates\n"
            "    ]\n",
        )
        assert "RL016" not in _codes(findings)
        assert "RL008" not in _codes(findings)


# ------------------------------------------------------------------ RL017


class TestRL017DynamicTelemetryName:
    def test_flags_fstring_span_name(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exec/mod.py",
            "def f(tracer, kind):\n"
            "    with tracer.span(f'exec.{kind}'):\n"
            "        pass\n",
        )
        assert "RL017" in _codes(findings)

    def test_flags_fstring_event_name(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exec/mod.py",
            "def f(tracer, kind):\n"
            "    tracer.event(f'exec.{kind}', attempt=1)\n",
        )
        assert "RL017" in _codes(findings)

    def test_flags_dynamic_counter_name(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(metrics, backend):\n"
            "    metrics.counter('engine.calls.' + backend).add(1)\n",
        )
        assert "RL017" in _codes(findings)

    def test_flags_conditional_literal_name(self, tmp_path):
        # even a closed IfExp of two literals is dynamic to a grep
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(metrics, fast):\n"
            "    metrics.counter('a.b' if fast else 'a.c').add(1)\n",
        )
        assert "RL017" in _codes(findings)

    def test_flags_undotted_literal(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "def f(tracer):\n"
            "    with tracer.span('simulate'):\n"
            "        pass\n",
        )
        assert "RL017" in _codes(findings)

    def test_flags_uppercase_literal(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "def f(tracer):\n"
            "    tracer.metrics.gauge('Sim.Cycles').set(1)\n",
        )
        assert "RL017" in _codes(findings)

    def test_dotted_lowercase_literals_pass(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "def f(tracer, n):\n"
            "    with tracer.span('sim.run', packets=n):\n"
            "        tracer.event('sim.cycle_limit')\n"
            "        tracer.metrics.counter('sim.packets_routed').add(n)\n"
            "        tracer.metrics.histogram('sim.contention').observe(n)\n"
            "    tracer.record_span('sim.replay', 0.5)\n",
        )
        assert "RL017" not in _codes(findings)

    def test_non_telemetry_receivers_pass(self, tmp_path):
        # .record/.get/np.histogram etc. are not the telemetry registry
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "import numpy as np\n"
            "def f(journal, task_id, loads, bins):\n"
            "    journal.record(task_id, loads)\n"
            "    return np.histogram(loads, bins=bins)\n",
        )
        assert "RL017" not in _codes(findings)

    def test_obs_package_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/obs/mod.py",
            "def f(tracer, name):\n"
            "    tracer.event(f'{name}.x')\n",
        )
        assert "RL017" not in _codes(findings)

    def test_tests_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "tests/test_mod.py",
            "def test_f(tracer, i):\n"
            "    with tracer.span(f'case_{i}'):\n"
            "        pass\n",
        )
        assert "RL017" not in _codes(findings)

    def test_noqa_escape_hatch(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exec/mod.py",
            "def f(tracer, kind):\n"
            "    tracer.event(f'exec.{kind}')  # repro: noqa(RL017)\n",
        )
        assert "RL017" not in _codes(findings)


# ------------------------------------------------------ framework behaviour


class TestSuppressions:
    def test_scoped_noqa_suppresses_one_code(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "import numpy as np  # repro: noqa(RL006)\n",
        )
        assert "RL006" not in _codes(findings)

    def test_scoped_noqa_leaves_other_codes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "def f(acc=[]):  # repro: noqa(RL006)\n    return acc\n",
        )
        assert "RL007" in _codes(findings)

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/mod.py",
            "def f(acc=[]):  # repro: noqa\n    return acc\n",
        )
        assert findings == []

    def test_multi_code_noqa(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def f(total_load, n):\n"
            "    return total_load // n  # repro: noqa(RL001, RL002)\n",
        )
        assert findings == []

    def test_parse_noqa_shapes(self):
        noqa = parse_noqa(
            "x = 1  # repro: noqa\n"
            "y = 2  # repro: noqa(RL001)\n"
            "z = 3\n"
        )
        assert noqa[1] is None
        assert noqa[2] == frozenset({"RL001"})
        assert 3 not in noqa


class TestFramework:
    def test_registry_has_the_seventeen_rules(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == [f"RL00{i}" for i in range(1, 10)] + [
            f"RL0{i}" for i in range(10, 18)
        ]

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        findings = _lint_snippet(tmp_path, "repro/mod.py", "def f(:\n")
        assert [f.code for f in findings] == [SYNTAX_ERROR_CODE]

    def test_select_and_ignore(self, tmp_path):
        target = tmp_path / "repro" / "util" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import numpy as np\n\ndef f(acc=[]):\n    return acc\n")
        only_unused = lint_paths([target], select=["RL006"])
        assert _codes(only_unused.findings) == {"RL006"}
        without_unused = lint_paths([target], ignore=["RL006"])
        assert _codes(without_unused.findings) == {"RL007"}

    def test_unknown_code_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_paths([tmp_path], select=["RL999"])

    def test_text_and_json_reporters(self, tmp_path):
        target = tmp_path / "repro" / "util" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import numpy as np\n")
        report = lint_paths([target])
        text = render_text(report)
        assert "RL006" in text and "1 finding(s)" in text
        doc = render_json(report)
        assert '"RL006"' in doc and '"total": 1' in doc

    def test_runner_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "util" / "mod.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import numpy as np\n")
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert run([str(clean)]) == 0
        assert run([str(dirty)]) == 1
        assert run([str(clean), "--select", "RL999"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "RL007" in out


class TestSelfCheck:
    """The repo must stay clean under its own linter (the CI gate)."""

    def test_src_is_clean(self):
        report = lint_paths([REPO_ROOT / "src"])
        assert report.files_scanned > 0
        assert report.findings == [], render_text(report)

    def test_tests_are_clean(self):
        report = lint_paths([REPO_ROOT / "tests"])
        assert report.files_scanned > 0
        assert report.findings == [], render_text(report)

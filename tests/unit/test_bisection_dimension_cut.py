"""Unit tests for repro.bisection.dimension_cut (Theorem 1)."""

import pytest

from repro.bisection.dimension_cut import (
    best_dimension_cut,
    dimension_cut_bisection,
)
from repro.errors import BisectionError
from repro.placements.base import Placement
from repro.placements.fully import single_subtorus_placement
from repro.placements.linear import linear_placement
from repro.placements.multiple import multiple_linear_placement
from repro.torus.topology import Torus


class TestTheorem1:
    @pytest.mark.parametrize("k,d", [(4, 2), (6, 2), (4, 3), (6, 3)])
    def test_uniform_placement_exact(self, k, d):
        p = linear_placement(Torus(k, d))
        cut = dimension_cut_bisection(p)
        assert cut.cut_size == 4 * k ** (d - 1)
        assert cut.imbalance == 0

    def test_multiple_linear(self):
        p = multiple_linear_placement(Torus(6, 2), 2)
        cut = dimension_cut_bisection(p)
        assert cut.imbalance == 0
        assert cut.cut_size == 4 * 6

    def test_antipodal_for_uniform_even(self):
        p = linear_placement(Torus(8, 2))
        cut = dimension_cut_bisection(p)
        b1, b2 = cut.boundaries
        assert (b2 - b1) % 8 == 4 or (b1 - b2) % 8 == 4

    def test_cut_edges_cross_boundaries(self):
        p = linear_placement(Torus(4, 2))
        cut = dimension_cut_bisection(p, dim=0)
        b1, b2 = cut.boundaries
        for eid in cut.cut_edge_ids:
            e = p.torus.edges.decode(int(eid))
            layers = {
                p.torus.coord(e.tail)[0],
                p.torus.coord(e.head)[0],
            }
            assert layers in (
                {b1, (b1 + 1) % 4},
                {b2, (b2 + 1) % 4},
            )

    def test_side_layers_consistent(self):
        p = linear_placement(Torus(6, 2))
        cut = dimension_cut_bisection(p, dim=0)
        from repro.placements.analysis import layer_counts

        counts = layer_counts(p, 0)
        inside = sum(int(counts[v]) for v in cut.side_a_layers)
        assert inside == cut.processors_a


class TestExplicitBoundaries:
    def test_explicit(self):
        p = linear_placement(Torus(6, 2))
        cut = dimension_cut_bisection(p, dim=0, boundaries=(0, 3))
        assert cut.boundaries == (0, 3)
        assert cut.imbalance == 0

    def test_same_boundary_rejected(self):
        p = linear_placement(Torus(6, 2))
        with pytest.raises(BisectionError):
            dimension_cut_bisection(p, boundaries=(2, 2))

    def test_unbalanced_choice_reported(self):
        p = linear_placement(Torus(6, 2))
        cut = dimension_cut_bisection(p, dim=0, boundaries=(0, 1))
        assert cut.processors_a == 1
        assert not cut.is_balanced


class TestBestDimensionCut:
    def test_single_dim_uniformity_suffices(self, torus_4_2):
        # uniform along dim 1 only (all processors in row 0)
        ids = torus_4_2.node_ids([(0, j) for j in range(4)])
        p = Placement(torus_4_2, ids)
        cut = best_dimension_cut(p)
        assert cut.dim == 1
        assert cut.imbalance == 0

    def test_worst_case_subtorus_placement(self, torus_4_3):
        # all processors in one layer of dim 0: still balanced via dims 1, 2
        p = single_subtorus_placement(torus_4_3, dim=0)
        cut = best_dimension_cut(p)
        assert cut.dim in (1, 2)
        assert cut.imbalance == 0

    def test_odd_size_within_one(self, torus_4_2):
        p = Placement(torus_4_2, [0, 5, 10])
        cut = best_dimension_cut(p)
        assert cut.imbalance <= 1

"""Unit tests for repro.torus.subtorus."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.torus.subtorus import (
    cut_edges_between_layers,
    principal_subtorus_nodes,
    subtorus_layer_counts,
)


class TestPrincipalSubtorus:
    def test_size(self, torus_4_3):
        nodes = principal_subtorus_nodes(torus_4_3, 1, 2)
        assert nodes.size == 16

    def test_coordinate_fixed(self, torus_4_3):
        nodes = principal_subtorus_nodes(torus_4_3, 1, 2)
        coords = torus_4_3.coords(nodes)
        assert np.all(coords[:, 1] == 2)

    def test_partition(self, torus_4_2):
        all_nodes = np.concatenate(
            [principal_subtorus_nodes(torus_4_2, 0, v) for v in range(4)]
        )
        assert np.array_equal(np.sort(all_nodes), np.arange(16))

    def test_bad_dim(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            principal_subtorus_nodes(torus_4_2, 2, 0)

    def test_bad_value(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            principal_subtorus_nodes(torus_4_2, 0, 4)


class TestLayerCounts:
    def test_full_torus_flat(self, torus_4_2):
        counts = subtorus_layer_counts(
            torus_4_2, np.arange(torus_4_2.num_nodes), 0
        )
        assert counts.tolist() == [4, 4, 4, 4]

    def test_partial(self, torus_4_2):
        # three nodes in layer 0, one in layer 2 (dim 0)
        ids = torus_4_2.node_ids([(0, 0), (0, 1), (0, 3), (2, 2)])
        counts = subtorus_layer_counts(torus_4_2, ids, 0)
        assert counts.tolist() == [3, 0, 1, 0]

    def test_sum_equals_input(self, torus_4_3):
        ids = np.arange(0, 60, 7)
        counts = subtorus_layer_counts(torus_4_3, ids, 2)
        assert counts.sum() == ids.size


class TestCutEdges:
    def test_count(self, torus_4_3):
        cut = cut_edges_between_layers(torus_4_3, 0, 1)
        assert cut.size == 2 * 4**2

    def test_edges_cross_the_boundary(self, torus_4_2):
        cut = cut_edges_between_layers(torus_4_2, 0, 1)
        for eid in cut:
            e = torus_4_2.edges.decode(int(eid))
            tail_layer = torus_4_2.coord(e.tail)[0]
            head_layer = torus_4_2.coord(e.head)[0]
            assert {tail_layer, head_layer} == {1, 2}

    def test_wraparound_boundary(self, torus_4_2):
        cut = cut_edges_between_layers(torus_4_2, 0, 3)
        for eid in cut:
            e = torus_4_2.edges.decode(int(eid))
            layers = {torus_4_2.coord(e.tail)[0], torus_4_2.coord(e.head)[0]}
            assert layers == {3, 0}

    def test_both_directions_present(self, torus_4_2):
        cut = set(cut_edges_between_layers(torus_4_2, 1, 0).tolist())
        for eid in list(cut):
            assert torus_4_2.edges.reverse(eid) in cut

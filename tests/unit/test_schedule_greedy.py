"""Unit tests for repro.schedule.greedy."""

import numpy as np

from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.schedule.greedy import (
    greedy_phase_schedule,
    schedule_lower_bound,
)
from repro.torus.topology import Torus


class TestLowerBound:
    def test_ceil_of_max(self):
        assert schedule_lower_bound(np.array([0.5, 2.4])) == 3
        assert schedule_lower_bound(np.array([3.0])) == 3

    def test_empty(self):
        assert schedule_lower_bound(np.zeros(4)) == 0


class TestGreedySchedule:
    def test_all_messages_scheduled(self):
        p = linear_placement(Torus(5, 2))
        sched = greedy_phase_schedule(p, OrderedDimensionalRouting(2), seed=0)
        assert sched.num_messages == 5 * 4
        assert sched.validate()

    def test_phases_link_disjoint(self):
        p = linear_placement(Torus(4, 2))
        sched = greedy_phase_schedule(p, OrderedDimensionalRouting(2), seed=0)
        for phase in sched.phases:
            used = []
            for _s, _d, edges in phase:
                used.extend(edges)
            assert len(used) == len(set(used))

    def test_phases_at_least_lower_bound(self):
        for k, d in [(4, 2), (6, 2), (4, 3)]:
            p = linear_placement(Torus(k, d))
            for routing in (
                OrderedDimensionalRouting(d),
                UnorderedDimensionalRouting(),
            ):
                sched = greedy_phase_schedule(p, routing, seed=1)
                assert sched.num_phases >= sched.lower_bound

    def test_linear_placement_bandwidth_optimal_small(self):
        # greedy hits the bound exactly on T_6^2 + ODR
        p = linear_placement(Torus(6, 2))
        sched = greedy_phase_schedule(p, OrderedDimensionalRouting(2), seed=0)
        assert sched.num_phases == sched.lower_bound
        assert sched.optimality_ratio == 1.0

    def test_deterministic_given_seed(self):
        p = linear_placement(Torus(5, 2))
        a = greedy_phase_schedule(p, UnorderedDimensionalRouting(), seed=3)
        b = greedy_phase_schedule(p, UnorderedDimensionalRouting(), seed=3)
        assert a.phases == b.phases

    def test_two_processor_placement(self):
        torus = Torus(4, 2)
        p = Placement(torus, [0, 5])
        sched = greedy_phase_schedule(p, OrderedDimensionalRouting(2), seed=0)
        assert sched.num_messages == 2
        # the two opposite messages are link-disjoint: one phase suffices
        assert sched.num_phases == 1

    def test_validate_catches_tampering(self):
        p = linear_placement(Torus(4, 2))
        sched = greedy_phase_schedule(p, OrderedDimensionalRouting(2), seed=0)
        from dataclasses import replace

        # duplicating a message inside one phase breaks disjointness
        first = sched.phases[0][0]
        bad = replace(sched, phases=((first, first),) + sched.phases[1:])
        assert not bad.validate()

"""Unit tests for repro.viz.ascii_art."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.linear import linear_placement
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus
from repro.viz.ascii_art import (
    highlighted_edges,
    render_figure1,
    render_placement_2d,
)


class TestHighlightedEdges:
    def test_counts_for_figure1(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        used = highlighted_edges(p, AllMinimalPaths())
        assert len(used) == 24

    def test_odr_uses_fewer_links(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        odr = highlighted_edges(p, OrderedDimensionalRouting(2))
        allmin = highlighted_edges(p, AllMinimalPaths())
        assert odr <= allmin
        assert len(odr) < len(allmin)


class TestRender:
    def test_processor_count_in_render(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        text = render_placement_2d(p)
        assert text.count("[P]") == 3
        assert text.count("( )") == 6

    def test_highlight_markers(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        used = highlighted_edges(p, AllMinimalPaths())
        text = render_placement_2d(p, used)
        assert "===" in text or "#" in text

    def test_no_highlight_no_markers(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        text = render_placement_2d(p)
        assert "===" not in text and "#" not in text

    def test_wraparound_notes(self):
        torus = Torus(3, 2)
        p = linear_placement(torus)
        used = highlighted_edges(p, AllMinimalPaths())
        text = render_placement_2d(p, used)
        assert "wraparound" in text

    def test_rejects_3d(self):
        p = linear_placement(Torus(3, 3))
        with pytest.raises(InvalidParameterError):
            render_placement_2d(p)

    def test_figure1_header(self):
        text = render_figure1()
        assert "T_3^2" in text
        assert text.count("[P]") == 3

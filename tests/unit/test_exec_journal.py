"""Tests for repro.exec.journal — the checkpoint/resume JSONL format."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExecutionError
from repro.exec import JOURNAL_VERSION, CheckpointJournal

FP = {"workload": "test", "k": 4}


class TestFreshJournal:
    def test_writes_header_first(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path, fingerprint=FP):
            pass
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": FP,
        }

    def test_record_and_contains(self, tmp_path):
        with CheckpointJournal(tmp_path / "run.jsonl", fingerprint=FP) as j:
            j.record("t-0", 11)
            j.record("t-1", 22)
            assert "t-0" in j and "t-2" not in j
            assert len(j) == 2
            assert j.completed == {"t-0": 11, "t-1": 22}

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path, fingerprint=FP) as j:
            j.record("t-0", 11)
            j.record("t-0", 99)  # second write is dropped
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one task line
        assert json.loads(lines[1])["result"] == 11

    def test_fresh_mode_truncates_existing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path, fingerprint=FP) as j:
            j.record("t-0", 1)
        with CheckpointJournal(path, fingerprint=FP) as j:
            assert len(j) == 0
        assert len(path.read_text().splitlines()) == 1

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with CheckpointJournal(path, fingerprint=FP):
            pass
        assert path.exists()


class TestResume:
    def _written(self, tmp_path, results):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path, fingerprint=FP) as j:
            for task_id, value in results.items():
                j.record(task_id, value)
        return path

    def test_round_trip(self, tmp_path):
        path = self._written(tmp_path, {"t-0": 1, "t-1": [2, 3]})
        with CheckpointJournal(path, fingerprint=FP, resume=True) as j:
            assert j.completed == {"t-0": 1, "t-1": [2, 3]}

    def test_resume_appends(self, tmp_path):
        path = self._written(tmp_path, {"t-0": 1})
        with CheckpointJournal(path, fingerprint=FP, resume=True) as j:
            j.record("t-1", 2)
        with CheckpointJournal(path, fingerprint=FP, resume=True) as j:
            assert j.completed == {"t-0": 1, "t-1": 2}

    def test_encode_decode_hooks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(
            path, fingerprint=FP, encode=lambda v: {"x": list(v)}
        ) as j:
            j.record("t-0", (1, 2))
        with CheckpointJournal(
            path,
            fingerprint=FP,
            resume=True,
            decode=lambda d: tuple(d["x"]),
        ) as j:
            assert j.completed == {"t-0": (1, 2)}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ExecutionError, match="does not exist"):
            CheckpointJournal(
                tmp_path / "absent.jsonl", fingerprint=FP, resume=True
            )

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with pytest.raises(ExecutionError, match="empty"):
            CheckpointJournal(path, fingerprint=FP, resume=True)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "task", "id": "t-0", "result": 1}\n')
        with pytest.raises(ExecutionError, match="header"):
            CheckpointJournal(path, fingerprint=FP, resume=True)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "version": 99, "fingerprint": FP}
            )
            + "\n"
        )
        with pytest.raises(ExecutionError, match="version"):
            CheckpointJournal(path, fingerprint=FP, resume=True)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = self._written(tmp_path, {"t-0": 1})
        with pytest.raises(ExecutionError, match="fingerprint"):
            CheckpointJournal(
                path, fingerprint={"workload": "test", "k": 5}, resume=True
            )

    def test_torn_final_line_tolerated(self, tmp_path):
        # a process killed mid-write leaves a truncated last line — that
        # task must simply be treated as not-yet-completed.
        path = self._written(tmp_path, {"t-0": 1, "t-1": 2})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "id": "t-2", "res')
        with CheckpointJournal(path, fingerprint=FP, resume=True) as j:
            assert j.completed == {"t-0": 1, "t-1": 2}

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = self._written(tmp_path, {"t-0": 1})
        lines = path.read_text().splitlines()
        lines.insert(1, "NOT JSON")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExecutionError, match="corrupt"):
            CheckpointJournal(path, fingerprint=FP, resume=True)


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl", fingerprint=FP)
        journal.close()
        journal.close()

    def test_repr_mentions_path_and_count(self, tmp_path):
        with CheckpointJournal(tmp_path / "run.jsonl", fingerprint=FP) as j:
            j.record("t-0", 1)
            assert "run.jsonl" in repr(j) and "completed=1" in repr(j)

"""Unit tests for the experiment framework."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    experiment_ids,
    get_experiment,
    register,
)
from repro.util.tables import Table


class TestExperimentResult:
    def test_check_pass(self):
        r = ExperimentResult("X", "t")
        r.check(True, "ok")
        assert r.passed
        assert r.findings == ["[PASS] ok"]

    def test_check_fail_flips_verdict(self):
        r = ExperimentResult("X", "t")
        r.check(True, "ok")
        r.check(False, "broken")
        assert not r.passed
        assert "[FAIL] broken" in r.findings

    def test_note_does_not_fail(self):
        r = ExperimentResult("X", "t")
        r.note("informational")
        assert r.passed

    def test_render_contains_tables_and_verdict(self):
        r = ExperimentResult("X", "my title")
        t = Table(["a"])
        t.add_row([1])
        r.tables.append(t)
        r.check(True, "fine")
        text = r.render()
        assert "my title" in text
        assert "Verdict: PASS" in text
        assert "| a" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        # importing repro.experiments registers the full suite:
        # EXP-1..13 reproduce the paper, EXP-14..23 are extensions
        import repro.experiments  # noqa: F401

        ids = experiment_ids()
        assert ids == [f"EXP-{i}" for i in range(1, 24)]

    def test_get_experiment(self):
        import repro.experiments  # noqa: F401

        exp = get_experiment("EXP-2")
        assert isinstance(exp, Experiment)
        assert "Figure 1" in exp.title

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("EXP-999")

    def test_duplicate_registration_rejected(self):
        import repro.experiments  # noqa: F401

        with pytest.raises(ExperimentError):

            @register("EXP-1", "dup", "nowhere")
            def _dup(quick=False):
                raise NotImplementedError

"""Unit tests for repro.sim.workloads."""

import pytest

from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.workloads import build_packets, complete_exchange_packets


class TestCompleteExchange:
    def test_packet_count(self, linear_4_2):
        pkts = complete_exchange_packets(
            linear_4_2, OrderedDimensionalRouting(2), seed=0
        )
        assert len(pkts) == 4 * 3

    def test_rounds_multiply(self, linear_4_2):
        pkts = complete_exchange_packets(
            linear_4_2, OrderedDimensionalRouting(2), seed=0, rounds=3
        )
        assert len(pkts) == 36
        assert len({p.packet_id for p in pkts}) == 36

    def test_stagger_sets_release(self, linear_4_2):
        pkts = complete_exchange_packets(
            linear_4_2, OrderedDimensionalRouting(2), seed=0, rounds=2, stagger=10
        )
        releases = {p.release_cycle for p in pkts}
        assert releases == {0, 10}

    def test_paths_minimal(self, linear_5_2):
        torus = linear_5_2.torus
        pkts = complete_exchange_packets(
            linear_5_2, UnorderedDimensionalRouting(), seed=1
        )
        for p in pkts:
            assert p.path_length == torus.lee_distance_ids(p.src, p.dst)

    def test_deterministic_given_seed(self, linear_4_2):
        a = complete_exchange_packets(linear_4_2, UnorderedDimensionalRouting(), seed=5)
        b = complete_exchange_packets(linear_4_2, UnorderedDimensionalRouting(), seed=5)
        assert [p.edge_ids for p in a] == [p.edge_ids for p in b]

    def test_invalid_rounds(self, linear_4_2):
        with pytest.raises(ValueError):
            complete_exchange_packets(
                linear_4_2, OrderedDimensionalRouting(2), rounds=0
            )


class TestBuildPackets:
    def test_explicit_pairs(self, linear_4_2):
        pkts = build_packets(
            linear_4_2, OrderedDimensionalRouting(2), [(0, 1), (2, 3)], seed=0
        )
        assert len(pkts) == 2
        ids = linear_4_2.node_ids
        assert pkts[0].src == ids[0] and pkts[0].dst == ids[1]

    def test_start_id_offset(self, linear_4_2):
        pkts = build_packets(
            linear_4_2, OrderedDimensionalRouting(2), [(0, 1)], start_id=100
        )
        assert pkts[0].packet_id == 100

"""Unit tests for repro.torus.graph."""

import networkx as nx

from repro.torus.graph import (
    full_torus_diameter,
    to_networkx,
    to_networkx_undirected,
    torus_bisection_width,
)
from repro.torus.topology import Torus


class TestToNetworkx:
    def test_node_edge_counts(self, torus_4_2):
        g = to_networkx(torus_4_2)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 64

    def test_edge_attributes(self, torus_4_2):
        g = to_networkx(torus_4_2)
        data = g.get_edge_data(0, 1)
        assert set(data) == {"edge_id", "dim", "sign"}

    def test_strongly_connected(self, torus_4_2):
        assert nx.is_strongly_connected(to_networkx(torus_4_2))

    def test_removed_edges(self, torus_4_2):
        g_full = to_networkx(torus_4_2)
        g = to_networkx(torus_4_2, removed_edges=[0])
        assert g.number_of_edges() == g_full.number_of_edges() - 1

    def test_shortest_path_equals_lee(self, torus_5_2):
        g = to_networkx(torus_5_2)
        for u in range(0, 25, 6):
            for v in range(0, 25, 7):
                assert (
                    nx.shortest_path_length(g, u, v)
                    == torus_5_2.lee_distance_ids(u, v)
                )

    def test_undirected_regular(self, torus_5_2):
        g = to_networkx_undirected(torus_5_2)
        assert all(deg == 4 for _n, deg in g.degree())


class TestClassicalFacts:
    def test_bisection_width_directed(self):
        assert torus_bisection_width(4, 2) == 16
        assert torus_bisection_width(4, 3) == 64

    def test_bisection_width_undirected(self):
        assert torus_bisection_width(4, 2, directed=False) == 8

    def test_diameter(self):
        assert full_torus_diameter(6, 3) == 9
        assert full_torus_diameter(5, 2) == 4
        assert full_torus_diameter(5, 2) == Torus(5, 2).diameter

"""Unit tests for repro.placements.random_placement."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.analysis import layer_counts, uniform_dimensions
from repro.placements.random_placement import (
    random_placement,
    random_uniform_placement,
)


class TestRandomPlacement:
    def test_size(self, torus_4_3):
        assert len(random_placement(torus_4_3, 10, seed=0)) == 10

    def test_reproducible(self, torus_4_3):
        a = random_placement(torus_4_3, 10, seed=1)
        b = random_placement(torus_4_3, 10, seed=1)
        assert a == b

    def test_different_seeds_differ(self, torus_4_3):
        a = random_placement(torus_4_3, 20, seed=1)
        b = random_placement(torus_4_3, 20, seed=2)
        assert a != b

    def test_size_bounds(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            random_placement(torus_4_2, 0)
        with pytest.raises(InvalidParameterError):
            random_placement(torus_4_2, 17)

    def test_full_size_is_all_nodes(self, torus_4_2):
        p = random_placement(torus_4_2, 16, seed=0)
        assert len(p) == 16


class TestRandomUniformPlacement:
    def test_uniform_along_requested_dim(self, torus_4_3):
        p = random_uniform_placement(torus_4_3, per_layer=3, dim=1, seed=0)
        assert 1 in uniform_dimensions(p)
        assert layer_counts(p, 1).tolist() == [3, 3, 3, 3]

    def test_total_size(self, torus_4_2):
        p = random_uniform_placement(torus_4_2, per_layer=2, seed=0)
        assert len(p) == 8

    def test_per_layer_bounds(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            random_uniform_placement(torus_4_2, per_layer=0)
        with pytest.raises(InvalidParameterError):
            random_uniform_placement(torus_4_2, per_layer=5)

    def test_bad_dim(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            random_uniform_placement(torus_4_2, per_layer=1, dim=2)

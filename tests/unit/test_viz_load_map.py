"""Unit tests for repro.viz.load_map."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus
from repro.viz.load_map import render_load_map_2d


class TestLoadMap:
    def test_contains_grid_and_peak(self):
        p = linear_placement(Torus(4, 2))
        text = render_load_map_2d(p, odr_edge_loads(p))
        assert text.count("[P]") == 4
        assert "peak link load: 2" in text

    def test_zero_loads_all_dots(self):
        p = linear_placement(Torus(3, 2))
        text = render_load_map_2d(p, np.zeros(p.torus.num_edges))
        assert "9" not in text
        assert "peak link load: 0" in text

    def test_max_digit_present(self):
        p = linear_placement(Torus(4, 2))
        text = render_load_map_2d(p, odr_edge_loads(p))
        assert "9" in text  # the peak link renders as 9

    def test_rejects_3d(self):
        p = linear_placement(Torus(3, 3))
        with pytest.raises(InvalidParameterError):
            render_load_map_2d(p, np.zeros(p.torus.num_edges))

    def test_rejects_bad_shape(self):
        p = linear_placement(Torus(3, 2))
        with pytest.raises(InvalidParameterError):
            render_load_map_2d(p, np.zeros(3))

    def test_wraparound_notes_present(self):
        p = linear_placement(Torus(4, 2))
        text = render_load_map_2d(p, odr_edge_loads(p))
        assert "wraparound" in text

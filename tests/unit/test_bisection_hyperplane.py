"""Unit tests for repro.bisection.hyperplane (the Appendix algorithm)."""

import pytest

from repro.bisection.hyperplane import hyperplane_bisection
from repro.load.formulas import appendix_sweep_bound, corollary1_bisection_bound
from repro.placements.base import Placement
from repro.placements.fully import block_placement, fully_populated_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.torus.topology import Torus


class TestBalance:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (4, 3), (6, 3)])
    def test_linear_placements(self, k, d):
        p = linear_placement(Torus(k, d))
        sweep = hyperplane_bisection(p)
        assert sweep.is_balanced
        assert sweep.processors_a + sweep.processors_b == len(p)

    def test_odd_placement_size(self, torus_5_2):
        p = Placement(torus_5_2, [0, 7, 13])
        sweep = hyperplane_bisection(p)
        assert {sweep.processors_a, sweep.processors_b} == {1, 2}

    def test_single_processor(self, torus_4_2):
        p = Placement(torus_4_2, [5])
        sweep = hyperplane_bisection(p)
        assert {sweep.processors_a, sweep.processors_b} == {0, 1}

    def test_random_and_block(self, torus_4_3):
        for p in (
            random_placement(torus_4_3, 21, seed=0),
            block_placement(torus_4_3, 2),
        ):
            assert hyperplane_bisection(p).is_balanced


class TestBounds:
    @pytest.mark.parametrize("k,d", [(4, 2), (6, 2), (4, 3), (5, 3)])
    def test_appendix_crossing_bound(self, k, d):
        p = fully_populated_placement(Torus(k, d))
        sweep = hyperplane_bisection(p)
        assert sweep.array_edges_crossed <= appendix_sweep_bound(k, d)

    @pytest.mark.parametrize("k,d", [(4, 2), (6, 2), (4, 3)])
    def test_corollary1_torus_cut(self, k, d):
        for placement in (
            linear_placement(Torus(k, d)),
            random_placement(Torus(k, d), k ** (d - 1), seed=1),
        ):
            sweep = hyperplane_bisection(placement)
            assert sweep.torus_cut_size <= corollary1_bisection_bound(k, d)


class TestCutCertificate:
    def test_cut_separates_the_sides(self, torus_4_2):
        p = linear_placement(torus_4_2)
        sweep = hyperplane_bisection(p)
        side_a = set(sweep.side_a_node_ids.tolist())
        for eid in sweep.torus_cut_edge_ids:
            e = torus_4_2.edges.decode(int(eid))
            assert (e.tail in side_a) != (e.head in side_a)

    def test_removing_cut_disconnects(self, torus_4_2):
        import networkx as nx

        from repro.torus.graph import to_networkx

        p = linear_placement(torus_4_2)
        sweep = hyperplane_bisection(p)
        g = to_networkx(torus_4_2, removed_edges=sweep.torus_cut_edge_ids)
        side_a = set(sweep.side_a_node_ids.tolist())
        side_b = set(range(torus_4_2.num_nodes)) - side_a
        for u in side_a:
            for v in side_b:
                assert not nx.has_path(g, u, v)

    def test_gamma_recorded(self, torus_4_2):
        sweep = hyperplane_bisection(linear_placement(torus_4_2))
        assert 1.0 < sweep.gamma < 2.0

    def test_explicit_gamma(self, torus_4_2):
        sweep = hyperplane_bisection(linear_placement(torus_4_2), gamma=1.3)
        assert sweep.gamma == pytest.approx(1.3)
        assert sweep.is_balanced


class TestGammaRetry:
    def test_collision_triggers_perturbation(self):
        # gamma = 1.25 makes (5,0) and (0,4) project equally on T_6^2
        # (5 + 0*1.25 == 0 + 4*1.25): the sweep must detect the collision
        # and retry with a perturbed gamma
        torus = Torus(6, 2)
        placement = Placement(
            torus, torus.node_ids([(5, 0), (0, 4), (1, 1), (2, 3)])
        )
        sweep = hyperplane_bisection(placement, gamma=1.25)
        assert sweep.is_balanced
        assert sweep.gamma != pytest.approx(1.25, abs=1e-9)

"""Unit tests for repro.bisection.heuristics."""


from repro.bisection.heuristics import spectral_bisection
from repro.load.formulas import corollary1_bisection_bound
from repro.placements.fully import block_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.torus.topology import Torus


class TestSpectralBisection:
    def test_balanced_on_linear(self):
        p = linear_placement(Torus(6, 2))
        res = spectral_bisection(p)
        assert res.is_balanced

    def test_balanced_on_random(self):
        p = random_placement(Torus(4, 3), 20, seed=3)
        assert spectral_bisection(p).is_balanced

    def test_cut_edges_cross(self):
        p = linear_placement(Torus(6, 2))
        res = spectral_bisection(p)
        side_a = set(res.side_a_node_ids.tolist())
        for eid in res.cut_edge_ids:
            e = p.torus.edges.decode(int(eid))
            assert (e.tail in side_a) != (e.head in side_a)

    def test_deterministic(self):
        p = block_placement(Torus(6, 2), 3)
        a = spectral_bisection(p, seed=0)
        b = spectral_bisection(p, seed=0)
        assert a.cut_size == b.cut_size
        assert (a.side_a_node_ids == b.side_a_node_ids).all()

    def test_reasonable_cut_size(self):
        # heuristic quality: stays within the Corollary 1 regime x a margin
        p = linear_placement(Torus(6, 2))
        res = spectral_bisection(p)
        assert res.cut_size <= 2 * corollary1_bisection_bound(6, 2)

"""Unit tests for repro.sim.node_faults."""

import numpy as np
import pytest

from repro.placements.linear import linear_placement
from repro.routing.faults import FaultMaskedRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.node_faults import (
    edges_of_nodes,
    node_failure_impact,
    random_node_failures,
)
from repro.torus.topology import Torus


class TestEdgesOfNodes:
    def test_single_node_degree(self, torus_4_2):
        edges = edges_of_nodes(torus_4_2, [0])
        # 2d outgoing + 2d incoming directed links
        assert edges.size == 4 * torus_4_2.d

    def test_edges_touch_the_node(self, torus_4_2):
        for eid in edges_of_nodes(torus_4_2, [5]):
            e = torus_4_2.edges.decode(int(eid))
            assert 5 in (e.tail, e.head)

    def test_adjacent_nodes_shared_links_once(self, torus_4_2):
        edges = edges_of_nodes(torus_4_2, [0, 1])
        assert edges.size == np.unique(edges).size
        # each node touches 2d out + 2d in = 8 directed links; the two
        # links between nodes 0 and 1 are shared: 8 + 8 - 2 = 14
        assert edges.size == 14

    def test_empty(self, torus_4_2):
        assert edges_of_nodes(torus_4_2, []).size == 0


class TestRandomNodeFailures:
    def test_count_and_reproducibility(self, torus_4_2):
        a = random_node_failures(torus_4_2, 4, seed=1)
        b = random_node_failures(torus_4_2, 4, seed=1)
        assert a.size == 4 and np.array_equal(a, b)

    def test_bounds(self, torus_4_2):
        with pytest.raises(ValueError):
            random_node_failures(torus_4_2, 17)


class TestNodeFailureImpact:
    def test_router_only_failure_loses_no_processors(self):
        torus = Torus(5, 2)
        placement = linear_placement(torus)
        router = placement.complement().node_ids[0]
        impact = node_failure_impact(placement, [router])
        assert impact.lost_processors == 0
        assert len(impact.surviving_placement) == len(placement)

    def test_processor_failure_counted(self):
        torus = Torus(5, 2)
        placement = linear_placement(torus)
        dead = placement.node_ids[:2]
        impact = node_failure_impact(placement, dead)
        assert impact.lost_processors == 2
        assert len(impact.surviving_placement) == len(placement) - 2

    def test_total_loss(self):
        torus = Torus(3, 2)
        placement = linear_placement(torus)
        impact = node_failure_impact(placement, placement.node_ids)
        assert impact.surviving_placement is None
        assert impact.lost_processors == 3

    def test_composes_with_fault_masked_routing(self):
        torus = Torus(5, 2)
        placement = linear_placement(torus)
        router = placement.complement().node_ids[7]
        impact = node_failure_impact(placement, [router])
        masked = FaultMaskedRouting(
            UnorderedDimensionalRouting(), impact.failed_edges
        )
        coords = impact.surviving_placement.coords()
        # surviving processors can still route around the dead router
        connected = sum(
            masked.is_connected(torus, coords[i], coords[j])
            for i in range(len(coords))
            for j in range(len(coords))
            if i != j
        )
        assert connected > 0

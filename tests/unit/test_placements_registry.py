"""Unit tests for repro.placements.registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.base import PlacementFamily
from repro.placements.registry import family_names, get_family, register_family


class TestRegistry:
    def test_known_families(self):
        names = family_names()
        assert "linear" in names
        assert "fully-populated" in names

    def test_get_family_builds(self):
        fam = get_family("linear")
        assert len(fam.build(4, 2)) == 4

    def test_multilinear_variants(self):
        assert get_family("multilinear-t2").expected_size(4, 2) == 8
        assert get_family("multilinear-t3").expected_size(4, 2) == 12

    def test_unknown_family(self):
        with pytest.raises(InvalidParameterError):
            get_family("no-such-family")

    def test_register_custom(self):
        class Dummy(PlacementFamily):
            name = "dummy"

            def build(self, k, d):
                raise NotImplementedError

            def expected_size(self, k, d):
                return 0

        register_family("dummy-test", Dummy)
        assert "dummy-test" in family_names()
        assert isinstance(get_family("dummy-test"), Dummy)

    def test_register_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_family("", lambda: None)

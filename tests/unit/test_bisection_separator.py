"""Unit tests for repro.bisection.separator."""

import numpy as np
import pytest

from repro.bisection.separator import (
    crossing_edges_between,
    separator_edges,
    separator_size,
)
from repro.torus.subtorus import principal_subtorus_nodes


class TestSeparatorEdges:
    def test_singleton(self, torus_4_2):
        edges = separator_edges(torus_4_2, [0])
        assert edges.size == 8  # 4d = 8 for d=2
        # every edge touches node 0 on exactly one side
        for eid in edges:
            e = torus_4_2.edges.decode(int(eid))
            assert (e.tail == 0) != (e.head == 0)

    def test_symmetric_in_complement(self, torus_4_2):
        s = np.array([0, 1, 5, 6])
        comp = np.setdiff1d(np.arange(16), s)
        assert np.array_equal(
            separator_edges(torus_4_2, s), separator_edges(torus_4_2, comp)
        )

    def test_both_directions_present(self, torus_4_2):
        edges = set(separator_edges(torus_4_2, [0, 1]).tolist())
        for eid in list(edges):
            assert torus_4_2.edges.reverse(eid) in edges

    def test_two_adjacent_nodes(self, torus_4_2):
        # 2 nodes, 8 incident directed edges each, minus the 2 internal
        assert separator_size(torus_4_2, [0, 1]) == 16 - 2 * 1 - 2 * 1

    def test_layer(self, torus_6_3):
        layer = principal_subtorus_nodes(torus_6_3, 0, 2)
        # a full layer has boundary 2 cuts x 2k^(d-1)
        assert separator_size(torus_6_3, layer) == 4 * 36


class TestCrossingEdgesBetween:
    def test_partial_partition(self, torus_4_2):
        a = np.array([0])
        b = np.array([1])
        crossing = crossing_edges_between(torus_4_2, a, b)
        assert crossing.size == 2  # one undirected link = two directed

    def test_ignores_outsiders(self, torus_4_2):
        a = np.array([0])
        b = np.array([5])  # not adjacent to 0
        assert crossing_edges_between(torus_4_2, a, b).size == 0

    def test_disjointness_enforced(self, torus_4_2):
        with pytest.raises(ValueError):
            crossing_edges_between(torus_4_2, [0, 1], [1, 2])

    def test_full_partition_matches_separator(self, torus_4_2):
        a = np.arange(8)
        b = np.arange(8, 16)
        assert np.array_equal(
            crossing_edges_between(torus_4_2, a, b),
            separator_edges(torus_4_2, a),
        )

"""Unit tests for repro.placements.catalog."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.catalog import (
    MAX_CATALOG,
    enumerate_placements,
    global_minimum_emax,
)
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestEnumerate:
    def test_count(self):
        torus = Torus(3, 2)
        assert sum(1 for _ in enumerate_placements(torus, 3)) == math.comb(9, 3)

    def test_each_has_requested_size(self):
        torus = Torus(2, 2)
        for p in enumerate_placements(torus, 2):
            assert len(p) == 2

    def test_invalid_size(self):
        torus = Torus(3, 2)
        with pytest.raises(InvalidParameterError):
            list(enumerate_placements(torus, 0))
        with pytest.raises(InvalidParameterError):
            list(enumerate_placements(torus, 10))


class TestGlobalMinimum:
    def test_t32_linear_is_global_optimum(self):
        torus = Torus(3, 2)
        res = global_minimum_emax(torus, 3)
        linear_emax = float(odr_edge_loads(linear_placement(torus)).max())
        assert res.minimum_emax == linear_emax
        assert res.num_placements == 84
        assert res.num_optimal >= 1
        assert float(
            odr_edge_loads(res.example_optimal).max()
        ) == res.minimum_emax

    def test_histogram_sums_to_total(self):
        torus = Torus(3, 2)
        res = global_minimum_emax(torus, 3)
        assert sum(res.emax_histogram.values()) == res.num_placements

    def test_minimum_is_histogram_min(self):
        torus = Torus(3, 2)
        res = global_minimum_emax(torus, 3)
        assert res.minimum_emax == min(res.emax_histogram)

    def test_too_large_rejected(self):
        torus = Torus(6, 2)
        # C(36, 18) >> MAX_CATALOG
        assert math.comb(36, 18) > MAX_CATALOG
        with pytest.raises(InvalidParameterError):
            global_minimum_emax(torus, 18)


class TestParallel:
    def test_parallel_matches_serial(self):
        torus = Torus(3, 2)
        serial = global_minimum_emax(torus, 3)
        parallel = global_minimum_emax(torus, 3, processes=2)
        assert serial.minimum_emax == parallel.minimum_emax
        assert serial.num_optimal == parallel.num_optimal
        assert serial.emax_histogram == parallel.emax_histogram

    def test_processes_one_is_serial(self):
        torus = Torus(3, 2)
        a = global_minimum_emax(torus, 3, processes=1)
        b = global_minimum_emax(torus, 3)
        assert a.minimum_emax == b.minimum_emax

"""Tests for repro.obs.tracer — spans, ambient installation, null paths."""

from __future__ import annotations

import os

import pytest

from repro.errors import SearchError
from repro.obs import (
    NULL_TRACER,
    Tracer,
    current_tracer,
    set_tracer,
    using_tracer,
)
from repro.obs.tracer import _NULL_SPAN


@pytest.fixture(autouse=True)
def _reset_ambient():
    yield
    set_tracer(None)


class _ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


class TestSpanNesting:
    def test_parent_ids_follow_the_open_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert outer.parent_id is None
            assert tracer.current_span_id() == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert tracer.current_span_id() is None

    def test_span_ids_are_unique_and_pid_qualified(self):
        tracer = Tracer()
        ids = set()
        for _ in range(50):
            with tracer.span("s") as span:
                ids.add(span.span_id)
        assert len(ids) == 50
        assert all(s.startswith(f"{os.getpid():08x}-") for s in ids)

    def test_durations_are_monotonic_and_set_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.duration_seconds >= 0.0

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(SearchError):
            with tracer.span("failing") as span:
                raise SearchError("boom")
        assert span.status == "error"
        assert span.attributes["error"] == "SearchError"

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.annotate(b=2)
        assert span.attributes == {"a": 1, "b": 2}

    def test_finished_spans_kept_without_sink(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in tracer.finished] == ["b", "a"]


class TestRecordsAndEvents:
    def test_span_record_shape(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("work", k=4):
            pass
        (record,) = sink.records
        assert record["kind"] == "span"
        assert record["name"] == "work"
        assert record["parent"] is None
        assert record["attributes"] == {"k": 4}
        assert record["status"] == "ok"

    def test_event_attached_to_open_span(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer") as outer:
            tracer.event("exec.retry", task_id="t-1")
        event = sink.records[0]
        assert event["kind"] == "event"
        assert event["span"] == outer.span_id
        assert event["attributes"]["task_id"] == "t-1"

    def test_record_span_parents_to_open_span(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("run") as run:
            tracer.record_span("exec.task", 0.25, task_id="t-0")
        task = sink.records[0]
        assert task["kind"] == "span"
        assert task["parent"] == run.span_id
        assert task["duration_seconds"] == 0.25

    def test_finish_flushes_metrics_and_is_idempotent(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        tracer.metrics.counter("n").add(3)
        tracer.finish()
        tracer.finish()
        metric_records = [
            r for r in sink.records if r["kind"] == "metrics"
        ]
        assert len(metric_records) == 1
        assert metric_records[0]["values"]["counters"] == {"n": 3.0}


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_using_tracer_installs_and_restores(self):
        tracer = Tracer()
        with using_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_using_tracer_none_is_a_noop(self):
        tracer = Tracer()
        with using_tracer(tracer):
            with using_tracer(None):
                assert current_tracer() is tracer
            assert current_tracer() is tracer

    def test_set_tracer_none_resets(self):
        set_tracer(Tracer())
        assert set_tracer(None) is NULL_TRACER
        assert current_tracer() is NULL_TRACER

    def test_nested_using_tracer_restores_outer(self):
        outer, inner = Tracer(label="o"), Tracer(label="i")
        with using_tracer(outer):
            with using_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestNullTracer:
    def test_span_is_the_shared_noop(self):
        assert NULL_TRACER.span("anything", k=1) is _NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span.annotate(a=1) is span
        assert NULL_TRACER.current_span_id() is None

    def test_all_operations_are_noops(self):
        NULL_TRACER.record_span("s", 1.0)
        NULL_TRACER.event("e", detail="x")
        NULL_TRACER.finish()
        assert not NULL_TRACER.enabled

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("must propagate")

"""Unit tests for repro.sim.metrics."""

import numpy as np
import pytest

from repro.sim.metrics import summarize_link_counts


class TestSummarize:
    def test_basic(self):
        s = summarize_link_counts(np.array([0, 2, 4, 0]))
        assert s.max_count == 4
        assert s.total_traversals == 6
        assert s.used_links == 2
        assert s.mean_count == 1.5
        assert s.mean_nonzero == 3.0

    def test_all_zero(self):
        s = summarize_link_counts(np.zeros(4, dtype=int))
        assert s.max_count == 0
        assert s.mean_nonzero == 0.0

    def test_normalized(self):
        s = summarize_link_counts(np.array([0, 4, 8]))
        n = s.normalized(4)
        assert n.max_count == 2
        assert n.total_traversals == 3

    def test_normalized_fractional_counts(self):
        # regression: rounds that do not divide the counts used to be
        # silently floored (4 // 3 == 1, 7 // 3 == 2)
        s = summarize_link_counts(np.array([0, 3, 4]))
        n = s.normalized(3)
        assert n.max_count == pytest.approx(4 / 3)
        assert n.total_traversals == pytest.approx(7 / 3)
        assert n.mean_count == pytest.approx(s.mean_count / 3)
        assert n.mean_nonzero == pytest.approx(s.mean_nonzero / 3)
        assert n.used_links == s.used_links

    def test_normalized_invalid(self):
        s = summarize_link_counts(np.array([1]))
        with pytest.raises(ValueError):
            s.normalized(0)

"""Unit tests for repro.routing.faults."""

import pytest

from repro.errors import RoutingError
from repro.routing.faults import FaultMaskedRouting
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestFaultMasking:
    def test_no_failures_passthrough(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        masked = FaultMaskedRouting(odr, [])
        assert masked.paths(torus_5_2, (0, 0), (2, 2)) == odr.paths(
            torus_5_2, (0, 0), (2, 2)
        )

    def test_odr_single_failure_disconnects(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        path = odr.path(torus_5_2, (0, 0), (2, 2))
        masked = FaultMaskedRouting(odr, [path.edge_ids[0]])
        assert not masked.is_connected(torus_5_2, (0, 0), (2, 2))
        with pytest.raises(RoutingError):
            masked.paths(torus_5_2, (0, 0), (2, 2))

    def test_udr_survives_single_failure(self, torus_5_2):
        udr = UnorderedDimensionalRouting()
        odr_first_edge = udr.paths(torus_5_2, (0, 0), (2, 2))[0].edge_ids[0]
        masked = FaultMaskedRouting(udr, [odr_first_edge])
        assert masked.is_connected(torus_5_2, (0, 0), (2, 2))
        # exactly one of the two UDR paths starts with the failed edge
        surviving = masked.surviving_paths(torus_5_2, (0, 0), (2, 2))
        assert len(surviving) == 1

    def test_unaffected_pairs_keep_all_paths(self, torus_5_2):
        udr = UnorderedDimensionalRouting()
        # fail an edge far from the (0,0)->(1,0) route
        far_edge = torus_5_2.edges.edge_id(torus_5_2.node_id((3, 3)), 0, +1)
        masked = FaultMaskedRouting(udr, [far_edge])
        assert len(masked.paths(torus_5_2, (0, 0), (1, 0))) == 1

    def test_name_reports_failures(self):
        odr = OrderedDimensionalRouting(2)
        assert "faults(3)" in FaultMaskedRouting(odr, [1, 2, 3]).name

    def test_all_paths_blocked_multi(self):
        torus = Torus(5, 2)
        udr = UnorderedDimensionalRouting()
        paths = udr.paths(torus, (0, 0), (1, 1))
        # kill the first edge of both paths
        failed = [p.edge_ids[0] for p in paths]
        masked = FaultMaskedRouting(udr, failed)
        assert not masked.is_connected(torus, (0, 0), (1, 1))

    def test_non_strict_returns_empty_path_set(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        path = odr.path(torus_5_2, (0, 0), (2, 2))
        masked = FaultMaskedRouting(odr, [path.edge_ids[0]], strict=False)
        assert masked.paths(torus_5_2, (0, 0), (2, 2)) == []
        # connected pairs behave exactly as in strict mode
        assert masked.paths(torus_5_2, (0, 0), (0, 1)) == odr.paths(
            torus_5_2, (0, 0), (0, 1)
        )

    def test_fault_masking_is_not_translation_invariant(self):
        odr = OrderedDimensionalRouting(2)
        assert odr.translation_invariant
        assert not FaultMaskedRouting(odr, [0]).translation_invariant

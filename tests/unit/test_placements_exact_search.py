"""Unit tests for the symmetry-reduced exact search engine."""

import math

import pytest

from repro.errors import InvalidParameterError, SearchError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.catalog import global_minimum_emax
from repro.placements.exact_search import exact_global_minimum
from repro.placements.linear import linear_placement
from repro.placements.symmetry import automorphism_group
from repro.torus.topology import Torus


@pytest.fixture(scope="module")
def catalog_4_2():
    return global_minimum_emax(Torus(4, 2), 4)


@pytest.fixture(scope="module")
def full_4_2():
    return exact_global_minimum(Torus(4, 2), 4, mode="full")


class TestFullModeVsBruteForce:
    def test_minimum_identical(self, catalog_4_2, full_4_2):
        assert full_4_2.minimum_emax == catalog_4_2.minimum_emax

    def test_num_optimal_identical(self, catalog_4_2, full_4_2):
        assert full_4_2.num_optimal == catalog_4_2.num_optimal

    def test_histogram_bit_identical(self, catalog_4_2, full_4_2):
        # restricted-ODR loads are exact integers in float64, so the
        # orbit-weighted histogram keys match the brute force exactly
        assert full_4_2.emax_histogram == catalog_4_2.emax_histogram

    def test_t3_matches_too(self):
        torus = Torus(3, 2)
        catalog = global_minimum_emax(torus, 3)
        result = exact_global_minimum(torus, 3, mode="full")
        assert result.minimum_emax == catalog.minimum_emax
        assert result.num_optimal == catalog.num_optimal
        assert result.emax_histogram == catalog.emax_histogram


class TestOrbitAccounting:
    def test_histogram_covers_all_placements(self, full_4_2):
        # Burnside cross-check: orbit sizes from stabilizer counting must
        # sum to C(k^d, n) exactly
        assert sum(full_4_2.emax_histogram.values()) == math.comb(16, 4)
        assert full_4_2.num_placements == math.comb(16, 4)

    def test_orbit_sizes_sum_via_group(self):
        # independent Burnside check straight from the group: every
        # size-3 subset of T_3^2, binned by canonicity
        torus = Torus(3, 2)
        group = automorphism_group(torus)
        import itertools

        total = 0
        for ids in itertools.combinations(range(torus.num_nodes), 3):
            canonical, stab = group.canonicity(ids)
            if canonical:
                total += group.order // stab
        assert total == math.comb(9, 3)

    def test_num_orbits_reported_in_full_mode(self, full_4_2):
        assert full_4_2.num_orbits == 33  # known orbit count of C(16,4)


class TestBoundMode:
    def test_matches_full_mode(self, full_4_2):
        result = exact_global_minimum(Torus(4, 2), 4, mode="bound")
        assert result.minimum_emax == full_4_2.minimum_emax
        assert result.num_optimal == full_4_2.num_optimal

    def test_no_histogram_in_bound_mode(self):
        result = exact_global_minimum(Torus(3, 2), 3, mode="bound")
        assert result.emax_histogram is None
        assert result.num_orbits is None

    def test_seeded_incumbent_still_exact(self, full_4_2):
        torus = Torus(4, 2)
        ub = float(odr_edge_loads(linear_placement(torus)).max())
        result = exact_global_minimum(
            torus, 4, mode="bound", initial_upper_bound=ub
        )
        assert result.minimum_emax == full_4_2.minimum_emax
        assert result.num_optimal == full_4_2.num_optimal

    def test_t5_certified(self):
        torus = Torus(5, 2)
        ub = float(odr_edge_loads(linear_placement(torus)).max())
        result = exact_global_minimum(
            torus, 5, mode="bound", initial_upper_bound=ub
        )
        assert result.minimum_emax == 2.0
        assert result.num_optimal == 1545
        assert result.num_placements == math.comb(25, 5)

    def test_unachievable_upper_bound_raises(self):
        with pytest.raises(SearchError):
            exact_global_minimum(
                Torus(3, 2), 3, mode="bound", initial_upper_bound=0.25
            )


class TestWitness:
    def test_witness_reevaluates_to_minimum(self, full_4_2):
        # independent full evaluation certifies the reported witness
        emax = float(odr_edge_loads(full_4_2.example_optimal).max())
        assert emax == full_4_2.minimum_emax

    def test_witness_size(self, full_4_2):
        assert len(full_4_2.example_optimal) == 4


class TestCounters:
    def test_zero_full_evaluations(self, full_4_2):
        # the whole point: every load vector is grown incrementally
        assert full_4_2.counters.full_evaluations == 0

    def test_far_fewer_leaf_variants_than_placements(self, full_4_2):
        assert (
            full_4_2.counters.variant_evaluations
            < full_4_2.num_placements / 5
        )

    def test_bound_mode_prunes(self):
        torus = Torus(4, 2)
        ub = float(odr_edge_loads(linear_placement(torus)).max())
        result = exact_global_minimum(
            torus, 4, mode="bound", initial_upper_bound=ub
        )
        counters = result.counters
        assert counters.subtrees_pruned_emax + counters.variants_dropped > 0
        assert counters.leaf_orbits < 33  # full mode visits all 33 orbits


class TestParallel:
    def test_parallel_matches_serial_full(self, full_4_2):
        result = exact_global_minimum(Torus(4, 2), 4, mode="full", processes=2)
        assert result.minimum_emax == full_4_2.minimum_emax
        assert result.num_optimal == full_4_2.num_optimal
        assert result.emax_histogram == full_4_2.emax_histogram

    def test_parallel_matches_serial_bound(self):
        torus = Torus(5, 2)
        serial = exact_global_minimum(torus, 5, mode="bound")
        parallel = exact_global_minimum(torus, 5, mode="bound", processes=2)
        assert parallel.minimum_emax == serial.minimum_emax
        assert parallel.num_optimal == serial.num_optimal


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(InvalidParameterError):
            exact_global_minimum(Torus(3, 2), 3, mode="fast")

    def test_bad_size(self):
        with pytest.raises(InvalidParameterError):
            exact_global_minimum(Torus(3, 2), 0)
        with pytest.raises(InvalidParameterError):
            exact_global_minimum(Torus(3, 2), 10)

    def test_space_too_large(self):
        with pytest.raises(InvalidParameterError):
            exact_global_minimum(Torus(8, 2), 20)

    def test_tiny_size_works(self):
        # size 1: every node is one orbit of the transitive group
        result = exact_global_minimum(Torus(3, 2), 1, mode="full")
        assert result.minimum_emax == 0.0
        assert result.num_optimal == 9

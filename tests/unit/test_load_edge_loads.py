"""Unit tests for repro.load.edge_loads (the reference oracle)."""

import numpy as np
import pytest

from repro.errors import LoadError
from repro.load.edge_loads import edge_loads_reference
from repro.load.traffic import complete_exchange_weights
from repro.placements.base import Placement
from repro.routing.faults import FaultMaskedRouting
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus


class TestReferenceLoads:
    def test_two_nodes_single_dim(self):
        torus = Torus(4, 1)
        p = Placement(torus, [0, 1])
        loads = edge_loads_reference(p, OrderedDimensionalRouting(1))
        # 0->1 uses edge (0,+); 1->0 uses edge (1,-)
        ei = torus.edges
        assert loads[ei.edge_id(0, 0, +1)] == 1.0
        assert loads[ei.edge_id(1, 0, -1)] == 1.0
        assert loads.sum() == 2.0

    def test_fractional_under_multipath(self, torus_5_2):
        p = Placement(
            torus_5_2, torus_5_2.node_ids([(0, 0), (1, 1)]), name="pair"
        )
        loads = edge_loads_reference(p, AllMinimalPaths())
        # each direction has 2 paths; each edge on a path carries 1/2
        used = loads[loads > 0]
        assert np.allclose(used, 0.5)
        assert loads.sum() == 2 * 2  # 2 messages x Lee distance 2

    def test_conservation(self, linear_4_2):
        loads = edge_loads_reference(linear_4_2, OrderedDimensionalRouting(2))
        coords = linear_4_2.coords()
        total_lee = sum(
            linear_4_2.torus.lee_distance(coords[i], coords[j])
            for i in range(len(linear_4_2))
            for j in range(len(linear_4_2))
            if i != j
        )
        assert loads.sum() == pytest.approx(total_lee)

    def test_explicit_weights_match_default(self, linear_4_2):
        odr = OrderedDimensionalRouting(2)
        default = edge_loads_reference(linear_4_2, odr)
        weighted = edge_loads_reference(
            linear_4_2, odr, complete_exchange_weights(len(linear_4_2))
        )
        assert np.allclose(default, weighted)

    def test_weight_scaling(self, linear_4_2):
        odr = OrderedDimensionalRouting(2)
        w = 3.0 * complete_exchange_weights(len(linear_4_2))
        assert np.allclose(
            edge_loads_reference(linear_4_2, odr, w),
            3.0 * edge_loads_reference(linear_4_2, odr),
        )

    def test_zero_weights_skip_pairs(self, linear_4_2):
        odr = OrderedDimensionalRouting(2)
        w = np.zeros((len(linear_4_2), len(linear_4_2)))
        assert edge_loads_reference(linear_4_2, odr, w).sum() == 0.0

    def test_bad_weight_shape(self, linear_4_2):
        odr = OrderedDimensionalRouting(2)
        with pytest.raises(ValueError):
            edge_loads_reference(linear_4_2, odr, np.ones((2, 2)))

    def test_disconnected_pair_raises_load_error(self, torus_4_2):
        # regression: an empty path set used to surface as a bare
        # ZeroDivisionError from `w / len(paths)`
        placement = Placement(torus_4_2, [0, 1])  # (0,0) and (0,1)
        masked = FaultMaskedRouting(
            OrderedDimensionalRouting(2),
            [torus_4_2.edges.edge_id(0, 1, +1)],  # the only 0 -> 1 ODR link
            strict=False,
        )
        with pytest.raises(LoadError, match=r"\(0, 0\).*\(0, 1\)"):
            edge_loads_reference(placement, masked)

    def test_disconnected_pair_with_zero_weight_is_skipped(self, torus_4_2):
        placement = Placement(torus_4_2, [0, 1])
        masked = FaultMaskedRouting(
            OrderedDimensionalRouting(2),
            [torus_4_2.edges.edge_id(0, 1, +1)],
            strict=False,
        )
        w = np.zeros((2, 2))
        w[1, 0] = 1.0  # only the intact direction carries traffic
        loads = edge_loads_reference(placement, masked, w)
        assert loads.sum() == pytest.approx(1.0)

"""Unit tests for the incremental ODR load updates (swap/add deltas)."""

import numpy as np
import pytest

from repro.load.odr_loads import (
    accumulate_pair_loads,
    odr_edge_loads,
    odr_edge_loads_add_delta,
    odr_edge_loads_swap_delta,
)
from repro.placements.base import Placement
from repro.placements.random_placement import random_placement
from repro.torus.topology import Torus


def _swap(torus, placement, out_pos, router_pick):
    ids = placement.node_ids
    removed = int(ids[out_pos])
    routers = np.setdiff1d(np.arange(torus.num_nodes), ids)
    added = int(routers[router_pick])
    kept = np.delete(ids, out_pos)
    return removed, added, kept


class TestSwapDelta:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (4, 3)])
    def test_matches_full_recompute(self, k, d):
        torus = Torus(k, d)
        placement = random_placement(torus, min(8, torus.num_nodes - 2), seed=k + d)
        loads = odr_edge_loads(placement)
        removed, added, kept = _swap(torus, placement, 2, 1)
        incremental = odr_edge_loads_swap_delta(
            torus, loads, torus.coords(kept), torus.coord(removed),
            torus.coord(added)
        )
        full = odr_edge_loads(Placement(torus, list(kept) + [added]))
        assert np.allclose(incremental, full)

    def test_input_not_mutated(self):
        torus = Torus(4, 2)
        placement = random_placement(torus, 5, seed=0)
        loads = odr_edge_loads(placement)
        before = loads.copy()
        removed, added, kept = _swap(torus, placement, 0, 0)
        odr_edge_loads_swap_delta(
            torus, loads, torus.coords(kept), torus.coord(removed),
            torus.coord(added)
        )
        assert np.array_equal(loads, before)

    def test_single_processor_placement(self):
        # kept set empty: swapping the only processor yields zero loads
        torus = Torus(4, 2)
        placement = Placement(torus, [3])
        loads = odr_edge_loads(placement)
        out = odr_edge_loads_swap_delta(
            torus, loads, np.empty((0, 2), dtype=np.int64),
            torus.coord(3), torus.coord(7)
        )
        assert np.allclose(out, loads)  # both all-zero

    def test_identity_swap(self):
        # removing and re-adding the same node is a no-op
        torus = Torus(5, 2)
        placement = random_placement(torus, 6, seed=1)
        loads = odr_edge_loads(placement)
        ids = placement.node_ids
        kept = np.delete(ids, 3)
        out = odr_edge_loads_swap_delta(
            torus, loads, torus.coords(kept), torus.coord(int(ids[3])),
            torus.coord(int(ids[3]))
        )
        assert np.allclose(out, loads)


class TestAddDelta:
    @pytest.mark.parametrize("k,d,seed", [(4, 2, 0), (5, 2, 1), (4, 3, 2)])
    def test_random_grow_sequence_matches_fresh_evaluation(self, k, d, seed):
        # grow a random placement one node at a time; after every step the
        # incrementally maintained loads must equal a from-scratch pass
        torus = Torus(k, d)
        rng = np.random.default_rng(seed)
        ids = rng.choice(torus.num_nodes, size=min(8, torus.num_nodes), replace=False)
        loads = np.zeros(torus.num_edges)
        for m in range(1, len(ids)):
            loads = odr_edge_loads_add_delta(
                torus, loads, torus.coords(ids[:m]), torus.coord(int(ids[m]))
            )
            fresh = odr_edge_loads(Placement(torus, list(ids[: m + 1])))
            assert np.allclose(loads, fresh)

    def test_partial_emax_monotone_under_growth(self):
        # the property the branch-and-bound pruning relies on
        torus = Torus(5, 2)
        rng = np.random.default_rng(3)
        ids = rng.choice(torus.num_nodes, size=7, replace=False)
        loads = np.zeros(torus.num_edges)
        previous = 0.0
        for m in range(1, len(ids)):
            loads = odr_edge_loads_add_delta(
                torus, loads, torus.coords(ids[:m]), torus.coord(int(ids[m]))
            )
            assert loads.max() >= previous
            previous = float(loads.max())

    def test_empty_kept_set_is_identity(self):
        torus = Torus(4, 2)
        loads = np.zeros(torus.num_edges)
        out = odr_edge_loads_add_delta(
            torus, loads, np.empty((0, 2), dtype=np.int64), torus.coord(5)
        )
        assert np.allclose(out, 0.0)

    def test_input_not_mutated(self):
        torus = Torus(4, 2)
        placement = random_placement(torus, 5, seed=4)
        loads = odr_edge_loads(placement)
        before = loads.copy()
        routers = np.setdiff1d(np.arange(torus.num_nodes), placement.node_ids)
        odr_edge_loads_add_delta(
            torus, loads, placement.coords(), torus.coord(int(routers[0]))
        )
        assert np.array_equal(loads, before)

    def test_agrees_with_swap_from_nowhere(self):
        # adding node a == swapping a in while removing nothing: cross-check
        # against building the grown placement and comparing swap/add paths
        torus = Torus(5, 2)
        placement = random_placement(torus, 6, seed=5)
        loads = odr_edge_loads(placement)
        routers = np.setdiff1d(np.arange(torus.num_nodes), placement.node_ids)
        added = int(routers[2])
        grown = odr_edge_loads_add_delta(
            torus, loads, placement.coords(), torus.coord(added)
        )
        full = odr_edge_loads(
            Placement(torus, list(placement.node_ids) + [added])
        )
        assert np.allclose(grown, full)


class TestAccumulatePairLoads:
    def test_scale_minus_cancels(self):
        torus = Torus(5, 2)
        p = np.array([[0, 0], [1, 2]])
        q = np.array([[2, 3], [4, 4]])
        loads = np.zeros(torus.num_edges)
        accumulate_pair_loads(loads, 5, 2, p, q, scale=+1.0)
        accumulate_pair_loads(loads, 5, 2, p, q, scale=-1.0)
        assert np.allclose(loads, 0.0)

    def test_matches_engine_on_all_pairs(self):
        torus = Torus(4, 2)
        placement = random_placement(torus, 5, seed=2)
        coords = placement.coords()
        m = len(placement)
        idx = np.arange(m)
        pi, qi = np.meshgrid(idx, idx, indexing="ij")
        keep = pi != qi
        loads = np.zeros(torus.num_edges)
        accumulate_pair_loads(loads, 4, 2, coords[pi[keep]], coords[qi[keep]])
        assert np.allclose(loads, odr_edge_loads(placement))

    def test_weights(self):
        torus = Torus(4, 2)
        p = np.array([[0, 0]])
        q = np.array([[0, 1]])
        loads = np.zeros(torus.num_edges)
        accumulate_pair_loads(
            loads, 4, 2, p, q, weights=np.array([2.5])
        )
        assert loads.sum() == pytest.approx(2.5)

"""Unit tests for repro.torus.lattice (the Appendix machinery)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.torus.lattice import ArrayLattice, sweep_direction, sweep_gamma


class TestSweepGamma:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 8])
    def test_in_legal_interval(self, d):
        g = sweep_gamma(d)
        assert 1.0 < g < 2.0 ** (1.0 / (d - 1))

    def test_d1_positive(self):
        assert sweep_gamma(1) > 1.0

    def test_invalid_d(self):
        with pytest.raises(InvalidParameterError):
            sweep_gamma(0)


class TestSweepDirection:
    def test_unit_norm(self):
        eta = sweep_direction(4)
        assert np.isclose(np.linalg.norm(eta), 1.0)

    def test_strictly_increasing_components(self):
        # the paper's property (2): 0 < eta_1 < ... < eta_d < 1
        eta = sweep_direction(5)
        assert np.all(np.diff(eta) > 0)
        assert eta[0] > 0 and eta[-1] < 1

    def test_r_eta_property(self):
        # property (3): r*eta_i >= eta_d for any r >= 2 and every i
        eta = sweep_direction(6)
        assert np.all(2 * eta >= eta[-1] - 1e-12)

    def test_gamma_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            sweep_direction(3, gamma=1.6)  # 2^(1/2) ~ 1.414 < 1.6


class TestArrayLattice:
    def test_counts(self):
        al = ArrayLattice(4, 3)
        assert al.num_nodes == 64
        assert al.num_undirected_edges == 3 * 3 * 16
        assert al.num_wraparound_edges == 3 * 16

    def test_array_plus_wraparound_is_torus(self):
        al = ArrayLattice(5, 2)
        # undirected torus edges = d*k^d
        assert al.num_undirected_edges + al.num_wraparound_edges == 2 * 25

    def test_distinct_projections(self):
        # the floating-point stand-in for the transcendence argument
        al = ArrayLattice(6, 3)
        proj = np.sort(al.projections())
        assert np.all(np.diff(proj) > 0)

    def test_crossing_bound_holds_everywhere(self):
        al = ArrayLattice(5, 2)
        bound = al.max_edges_crossed_bound()
        proj = al.projections()
        rng = np.random.default_rng(0)
        for t0 in rng.uniform(proj.min(), proj.max(), size=50):
            assert al.edges_crossed(float(t0)) <= bound

    def test_no_crossings_outside_range(self):
        al = ArrayLattice(4, 2)
        assert al.edges_crossed(-1.0) == 0
        assert al.edges_crossed(100.0) == 0

    def test_projections_of_subset(self):
        al = ArrayLattice(4, 2)
        sub = al.projections(coords=np.array([[0, 0], [1, 0]]))
        assert sub.shape == (2,)
        assert sub[1] > sub[0]

"""Unit tests for repro.load.report."""

import numpy as np
import pytest

from repro.load.odr_loads import odr_edge_loads
from repro.load.report import load_report
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestLoadReport:
    def test_fields(self):
        p = linear_placement(Torus(6, 2))
        loads = odr_edge_loads(p)
        rep = load_report(p, loads)
        assert rep.emax == loads.max()
        assert rep.total == pytest.approx(loads.sum())
        assert rep.num_edges == p.torus.num_edges
        assert rep.placement_size == 6
        assert rep.used_edges == int(np.count_nonzero(loads))

    def test_argmax_edge_consistent(self):
        p = linear_placement(Torus(6, 2))
        loads = odr_edge_loads(p)
        rep = load_report(p, loads)
        assert loads[rep.argmax_edge.edge_id] == rep.emax

    def test_linearity_ratio(self):
        p = linear_placement(Torus(6, 2))
        rep = load_report(p, odr_edge_loads(p))
        assert rep.linearity_ratio == pytest.approx(rep.emax / 6)

    def test_mean_nonzero_ge_mean(self):
        p = linear_placement(Torus(6, 2))
        rep = load_report(p, odr_edge_loads(p))
        assert rep.mean_nonzero >= rep.mean

    def test_wrong_shape_rejected(self):
        p = linear_placement(Torus(4, 2))
        with pytest.raises(ValueError):
            load_report(p, np.zeros(3))

    def test_str_mentions_emax(self):
        p = linear_placement(Torus(4, 2))
        rep = load_report(p, odr_edge_loads(p))
        assert "E_max" in str(rep)

"""Unit tests for repro.routing.base."""

import pytest

from repro.errors import RoutingError
from repro.routing.base import Path, walk_moves


class TestPath:
    def test_lengths(self):
        p = Path(nodes=(0, 1, 2), edge_ids=(10, 11))
        assert p.length == 2
        assert p.source == 0
        assert p.destination == 2

    def test_uses_edge(self):
        p = Path(nodes=(0, 1), edge_ids=(42,))
        assert p.uses_edge(42)
        assert not p.uses_edge(43)

    def test_inconsistent_rejected(self):
        with pytest.raises(RoutingError):
            Path(nodes=(0, 1), edge_ids=())

    def test_zero_length(self):
        p = Path(nodes=(5,), edge_ids=())
        assert p.length == 0
        assert p.source == p.destination == 5


class TestWalkMoves:
    def test_empty_moves(self, torus_4_2):
        p = walk_moves(torus_4_2, (1, 1), [])
        assert p.length == 0
        assert p.source == torus_4_2.node_id((1, 1))

    def test_single_step(self, torus_4_2):
        p = walk_moves(torus_4_2, (0, 0), [(1, +1)])
        assert p.destination == torus_4_2.node_id((0, 1))
        e = torus_4_2.edges.decode(p.edge_ids[0])
        assert e.dim == 1 and e.sign == +1

    def test_wraparound_walk(self, torus_4_2):
        p = walk_moves(torus_4_2, (0, 3), [(1, +1)])
        assert p.destination == torus_4_2.node_id((0, 0))

    def test_multi_dim_walk(self, torus_4_2):
        moves = [(0, +1), (0, +1), (1, -1)]
        p = walk_moves(torus_4_2, (0, 0), moves)
        assert p.destination == torus_4_2.node_id((2, 3))
        assert p.length == 3

    def test_invalid_move(self, torus_4_2):
        with pytest.raises(RoutingError):
            walk_moves(torus_4_2, (0, 0), [(2, +1)])
        with pytest.raises(RoutingError):
            walk_moves(torus_4_2, (0, 0), [(0, 0)])

    def test_edges_connect_nodes(self, torus_5_2):
        p = walk_moves(torus_5_2, (1, 2), [(0, +1), (1, +1), (0, -1)])
        for idx, eid in enumerate(p.edge_ids):
            e = torus_5_2.edges.decode(eid)
            assert e.tail == p.nodes[idx]
            assert e.head == p.nodes[idx + 1]

"""Tests for repro.exec.chaos — deterministic fault scheduling."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.exec import CHAOS_FAULTS, ChaosPolicy, unit_hash


class TestUnitHash:
    def test_deterministic(self):
        assert unit_hash(7, "chaos", "t-1", 0) == unit_hash(7, "chaos", "t-1", 0)

    def test_in_unit_interval(self):
        for i in range(200):
            u = unit_hash("x", i)
            assert 0.0 <= u < 1.0

    def test_sensitive_to_every_part(self):
        base = unit_hash(1, "a", 2)
        assert unit_hash(2, "a", 2) != base
        assert unit_hash(1, "b", 2) != base
        assert unit_hash(1, "a", 3) != base

    def test_spreads_over_the_interval(self):
        values = [unit_hash("spread", i) for i in range(500)]
        mean = sum(values) / len(values)
        assert 0.4 < mean < 0.6


class TestChaosPolicyDecide:
    def test_no_fractions_means_clean(self):
        policy = ChaosPolicy(seed=1)
        assert all(
            policy.decide(f"t-{i}", 0) is None for i in range(50)
        )

    def test_full_crash_fraction_always_crashes(self):
        policy = ChaosPolicy(seed=1, crash_fraction=1.0)
        assert all(
            policy.decide(f"t-{i}", 0) == "crash" for i in range(50)
        )

    def test_deterministic_per_seed(self):
        a = ChaosPolicy(seed=9, crash_fraction=0.3, hang_fraction=0.3)
        b = ChaosPolicy(seed=9, crash_fraction=0.3, hang_fraction=0.3)
        ids = [f"t-{i}" for i in range(64)]
        assert a.expected_faults(ids) == b.expected_faults(ids)

    def test_different_seeds_differ(self):
        ids = [f"t-{i}" for i in range(64)]
        a = ChaosPolicy(seed=1, crash_fraction=0.5).expected_faults(ids)
        b = ChaosPolicy(seed=2, crash_fraction=0.5).expected_faults(ids)
        assert a != b

    def test_attempts_reroll_independently(self):
        policy = ChaosPolicy(seed=3, crash_fraction=0.5)
        ids = [f"t-{i}" for i in range(64)]
        # some task must flip between attempts for 0.5 fractions on 64 ids
        assert any(
            policy.decide(task_id, 0) != policy.decide(task_id, 1)
            for task_id in ids
        )

    def test_decision_order_matches_chaos_faults(self):
        # with all mass on hang, the decision must be "hang", never "crash"
        policy = ChaosPolicy(seed=4, hang_fraction=1.0)
        assert policy.decide("t", 0) == "hang"
        assert CHAOS_FAULTS == ("crash", "hang", "slow")

    def test_fractions_roughly_respected(self):
        policy = ChaosPolicy(seed=5, crash_fraction=0.2)
        ids = [f"t-{i}" for i in range(500)]
        crashed = sum(
            1 for task_id in ids if policy.decide(task_id, 0) == "crash"
        )
        assert 0.1 < crashed / len(ids) < 0.3

    def test_expected_faults_matches_decide(self):
        policy = ChaosPolicy(seed=6, crash_fraction=0.3, slow_fraction=0.3)
        ids = [f"t-{i}" for i in range(32)]
        schedule = policy.expected_faults(ids, attempt=2)
        for task_id in ids:
            fault = policy.decide(task_id, 2)
            if fault is None:
                assert task_id not in schedule
            else:
                assert schedule[task_id] == fault


class TestChaosPolicyValidation:
    def test_fraction_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(seed=0, crash_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(seed=0, hang_fraction=-0.1)

    def test_fractions_must_sum_to_at_most_one(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(
                seed=0,
                crash_fraction=0.5,
                hang_fraction=0.4,
                slow_fraction=0.2,
            )

    def test_negative_durations_rejected(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(seed=0, hang_seconds=-1.0)
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(seed=0, slow_seconds=-1.0)

    def test_slow_inject_completes(self):
        policy = ChaosPolicy(seed=0, slow_fraction=1.0, slow_seconds=0.0)
        policy.inject("t", 0)  # must return, not raise or exit

"""Tests for repro.load.plancache — the content-addressed spectral LRU.

The cache's contract has three independent pieces, each pinned here:
content addressing (structural fingerprints, never ``id()``), bounded
LRU residency (recency order, eviction at capacity), and the ambient
install/restore convention shared with ``using_engine``/``using_tracer``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import EngineError
from repro.load.plancache import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_PLAN_CAPACITY,
    NULL_PLAN_CACHE,
    PlanCache,
    SpectralPlan,
    current_plan_cache,
    default_batch_size,
    plan_fingerprint,
    plan_key,
    routing_fingerprint,
    set_default_batch_size,
    set_plan_cache,
    using_plan_cache,
    warm_worker_plan_cache,
)
from repro.obs import Tracer, using_tracer
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestFingerprints:
    def test_fingerprint_is_structural_not_identity(self):
        torus = Torus(4, 2)
        a = plan_fingerprint(torus, OrderedDimensionalRouting(2))
        b = plan_fingerprint(Torus(4, 2), OrderedDimensionalRouting(2))
        assert a == b
        assert plan_key(a) == plan_key(b)

    def test_fingerprint_separates_configurations(self):
        torus = Torus(4, 2)
        odr = plan_fingerprint(torus, OrderedDimensionalRouting(2))
        udr = plan_fingerprint(torus, UnorderedDimensionalRouting())
        other_shape = plan_fingerprint(Torus(5, 2), OrderedDimensionalRouting(2))
        weighted = plan_fingerprint(
            torus, OrderedDimensionalRouting(2), traffic="weighted"
        )
        keys = {plan_key(f) for f in (odr, udr, other_shape, weighted)}
        assert len(keys) == 4

    def test_routing_order_lands_in_the_fingerprint(self):
        from repro.routing.dimension_order import DimensionOrderRouting

        forward = routing_fingerprint(DimensionOrderRouting((0, 1, 2)))
        reversed_ = routing_fingerprint(DimensionOrderRouting((2, 1, 0)))
        assert forward["order"] != reversed_["order"]

    def test_key_is_canonical_json(self):
        fingerprint = plan_fingerprint(Torus(3, 2), OrderedDimensionalRouting(2))
        decoded = json.loads(plan_key(fingerprint))
        assert decoded == fingerprint


class TestLRU:
    def test_get_builds_once_then_hits(self):
        cache = PlanCache()
        torus, routing = Torus(4, 2), OrderedDimensionalRouting(2)
        first = cache.get(torus, routing)
        second = cache.get(torus, routing)
        assert first is second
        assert isinstance(first, SpectralPlan)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
        assert stats.hit_rate == 0.5

    def test_eviction_drops_least_recently_used(self):
        cache = PlanCache(capacity=2)
        odr = OrderedDimensionalRouting(2)
        a, b, c = Torus(3, 2), Torus(4, 2), Torus(5, 2)
        plan_a = cache.get(a, odr)
        cache.get(b, odr)
        cache.get(a, odr)  # refresh a -> b is now the LRU entry
        cache.get(c, odr)  # evicts b
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert plan_a.key in cache
        assert plan_key(plan_fingerprint(b, odr)) not in cache
        # b must be rebuilt (a fresh miss), a is still resident
        assert cache.get(a, odr) is plan_a
        misses_before = cache.stats.misses
        cache.get(b, odr)
        assert cache.stats.misses == misses_before + 1

    def test_keys_in_recency_order(self):
        cache = PlanCache(capacity=4)
        odr = OrderedDimensionalRouting(2)
        a, b = Torus(3, 2), Torus(4, 2)
        cache.get(a, odr)
        cache.get(b, odr)
        cache.get(a, odr)
        assert cache.keys() == [
            plan_key(plan_fingerprint(b, odr)),
            plan_key(plan_fingerprint(a, odr)),
        ]

    def test_clear_keeps_the_tallies(self):
        cache = PlanCache()
        cache.get(Torus(3, 2), OrderedDimensionalRouting(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(EngineError, match="capacity"):
            PlanCache(capacity=0)

    def test_default_capacity(self):
        assert PlanCache().capacity == DEFAULT_PLAN_CAPACITY

    def test_metrics_flow_through_the_ambient_tracer(self):
        tracer = Tracer(label="plancache-test")
        cache = PlanCache(capacity=1)
        odr = OrderedDimensionalRouting(2)
        with using_tracer(tracer):
            cache.get(Torus(3, 2), odr)
            cache.get(Torus(3, 2), odr)
            cache.get(Torus(4, 2), odr)  # evicts the first plan
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["plancache.hits"] == 1
        assert snapshot["counters"]["plancache.misses"] == 2
        assert snapshot["counters"]["plancache.evictions"] == 1
        assert snapshot["gauges"]["plancache.size"] == 1


class TestNullCache:
    def test_null_cache_never_retains(self):
        torus, odr = Torus(3, 2), OrderedDimensionalRouting(2)
        first = NULL_PLAN_CACHE.get(torus, odr)
        second = NULL_PLAN_CACHE.get(torus, odr)
        assert first is not second
        assert first.key == second.key


class TestAmbientCache:
    def test_using_plan_cache_installs_and_restores(self):
        outer = current_plan_cache()
        mine = PlanCache()
        with using_plan_cache(mine) as installed:
            assert installed is mine
            assert current_plan_cache() is mine
        assert current_plan_cache() is outer

    def test_using_none_is_a_no_op(self):
        outer = current_plan_cache()
        with using_plan_cache(None) as installed:
            assert installed is outer
            assert current_plan_cache() is outer

    def test_restores_on_exception(self):
        outer = current_plan_cache()
        with pytest.raises(RuntimeError):
            with using_plan_cache(PlanCache()):
                raise RuntimeError("boom")
        assert current_plan_cache() is outer

    def test_set_plan_cache_none_resets_to_a_fresh_default(self):
        previous = current_plan_cache()
        try:
            fresh = set_plan_cache(None)
            assert fresh is current_plan_cache()
            assert fresh is not previous
        finally:
            set_plan_cache(previous)


class TestBatchSize:
    def test_set_and_reset(self):
        assert default_batch_size() == DEFAULT_BATCH_SIZE
        try:
            assert set_default_batch_size(8) == 8
            assert default_batch_size() == 8
        finally:
            assert set_default_batch_size(None) == DEFAULT_BATCH_SIZE

    def test_rejects_non_positive(self):
        with pytest.raises(EngineError, match="batch size"):
            set_default_batch_size(0)
        assert default_batch_size() == DEFAULT_BATCH_SIZE


class TestWorkerWarmup:
    def test_warm_worker_plan_cache_prebuilds_the_plan(self):
        previous = current_plan_cache()
        try:
            cache = set_plan_cache(PlanCache())
            routing = OrderedDimensionalRouting(2)
            warm_worker_plan_cache(4, 2, routing)
            # the warmed plan answers the key a later lookup asks for
            assert plan_key(plan_fingerprint(Torus(4, 2), routing)) in cache
            hits_before = cache.stats.hits
            cache.get(Torus(4, 2), OrderedDimensionalRouting(2))
            assert cache.stats.hits == hits_before + 1
        finally:
            set_plan_cache(previous)

"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(errors.InvalidParameterError, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.RoutingError("x")

    def test_distinct_classes(self):
        assert errors.PlacementError is not errors.RoutingError

"""Unit tests for the FFT circular-correlation load backend.

The contract under test is *bit*-identity: after canonicalizing both
sides with :func:`repro.load.quantize.snap_loads`, the FFT backend must
equal the reference oracle exactly — not merely within a float
tolerance — on every translation-invariant configuration.
"""

import numpy as np
import pytest

from repro.errors import EngineError
from repro.load.edge_loads import edge_loads_reference
from repro.load.engine import (
    FFTBackend,
    LoadEngine,
    ReferenceBackend,
    VectorizedBackend,
    cross_check,
    displacement_edge_loads,
    fft_edge_loads,
)
from repro.load.quantize import (
    LOAD_SNAP_TOLERANCE,
    routing_load_quantum,
    snap_loads,
)
from repro.load.traffic import hotspot_traffic_weights
from repro.placements.base import Placement
from repro.placements.fully import single_subtorus_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.routing.faults import FaultMaskedRouting
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.odr_unrestricted import UnrestrictedODR
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus

#: every torus the bit-identity sweep covers — odd and even k, d = 1..3,
#: up to T_5^3 as the issue's acceptance criterion demands.
TORI = [(4, 1), (5, 1), (2, 2), (4, 2), (5, 2), (2, 3), (3, 3), (4, 3), (5, 3)]


def _routings(d):
    return [
        OrderedDimensionalRouting(d),
        UnorderedDimensionalRouting(),
        UnrestrictedODR(),
        AllMinimalPaths(),
    ]


def _assert_bit_identical(placement, routing, pair_weights=None):
    torus = placement.torus
    oracle = edge_loads_reference(placement, routing, pair_weights)
    got = fft_edge_loads(placement, routing, pair_weights=pair_weights)
    quantum = routing_load_quantum(routing, torus.d)
    if quantum is not None and pair_weights is None:
        assert np.array_equal(
            snap_loads(got, quantum), snap_loads(oracle, quantum)
        ), (placement.name, routing.name)
    else:
        # instance-dependent or weighted quanta: engine agreement bound.
        assert np.abs(got - oracle).max(initial=0.0) <= 1e-9, (
            placement.name,
            routing.name,
        )


class TestBitIdentity:
    @pytest.mark.parametrize("k,d", TORI)
    def test_linear_placements(self, k, d):
        torus = Torus(k, d)
        for routing in _routings(d):
            _assert_bit_identical(linear_placement(torus), routing)

    @pytest.mark.parametrize("k,d", TORI)
    def test_random_placements(self, k, d):
        torus = Torus(k, d)
        size = min(6, torus.num_nodes - 1)
        placement = random_placement(torus, size, seed=20260807)
        for routing in _routings(d):
            _assert_bit_identical(placement, routing)

    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (3, 3)])
    def test_sublattice_placements(self, k, d):
        # a principal subtorus is a subgroup — exercises the coset fast
        # path on a placement that is *not* a linear congruence class.
        torus = Torus(k, d)
        placement = single_subtorus_placement(torus, dim=0, value=1)
        for routing in _routings(d):
            _assert_bit_identical(placement, routing)

    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (2, 3), (3, 3)])
    def test_weighted_traffic(self, k, d):
        torus = Torus(k, d)
        placement = random_placement(
            torus, min(6, torus.num_nodes - 1), seed=7
        )
        w = hotspot_traffic_weights(
            len(placement), hotspot_index=0, background=0.5
        )
        for routing in _routings(d):
            _assert_bit_identical(placement, routing, pair_weights=w)

    def test_integer_weights_stay_on_grid(self):
        torus = Torus(5, 2)
        placement = random_placement(torus, 6, seed=11)
        m = len(placement)
        w = np.arange(m * m, dtype=np.float64).reshape(m, m) % 4
        np.fill_diagonal(w, 0.0)
        routing = UnorderedDimensionalRouting()
        oracle = edge_loads_reference(placement, routing, w)
        got = fft_edge_loads(placement, routing, pair_weights=w)
        quantum = routing_load_quantum(routing, torus.d)
        assert np.array_equal(
            snap_loads(got, quantum), snap_loads(oracle, quantum)
        )

    def test_cross_check_includes_fft(self):
        placement = linear_placement(Torus(4, 2))
        diffs = cross_check(placement, OrderedDimensionalRouting(2))
        assert "fft" in diffs
        assert diffs["fft"] <= 1e-9


class TestRegimes:
    def test_linear_uses_coset_fast_path(self):
        backend = FFTBackend()
        placement = linear_placement(Torus(5, 2))
        routing = OrderedDimensionalRouting(2)
        backend.compute(placement, routing)
        tracer_free_drift = backend.last_snap_drift
        assert tracer_free_drift < LOAD_SNAP_TOLERANCE

    def test_plan_cache_reuse_is_exact(self):
        backend = FFTBackend()
        placement = linear_placement(Torus(8, 2))
        routing = OrderedDimensionalRouting(2)
        first = backend.compute(placement, routing)
        second = backend.compute(placement, routing)  # served by plan
        assert np.array_equal(first, second)
        assert np.array_equal(
            first, displacement_edge_loads(placement, routing)
        )

    def test_plan_cache_does_not_leak_into_weighted_calls(self):
        backend = FFTBackend()
        placement = linear_placement(Torus(6, 2))
        routing = OrderedDimensionalRouting(2)
        backend.compute(placement, routing)  # primes the plan cache
        w = hotspot_traffic_weights(
            len(placement), hotspot_index=2, background=1.0
        )
        got = backend.compute(placement, routing, pair_weights=w)
        oracle = edge_loads_reference(placement, routing, w)
        assert np.abs(got - oracle).max(initial=0.0) <= 1e-9

    def test_general_regime_for_non_coset_placement(self):
        # 3 collinear-free nodes: |P - P| > |P|, so the coset fast path
        # must not trigger and the chunked general path must be exact.
        torus = Torus(5, 2)
        placement = Placement(torus, [0, 1, 7], name="non-coset")
        for routing in _routings(2):
            _assert_bit_identical(placement, routing)

    def test_empty_pair_set(self):
        torus = Torus(4, 2)
        placement = Placement(torus, [3], name="singleton")
        loads = fft_edge_loads(placement, OrderedDimensionalRouting(2))
        assert loads.shape == (torus.num_edges,)
        assert not loads.any()


class TestFallbacks:
    def test_explicit_fft_rejects_fault_masked_routing(self):
        placement = linear_placement(Torus(4, 2))
        masked = FaultMaskedRouting(
            OrderedDimensionalRouting(2), [0], strict=False
        )
        with pytest.raises(EngineError, match="translation-invariant"):
            FFTBackend().compute(placement, masked)

    def test_auto_falls_back_to_reference_for_fault_masked(self):
        placement = linear_placement(Torus(4, 2))
        masked = FaultMaskedRouting(
            OrderedDimensionalRouting(2), [0], strict=False
        )
        backend = LoadEngine("auto").backend_for(placement, masked)
        assert isinstance(backend, ReferenceBackend)

    def test_supports_mirrors_translation_invariance(self):
        placement = linear_placement(Torus(4, 2))
        backend = FFTBackend()
        assert backend.supports(placement, OrderedDimensionalRouting(2))
        assert not backend.supports(
            placement,
            FaultMaskedRouting(OrderedDimensionalRouting(2), [0]),
        )


class TestAutoOrder:
    def test_vectorized_still_first_for_odr(self):
        placement = linear_placement(Torus(4, 2))
        backend = LoadEngine("auto").backend_for(
            placement, OrderedDimensionalRouting(2)
        )
        assert isinstance(backend, VectorizedBackend)

    def test_fft_ahead_of_displacement_for_unrestricted(self):
        placement = linear_placement(Torus(4, 2))
        backend = LoadEngine("auto").backend_for(placement, UnrestrictedODR())
        assert isinstance(backend, FFTBackend)

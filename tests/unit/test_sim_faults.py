"""Unit tests for repro.sim.fault_injection."""

import numpy as np
import pytest

from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.fault_injection import (
    pair_connectivity_under_faults,
    random_link_failures,
)
from repro.torus.topology import Torus


class TestRandomFailures:
    def test_count_and_range(self, torus_4_2):
        fails = random_link_failures(torus_4_2, 10, seed=0)
        assert fails.size == 10
        assert np.unique(fails).size == 10
        assert fails.min() >= 0 and fails.max() < torus_4_2.num_edges

    def test_accepts_placement(self, linear_4_2):
        fails = random_link_failures(linear_4_2, 5, seed=0)
        assert fails.size == 5

    def test_zero_failures(self, torus_4_2):
        assert random_link_failures(torus_4_2, 0, seed=0).size == 0

    def test_too_many(self, torus_4_2):
        with pytest.raises(ValueError):
            random_link_failures(torus_4_2, torus_4_2.num_edges + 1)

    def test_reproducible(self, torus_4_2):
        a = random_link_failures(torus_4_2, 8, seed=4)
        b = random_link_failures(torus_4_2, 8, seed=4)
        assert np.array_equal(a, b)


class TestPairConnectivity:
    def test_no_failures_fully_connected(self, linear_4_2):
        stats = pair_connectivity_under_faults(
            linear_4_2, OrderedDimensionalRouting(2), []
        )
        assert stats.disconnected_pairs == 0
        assert stats.disconnection_rate == 0.0
        assert stats.surviving_path_fraction == pytest.approx(1.0)

    def test_total_pairs(self, linear_4_2):
        stats = pair_connectivity_under_faults(
            linear_4_2, OrderedDimensionalRouting(2), []
        )
        assert stats.total_pairs == 4 * 3

    def test_odr_loses_pairs_on_targeted_failure(self, linear_5_2):
        odr = OrderedDimensionalRouting(2)
        coords = linear_5_2.coords()
        path = odr.path(linear_5_2.torus, coords[0], coords[1])
        stats = pair_connectivity_under_faults(linear_5_2, odr, [path.edge_ids[0]])
        assert stats.disconnected_pairs >= 1

    def test_udr_beats_odr_on_same_failures(self):
        torus = Torus(5, 2)
        from repro.placements.linear import linear_placement

        placement = linear_placement(torus)
        failures = random_link_failures(torus, 20, seed=7)
        s_odr = pair_connectivity_under_faults(
            placement, OrderedDimensionalRouting(2), failures
        )
        s_udr = pair_connectivity_under_faults(
            placement, UnorderedDimensionalRouting(), failures
        )
        assert s_udr.disconnection_rate <= s_odr.disconnection_rate
        assert s_udr.surviving_path_fraction >= 0.0

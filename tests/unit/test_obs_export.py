"""Tests for repro.obs.export — Prometheus text, snapshot journal, sampler."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsSnapshotWriter, ResourceSampler, prometheus_text
from repro.obs.export import pump, set_pump
from repro.obs.metrics import Metrics


def _registry() -> Metrics:
    metrics = Metrics()
    metrics.counter("exec.tasks").add(16)
    metrics.gauge("engine.fft.snap_drift").set(1.5e-11)
    hist = metrics.histogram("exec.task_seconds")
    hist.observe(0.0)
    hist.observe(0.3)
    hist.observe(0.7)
    hist.observe(3.0)
    return metrics


class TestPrometheusText:
    def test_counter_family(self):
        text = prometheus_text(_registry().snapshot())
        assert "# TYPE repro_exec_tasks_total counter" in text
        assert "repro_exec_tasks_total 16" in text

    def test_gauge_family(self):
        text = prometheus_text(_registry().snapshot())
        assert "# TYPE repro_engine_fft_snap_drift gauge" in text
        assert "repro_engine_fft_snap_drift 1.5e-11" in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(_registry().snapshot())
        # zero bucket, then powers of two, cumulative, then +Inf
        assert 'repro_exec_task_seconds_bucket{le="0"} 1' in text
        assert 'repro_exec_task_seconds_bucket{le="1"} 3' in text
        assert 'repro_exec_task_seconds_bucket{le="4"} 4' in text
        assert 'repro_exec_task_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_exec_task_seconds_sum 4" in text
        assert "repro_exec_task_seconds_count 4" in text

    def test_custom_prefix_and_trailing_newline(self):
        text = prometheus_text(_registry().snapshot(), prefix="torus")
        assert "torus_exec_tasks_total 16" in text
        assert text.endswith("\n")

    def test_empty_snapshot(self):
        assert prometheus_text(Metrics().snapshot()) == "\n"


class TestMetricsSnapshotWriter:
    def test_journal_lines_are_snapshots(self, tmp_path):
        metrics = _registry()
        path = tmp_path / "metrics.jsonl"
        with MetricsSnapshotWriter(path, metrics, interval_seconds=0.0) as w:
            w.write()
            metrics.counter("exec.tasks").add(1)
            w.write()
        lines = path.read_text().strip().splitlines()
        # two explicit writes plus the close() flush
        assert len(lines) == 3
        first, second = json.loads(lines[0]), json.loads(lines[1])
        assert first["kind"] == "metrics"
        assert first["values"]["counters"]["exec.tasks"] == 16.0
        assert second["values"]["counters"]["exec.tasks"] == 17.0

    def test_maybe_rate_limits(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path, _registry(), interval_seconds=3600)
        assert writer.maybe() is True
        assert writer.maybe() is False  # within the interval
        writer.close()

    def test_close_is_idempotent(self, tmp_path):
        writer = MetricsSnapshotWriter(tmp_path / "m.jsonl", _registry())
        writer.close()
        writer.close()
        assert writer.written == 1


class TestResourceSampler:
    def test_sample_feeds_gauges(self):
        metrics = Metrics()
        sampler = ResourceSampler(metrics)
        if not sampler.available:
            pytest.skip("no procfs on this host")
        readings = sampler.sample()
        assert readings is not None
        assert readings["rss_bytes"] > 0
        assert readings["num_threads"] >= 1
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["proc.rss_bytes"] == readings["rss_bytes"]
        assert sampler.samples == 1

    def test_unavailable_host_is_noop(self, monkeypatch):
        metrics = Metrics()
        sampler = ResourceSampler(metrics)
        sampler.available = False
        assert sampler.sample() is None
        assert metrics.snapshot()["gauges"] == {}


class TestAmbientPump:
    def teardown_method(self):
        set_pump(None)

    def test_pump_without_writer_is_noop(self):
        set_pump(None)
        assert pump() is False

    def test_pump_writes_when_due(self, tmp_path):
        metrics = _registry()
        writer = MetricsSnapshotWriter(
            tmp_path / "m.jsonl", metrics, interval_seconds=0.0
        )
        set_pump(writer)
        assert pump() is True

    def test_pump_respects_interval(self, tmp_path):
        writer = MetricsSnapshotWriter(
            tmp_path / "m.jsonl", _registry(), interval_seconds=3600
        )
        set_pump(writer)
        assert pump() is True
        assert pump() is False

    def test_pump_samples_before_writing(self, tmp_path):
        metrics = Metrics()
        sampler = ResourceSampler(metrics)
        if not sampler.available:
            pytest.skip("no procfs on this host")
        writer = MetricsSnapshotWriter(
            tmp_path / "m.jsonl", metrics, interval_seconds=0.0
        )
        set_pump(writer, sampler=sampler)
        assert pump() is True
        writer.close()
        lines = (tmp_path / "m.jsonl").read_text().strip().splitlines()
        gauges = json.loads(lines[0])["values"]["gauges"]
        assert gauges["proc.rss_bytes"] > 0

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_args(self):
        args = build_parser().parse_args(
            ["design", "--k", "8", "--d", "3", "--t", "2", "--routing", "udr"]
        )
        assert (args.k, args.d, args.t, args.routing) == (8, 3, 2, "udr")

    def test_defaults(self):
        args = build_parser().parse_args(["analyze", "--k", "4", "--d", "2"])
        assert args.t == 1 and args.routing == "odr"
        assert args.engine == "auto" and args.jobs is None

    def test_engine_args(self):
        args = build_parser().parse_args(
            ["analyze", "--k", "4", "--d", "2", "--engine", "parallel",
             "--jobs", "2"]
        )
        assert (args.engine, args.jobs) == ("parallel", 2)

    def test_engine_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--k", "4", "--d", "2", "--engine", "bogus"]
            )


class TestCommands:
    def test_design(self, capsys):
        assert main(["design", "--k", "6", "--d", "2"]) == 0
        out = capsys.readouterr().out
        assert "|P|                : 6" in out
        assert "ODR" in out

    def test_analyze_bounds_hold(self, capsys):
        assert main(["analyze", "--k", "6", "--d", "2"]) == 0
        out = capsys.readouterr().out
        assert "bounds hold     : True" in out

    @pytest.mark.parametrize("engine", ["reference", "displacement", "parallel"])
    def test_analyze_engines_agree(self, capsys, engine):
        argv = ["analyze", "--k", "6", "--d", "2", "--engine", engine]
        if engine == "parallel":
            argv += ["--jobs", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "E_max           : 3" in out
        assert "bounds hold     : True" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "[P]" in capsys.readouterr().out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--quick", "--only", "EXP-2"]) == 0
        assert "Verdict: PASS" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--k", "4", "--d", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "packets delivered : 12" in out

    def test_simulate_with_failures(self, capsys):
        assert main(
            ["simulate", "--k", "5", "--d", "2", "--routing", "udr",
             "--fail-links", "5", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "injected 5 link failures" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--d", "2", "--ks", "4,6,8", "--family", "linear"]) == 0
        out = capsys.readouterr().out
        assert "growth exponent" in out

    def test_error_exit_code(self, capsys):
        # k=1 is an invalid radix: the CLI reports and exits 2
        assert main(["design", "--k", "1", "--d", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiments", "--only", "EXP-99"]) == 2


class TestCertify:
    def test_default_size_seeds_linear_incumbent(self, capsys):
        assert main(["certify", "--k", "4", "--d", "2"]) == 0
        out = capsys.readouterr().out
        assert "incumbent seed  : linear(c=0) E_max = 2" in out
        assert "global min E_max: 2" in out
        assert "optimal count   : 292" in out
        assert "0 full evaluations" in out

    def test_full_mode_prints_histogram(self, capsys):
        assert main(["certify", "--k", "3", "--d", "2", "--mode", "full"]) == 0
        out = capsys.readouterr().out
        assert "E_max histogram :" in out
        assert "orbits          : 4" in out

    def test_explicit_size_and_jobs(self, capsys):
        assert main(
            ["certify", "--k", "3", "--d", "2", "--size", "2", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "certified space : all C(9, 2) = 36 placements" in out

    def test_unachievable_ub_exits_nonzero(self, capsys):
        assert main(
            ["certify", "--k", "3", "--d", "2", "--ub", "0.25"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestAnalyzeMarkdown:
    def test_markdown_flag(self, capsys):
        assert main(["analyze", "--k", "6", "--d", "2", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Placement analysis")
        assert "Bisection certificates" in out


class TestObservabilityFlags:
    def test_certify_trace_roundtrip(self, capsys, tmp_path):
        from repro.obs import read_trace

        path = tmp_path / "out.jsonl"
        assert main(
            ["certify", "--k", "3", "--d", "2", "--trace", str(path)]
        ) == 0
        err = capsys.readouterr().err
        assert f"trace written to {path}" in err
        records = read_trace(path)
        assert records[0]["label"] == "certify"
        names = {r.get("name") for r in records if r.get("kind") == "span"}
        assert "search.certify" in names

    def test_trace_summarize_subcommand(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        assert main(
            ["certify", "--k", "3", "--d", "2", "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Trace summary — certify")
        assert "search.certify" in out

    def test_trace_summarize_missing_file_errors(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_flag_writes_dump(self, capsys, tmp_path):
        out = tmp_path / "analyze.prof"
        assert main(
            ["analyze", "--k", "4", "--d", "2",
             "--profile", "pstats", "--profile-out", str(out)]
        ) == 0
        assert out.exists()
        assert "profile (pstats) written" in capsys.readouterr().err

    def test_profile_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--k", "4", "--d", "2", "--profile", "perf"]
            )

    def test_quiet_silences_stderr_but_not_results(self, capsys):
        assert main(["--quiet", "analyze", "--k", "6", "--d", "2"]) == 0
        captured = capsys.readouterr()
        assert "bounds hold     : True" in captured.out
        assert captured.err == ""

    def test_certify_progress_emits_heartbeat_lines(self, capsys):
        import repro.placements.exact_search as es

        previous = es._HEARTBEAT_SECONDS
        es._HEARTBEAT_SECONDS = 0.0
        try:
            assert main(
                ["certify", "--k", "3", "--d", "2", "--progress"]
            ) == 0
        finally:
            es._HEARTBEAT_SECONDS = previous
        err = capsys.readouterr().err
        assert "exact-search T_3^2" in err
        assert "nodes expanded" in err

"""Tests for repro.obs.profiling — cProfile dumps and collapsed stacks."""

from __future__ import annotations

import pstats

import pytest

from repro.errors import InvalidParameterError
from repro.obs import PROFILE_MODES, profiling


def _busy_work():
    return sum(i * i for i in range(2000))


class TestProfilingContext:
    def test_mode_none_is_a_transparent_noop(self, tmp_path):
        with profiling(None, out=tmp_path / "never.prof") as profile:
            assert profile is None
        assert not (tmp_path / "never.prof").exists()

    def test_unknown_mode_raises(self):
        with pytest.raises(InvalidParameterError, match="profile mode"):
            with profiling("perf"):
                pass

    def test_pstats_dump_is_loadable(self, tmp_path, capsys):
        out = tmp_path / "run.prof"
        with profiling("pstats", out=out):
            _busy_work()
        assert out.exists()
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0
        assert "profile (pstats) written" in capsys.readouterr().err

    def test_flamegraph_writes_collapsed_lines(self, tmp_path):
        out = tmp_path / "run.folded"
        with profiling("flamegraph", out=out):
            _busy_work()
        lines = out.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert int(value) > 0
        assert lines == sorted(lines)  # deterministic ordering

    def test_default_path_uses_label_and_suffix(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with profiling("pstats", label="certify"):
            _busy_work()
        assert (tmp_path / "certify.prof").exists()

    def test_modes_registry(self):
        assert PROFILE_MODES == {"pstats": ".prof", "flamegraph": ".folded"}

"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_table, format_value


class TestFormatValue:
    def test_float_uses_format(self):
        assert format_value(0.123456789) == "0.123457"

    def test_bool_renders_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int_plain(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # every row has the same width
        assert len({len(line) for line in lines}) == 1

    def test_markdown_compatible(self):
        text = format_table(["x"], [[1]])
        assert text.splitlines()[1].startswith("|-")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTable:
    def test_add_and_render(self):
        t = Table(["k", "v"])
        t.add_row([1, 0.5])
        t.add_row([2, 0.25])
        assert len(t) == 2
        assert "0.5" in t.render()

    def test_title_rendered(self):
        t = Table(["k"], title="my table")
        t.add_row([1])
        assert t.render().startswith("### my table")

    def test_column_access(self):
        t = Table(["k", "v"])
        t.add_row([1, "a"])
        t.add_row([2, "b"])
        assert t.column("v") == ["a", "b"]

    def test_bad_row_rejected(self):
        t = Table(["k", "v"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_unknown_column(self):
        t = Table(["k"])
        with pytest.raises(ValueError):
            t.column("missing")

"""Unit tests for repro.core.verify."""

import pytest

from repro.core.verify import verify_linear_load
from repro.placements.fully import FullyPopulatedFamily
from repro.placements.linear import LinearPlacementFamily
from repro.placements.multiple import MultipleLinearPlacementFamily
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting


class TestVerifyLinearLoad:
    def test_linear_family_certified(self):
        cert = verify_linear_load(
            LinearPlacementFamily(), OrderedDimensionalRouting, 2, [4, 6, 8, 10]
        )
        assert cert.is_linear
        assert cert.r_squared > 0.999
        assert all(r == pytest.approx(0.5) for r in cert.ratios)

    def test_multiple_linear_certified(self):
        cert = verify_linear_load(
            MultipleLinearPlacementFamily(2),
            OrderedDimensionalRouting,
            2,
            [4, 6, 8],
        )
        assert cert.is_linear

    def test_udr_certified(self):
        cert = verify_linear_load(
            LinearPlacementFamily(),
            lambda d: UnorderedDimensionalRouting(),
            2,
            [4, 6, 8],
        )
        assert cert.is_linear

    def test_fully_populated_not_linear(self):
        cert = verify_linear_load(
            FullyPopulatedFamily(), OrderedDimensionalRouting, 2, [4, 6, 8, 10]
        )
        assert not cert.is_linear
        # ratios diverge monotonically for the superlinear family
        assert all(a < b for a, b in zip(cert.ratios, cert.ratios[1:]))
        assert cert.growth_exponent > 1.2

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            verify_linear_load(
                LinearPlacementFamily(), OrderedDimensionalRouting, 2, [4]
            )

    def test_records_sweep(self):
        cert = verify_linear_load(
            LinearPlacementFamily(), OrderedDimensionalRouting, 2, [4, 6]
        )
        assert cert.ks == (4, 6)
        assert cert.sizes == (4, 6)
        assert len(cert.emaxes) == 2

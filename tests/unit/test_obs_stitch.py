"""Tests for repro.obs.stitch — cross-process trace merging."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs import (
    JsonlTraceSink,
    canonical_form,
    load_stitched,
    read_trace,
    split_segments,
    stitch_path,
    stitch_traces,
    worker_trace_dir,
)


def _parent_records(run="aaaa0001", exec_run="aaaa0001-x0001"):
    return [
        {"kind": "header", "version": 1, "label": "certify", "run": run},
        {
            "kind": "span",
            "name": "exec.task",
            "id": "p2",
            "parent": "p1",
            "status": "ok",
            "started_unix": 1.0,
            "duration_seconds": 2.0,
            "attributes": {
                "exec_run": exec_run,
                "task_id": "shard-00000",
                "attempt": 0,
            },
        },
        {
            "kind": "span",
            "name": "exec.run",
            "id": "p1",
            "parent": None,
            "status": "ok",
            "started_unix": 0.0,
            "duration_seconds": 4.0,
            "attributes": {"exec_run": exec_run},
        },
        {
            "kind": "metrics",
            "values": {"counters": {"exec.tasks": 1.0}, "gauges": {}, "histograms": {}},
        },
    ]


def _worker_records(run="aaaa0001", exec_run="aaaa0001-x0001"):
    return [
        {
            "kind": "header",
            "version": 1,
            "label": "worker",
            "worker": True,
            "run": run,
            "exec_run": exec_run,
        },
        {
            "kind": "span",
            "name": "shard.compute",
            "id": "w2",
            "parent": "w1",
            "status": "ok",
            "started_unix": 1.2,
            "duration_seconds": 1.0,
            "attributes": {},
        },
        {
            "kind": "span",
            "name": "exec.task.body",
            "id": "w1",
            "parent": None,
            "status": "ok",
            "started_unix": 1.1,
            "duration_seconds": 1.8,
            "attributes": {
                "task_id": "shard-00000",
                "attempt": 0,
            },
        },
        {"kind": "event", "name": "shard.tick", "span": "w1", "attributes": {}},
        {
            "kind": "metrics",
            "values": {
                "counters": {"engine.parallel.pairs": 12.0},
                "gauges": {},
                "histograms": {},
            },
        },
    ]


class TestSplitSegments:
    def test_splits_at_headers(self):
        records = _parent_records() + _worker_records()
        segments = split_segments(records)
        assert len(segments) == 2
        assert segments[0][0]["label"] == "certify"
        assert segments[1][0]["label"] == "worker"

    def test_headerless_stream_raises(self):
        with pytest.raises(TraceError, match="start with a trace header"):
            split_segments([{"kind": "span", "name": "x"}])


class TestStitchTraces:
    def test_body_span_spliced_into_dispatching_task(self):
        stitched = stitch_traces(_parent_records(), [_worker_records()])
        spans = {r["id"]: r for r in stitched if r.get("kind") == "span"}
        # the body span itself vanishes; its child hangs off exec.task
        assert "w1" not in spans
        assert spans["w2"]["parent"] == "p2"

    def test_events_remapped_to_dispatching_task(self):
        stitched = stitch_traces(_parent_records(), [_worker_records()])
        (event,) = [r for r in stitched if r.get("kind") == "event"]
        assert event["span"] == "p2"

    def test_header_flags_stitched(self):
        stitched = stitch_traces(_parent_records(), [_worker_records()])
        header = stitched[0]
        assert header["stitched"] is True
        assert header["worker_files"] == 1

    def test_metrics_merged_across_segments(self):
        stitched = stitch_traces(_parent_records(), [_worker_records()])
        (metrics,) = [r for r in stitched if r.get("kind") == "metrics"]
        counters = metrics["values"]["counters"]
        assert counters["exec.tasks"] == 1.0
        assert counters["engine.parallel.pairs"] == 12.0

    def test_parentless_worker_span_anchored_to_exec_run(self):
        worker = _worker_records()
        worker.append(
            {
                "kind": "span",
                "name": "worker.idle",
                "id": "w9",
                "parent": None,
                "status": "ok",
                "started_unix": 3.0,
                "duration_seconds": 0.5,
                "attributes": {},
            }
        )
        stitched = stitch_traces(_parent_records(), [worker])
        spans = {r["id"]: r for r in stitched if r.get("kind") == "span"}
        assert spans["w9"]["parent"] == "p1"
        assert spans["w9"]["attributes"]["stitch_orphan"] is False

    def test_unmatched_body_kept_as_orphan(self):
        worker = _worker_records(exec_run="aaaa0001-x9999")
        stitched = stitch_traces(_parent_records(), [worker])
        spans = {r["id"]: r for r in stitched if r.get("kind") == "span"}
        # no dispatch record for that exec_run: body survives, orphaned
        assert "w1" in spans
        assert spans["w1"]["attributes"]["stitch_orphan"] is True

    def test_run_id_mismatch_raises(self):
        with pytest.raises(TraceError, match="does not match"):
            stitch_traces(
                _parent_records(run="aaaa0001"),
                [_worker_records(run="bbbb0002")],
            )

    def test_headerless_parent_raises(self):
        with pytest.raises(TraceError, match="parent trace has no header"):
            stitch_traces([{"kind": "span"}], [])


class TestStitchPath:
    def _write(self, path, records):
        with JsonlTraceSink(path, label="x") as sink:
            for record in records[1:]:
                sink.emit(record)
        # overwrite the auto header with the fixture's
        lines = path.read_text(encoding="utf-8").splitlines()
        import json

        lines[0] = json.dumps(records[0], sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_stitches_worker_directory(self, tmp_path):
        parent = tmp_path / "trace.jsonl"
        self._write(parent, _parent_records())
        workers = worker_trace_dir(parent)
        workers.mkdir()
        self._write(workers / "worker-a.jsonl", _worker_records())
        stitched = stitch_path(parent)
        assert stitched[0]["stitched"] is True
        spans = {r["id"]: r for r in stitched if r.get("kind") == "span"}
        assert spans["w2"]["parent"] == "p2"

    def test_load_stitched_falls_back_to_plain_trace(self, tmp_path):
        parent = tmp_path / "trace.jsonl"
        self._write(parent, _parent_records())
        records = load_stitched(parent)
        assert records[0].get("stitched") is None
        assert read_trace(parent)[0]["kind"] == "header"


class TestCanonicalForm:
    def test_ignores_volatile_attributes_and_ids(self):
        records = _parent_records()
        stitched = stitch_traces(records, [_worker_records()])
        # same logical trace with different exec_run/pid volatile attrs
        other = stitch_traces(
            _parent_records(exec_run="aaaa0001-x0007"),
            [_worker_records(exec_run="aaaa0001-x0007")],
        )
        assert canonical_form(stitched) == canonical_form(other)

    def test_detects_structural_differences(self):
        stitched = stitch_traces(_parent_records(), [_worker_records()])
        pruned = [r for r in stitched if r.get("id") != "w2"]
        assert canonical_form(stitched) != canonical_form(pruned)

    def test_durations_do_not_affect_the_form(self):
        records = _parent_records()
        slower = [dict(r) for r in records]
        for record in slower:
            if record.get("kind") == "span":
                record["duration_seconds"] = 99.0
        assert canonical_form(records) == canonical_form(slower)

"""Unit tests for repro.bisection.exact."""

import pytest

from repro.bisection.dimension_cut import best_dimension_cut
from repro.bisection.exact import MAX_EXACT_NODES, exact_bisection_width
from repro.bisection.hyperplane import hyperplane_bisection
from repro.errors import BisectionError
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestExactWidth:
    def test_linear_t42_matches_theorem1(self):
        p = linear_placement(Torus(4, 2))
        assert exact_bisection_width(p) == 16  # 4k^(d-1)

    def test_linear_t32(self):
        p = linear_placement(Torus(3, 2))
        width = exact_bisection_width(p)
        # constructions are upper bounds on the exact width
        assert width <= best_dimension_cut(p).cut_size
        assert width <= hyperplane_bisection(p).torus_cut_size

    def test_two_adjacent_processors(self):
        torus = Torus(3, 2)
        p = Placement(torus, [0, 1])
        # separating two adjacent processors optimally: the true width is
        # bounded by each node's degree (4d directed edges)
        width = exact_bisection_width(p)
        assert 2 <= width <= 12

    def test_single_processor(self):
        torus = Torus(3, 2)
        p = Placement(torus, [4])
        # halves are {0, 1}: an empty side is allowed; cutting nothing
        # cannot work because the node set must be split... the minimum
        # is the smallest balanced node partition cut
        width = exact_bisection_width(p)
        assert width >= 1

    def test_too_large_rejected(self):
        p = linear_placement(Torus(5, 2))
        assert 25 > MAX_EXACT_NODES
        with pytest.raises(BisectionError):
            exact_bisection_width(p)

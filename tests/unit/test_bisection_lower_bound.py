"""Unit tests for repro.bisection.lower_bound."""

import pytest

from repro.bisection.exact import exact_bisection_width
from repro.bisection.lower_bound import (
    bisection_width_bracket,
    bisection_width_lower_bound_from_load,
)
from repro.load.odr_loads import odr_edge_loads
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestLowerBound:
    def test_formula(self):
        p = linear_placement(Torus(6, 2))
        # |P| = 6: 2*3*3 / E_max
        assert bisection_width_lower_bound_from_load(p, 3.0) == 6

    def test_invalid_emax(self):
        p = linear_placement(Torus(4, 2))
        with pytest.raises(ValueError):
            bisection_width_lower_bound_from_load(p, 0.0)

    def test_bound_below_exact_width(self):
        # the true width must respect the load-derived lower bound
        for k in (3, 4):
            p = linear_placement(Torus(k, 2))
            emax = float(odr_edge_loads(p).max())
            lower = bisection_width_lower_bound_from_load(p, emax)
            assert lower <= exact_bisection_width(p)


class TestBracket:
    @pytest.mark.parametrize("k,d", [(4, 2), (6, 2), (4, 3)])
    def test_bracket_ordered(self, k, d):
        p = linear_placement(Torus(k, d))
        lo, hi = bisection_width_bracket(p)
        assert 0 < lo <= hi

    def test_bracket_contains_exact(self):
        p = linear_placement(Torus(4, 2))
        lo, hi = bisection_width_bracket(p)
        exact = exact_bisection_width(p)
        assert lo <= exact <= hi

    def test_upper_is_theorem1_for_uniform_even(self):
        p = linear_placement(Torus(6, 2))
        _lo, hi = bisection_width_bracket(p)
        assert hi <= 4 * 6

"""Tests for repro.devtools.benchreport — the bench observatory."""

from __future__ import annotations

import json

import pytest

from repro.devtools.benchreport import (
    TRAJECTORY_SCHEMA_VERSION,
    build_trajectory,
    check_trajectory,
    extract_metrics,
    run_report,
)


def _write(path, data):
    path.write_text(json.dumps(data) + "\n", encoding="utf-8")


@pytest.fixture()
def bench_dir(tmp_path):
    _write(
        tmp_path / "BENCH_batch.json",
        {
            "min_speedup": 2.0,
            "min_hit_rate": 0.5,
            "emax_values": [8.0],
            "measured": {
                "speedup": 5.0,
                "hit_rate": 0.9,
                "sequential_ms": 100.0,
                "batched_ms": 20.0,
            },
        },
    )
    _write(
        tmp_path / "BENCH_custom.json",
        {"latency_ms": 4.5, "nested": {"rate": 2.0}, "flag": True},
    )
    return tmp_path


class TestExtractMetrics:
    def test_curated_extractor_produces_gated_metrics(self, bench_dir):
        data = json.loads(
            (bench_dir / "BENCH_batch.json").read_text(encoding="utf-8")
        )
        metrics = {m[0]: m for m in extract_metrics("BENCH_batch.json", data)}
        name, value, direction, threshold = metrics["batch.speedup"]
        assert value == 5.0
        assert direction == "higher"
        assert threshold == 2.0

    def test_unknown_file_falls_back_to_numeric_leaves(self, bench_dir):
        data = json.loads(
            (bench_dir / "BENCH_custom.json").read_text(encoding="utf-8")
        )
        metrics = {m[0]: m for m in extract_metrics("BENCH_custom.json", data)}
        assert metrics["custom.latency_ms"][1] == 4.5
        assert metrics["custom.nested.rate"][1] == 2.0
        # informational: no threshold, and booleans are not numbers
        assert metrics["custom.latency_ms"][3] is None
        assert "custom.flag" not in metrics


class TestBuildTrajectory:
    def test_schema_and_sources(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        assert trajectory["schema_version"] == TRAJECTORY_SCHEMA_VERSION
        assert trajectory["sources"] == [
            "BENCH_batch.json",
            "BENCH_custom.json",
        ]
        assert "batch.speedup" in trajectory["metrics"]

    def test_unchanged_values_append_no_points(self, bench_dir):
        first = build_trajectory(bench_dir, now=100.0)
        second = build_trajectory(bench_dir, previous=first, now=200.0)
        assert second == first

    def test_changed_value_appends_a_point(self, bench_dir):
        first = build_trajectory(bench_dir, now=100.0)
        data = json.loads(
            (bench_dir / "BENCH_custom.json").read_text(encoding="utf-8")
        )
        data["latency_ms"] = 9.9
        _write(bench_dir / "BENCH_custom.json", data)
        second = build_trajectory(bench_dir, previous=first, now=200.0)
        series = second["metrics"]["custom.latency_ms"]["series"]
        assert [point["value"] for point in series] == [4.5, 9.9]
        assert [point["recorded_unix"] for point in series] == [100.0, 200.0]

    def test_vanished_source_retires_its_metrics(self, bench_dir):
        first = build_trajectory(bench_dir, now=100.0)
        (bench_dir / "BENCH_custom.json").unlink()
        second = build_trajectory(bench_dir, previous=first, now=200.0)
        assert "custom.latency_ms" not in second["metrics"]
        assert "custom.latency_ms" in second["retired"]


class TestCheckTrajectory:
    def test_clean_pass(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        assert check_trajectory(trajectory, bench_dir) == []

    def test_threshold_violation(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        data = json.loads(
            (bench_dir / "BENCH_batch.json").read_text(encoding="utf-8")
        )
        data["measured"]["speedup"] = 1.5  # below the 2.0 pin
        _write(bench_dir / "BENCH_batch.json", data)
        violations = check_trajectory(trajectory, bench_dir)
        assert any("batch.speedup" in v for v in violations)

    def test_exact_pin_drift(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        data = json.loads(
            (bench_dir / "BENCH_batch.json").read_text(encoding="utf-8")
        )
        data["emax_values"] = [9.0]
        _write(bench_dir / "BENCH_batch.json", data)
        violations = check_trajectory(trajectory, bench_dir)
        assert any("exact pin drifted" in v for v in violations)

    def test_missing_baseline_is_a_violation(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        (bench_dir / "BENCH_custom.json").unlink()
        violations = check_trajectory(trajectory, bench_dir)
        assert any("baseline file missing" in v for v in violations)

    def test_wrong_schema_version_fails_closed(self, bench_dir):
        trajectory = build_trajectory(bench_dir, now=100.0)
        trajectory["schema_version"] = 99
        violations = check_trajectory(trajectory, bench_dir)
        assert len(violations) == 1
        assert "schema_version" in violations[0]


class TestRunReport:
    def test_report_writes_trajectory_and_passes(self, bench_dir, capsys):
        assert run_report(bench_dir) == 0
        out_path = bench_dir / "BENCH_trajectory.json"
        assert out_path.exists()
        trajectory = json.loads(out_path.read_text(encoding="utf-8"))
        assert trajectory["schema_version"] == TRAJECTORY_SCHEMA_VERSION
        assert "metrics across" in capsys.readouterr().out

    def test_check_mode_requires_a_trajectory(self, bench_dir, capsys):
        assert run_report(bench_dir, check=True) == 1
        assert "no trajectory" in capsys.readouterr().out

    def test_check_mode_passes_then_fails_on_regression(self, bench_dir, capsys):
        assert run_report(bench_dir) == 0
        assert run_report(bench_dir, check=True) == 0
        assert "bench trajectory OK" in capsys.readouterr().out
        data = json.loads(
            (bench_dir / "BENCH_batch.json").read_text(encoding="utf-8")
        )
        data["measured"]["hit_rate"] = 0.1
        _write(bench_dir / "BENCH_batch.json", data)
        assert run_report(bench_dir, check=True) == 1
        assert "regression" in capsys.readouterr().out

    def test_regeneration_is_stable_on_disk(self, bench_dir):
        assert run_report(bench_dir) == 0
        out_path = bench_dir / "BENCH_trajectory.json"
        first = out_path.read_text(encoding="utf-8")
        assert run_report(bench_dir) == 0
        assert out_path.read_text(encoding="utf-8") == first

    def test_custom_output_path(self, bench_dir, tmp_path):
        target = tmp_path / "elsewhere" / "traj.json"
        assert run_report(bench_dir, output=target) == 0
        assert target.exists()

"""Unit tests for repro.routing.odr_unrestricted."""

import numpy as np
import pytest

from repro.load.edge_loads import edge_loads_reference
from repro.load.odr_loads import odr_edge_loads
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.odr_unrestricted import UnrestrictedODR
from repro.torus.topology import Torus


class TestPathSet:
    def test_odd_k_single_path(self, torus_5_2):
        algo = UnrestrictedODR()
        for q in [(2, 3), (4, 4), (1, 0)]:
            paths = algo.paths(torus_5_2, (0, 0), q)
            assert len(paths) == 1
            assert algo.num_paths(torus_5_2, (0, 0), q) == 1

    def test_even_k_tie_branches(self, torus_4_2):
        algo = UnrestrictedODR()
        # both coordinates tied: 2^2 = 4 paths
        paths = algo.paths(torus_4_2, (0, 0), (2, 2))
        assert len(paths) == 4
        assert algo.num_paths(torus_4_2, (0, 0), (2, 2)) == 4

    def test_all_paths_minimal_and_dimension_ordered(self, torus_4_2):
        algo = UnrestrictedODR()
        lee = torus_4_2.lee_distance((0, 0), (2, 1))
        for path in algo.paths(torus_4_2, (0, 0), (2, 1)):
            assert path.length == lee
            dims = [torus_4_2.edges.decode(e).dim for e in path.edge_ids]
            assert dims == sorted(dims)

    def test_matches_restricted_when_no_ties(self, torus_5_2):
        restricted = OrderedDimensionalRouting(2)
        unrestricted = UnrestrictedODR()
        p, q = (1, 2), (4, 0)
        assert unrestricted.paths(torus_5_2, p, q) == restricted.paths(
            torus_5_2, p, q
        )

    def test_restricted_path_always_included(self, torus_4_2):
        restricted = OrderedDimensionalRouting(2)
        unrestricted = UnrestrictedODR()
        p, q = (0, 0), (2, 1)
        r_path = restricted.path(torus_4_2, p, q)
        u_nodes = {path.nodes for path in unrestricted.paths(torus_4_2, p, q)}
        assert r_path.nodes in u_nodes


class TestLoadComparison:
    @pytest.mark.parametrize("k", [4, 6])
    def test_unrestricted_never_worse(self, k):
        p = linear_placement(Torus(k, 2))
        restricted = odr_edge_loads(p)
        unrestricted = edge_loads_reference(p, UnrestrictedODR())
        assert unrestricted.max() <= restricted.max() + 1e-9
        assert abs(unrestricted.sum() - restricted.sum()) < 1e-9

    def test_odd_k_identical(self):
        p = linear_placement(Torus(5, 2))
        assert np.allclose(
            odr_edge_loads(p), edge_loads_reference(p, UnrestrictedODR())
        )

"""Unit tests for repro.load.udr_loads — exact fractional loads vs oracle."""

import numpy as np
import pytest

from repro.load.edge_loads import edge_loads_reference
from repro.load.udr_loads import udr_edge_loads, udr_sampled_edge_loads
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.placements.multiple import multiple_linear_placement
from repro.placements.random_placement import random_placement
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestAgainstOracle:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (3, 3), (4, 3)])
    def test_linear_placements(self, k, d):
        p = linear_placement(Torus(k, d))
        fast = udr_edge_loads(p)
        slow = edge_loads_reference(p, UnorderedDimensionalRouting())
        assert np.allclose(fast, slow)

    def test_random_placement(self):
        p = random_placement(Torus(4, 3), 10, seed=9)
        assert np.allclose(
            udr_edge_loads(p),
            edge_loads_reference(p, UnorderedDimensionalRouting()),
        )

    def test_multiple_linear(self):
        p = multiple_linear_placement(Torus(4, 2), 2)
        assert np.allclose(
            udr_edge_loads(p),
            edge_loads_reference(p, UnorderedDimensionalRouting()),
        )

    def test_even_k_with_ties(self):
        p = Placement(Torus(4, 2), [0, 10])  # (0,0) and (2,2): double tie
        assert np.allclose(
            udr_edge_loads(p),
            edge_loads_reference(p, UnorderedDimensionalRouting()),
        )


class TestProperties:
    def test_conservation(self):
        p = linear_placement(Torus(5, 3))
        loads = udr_edge_loads(p)
        coords = p.coords()
        m = len(p)
        idx = np.arange(m)
        pi, qi = np.meshgrid(idx, idx, indexing="ij")
        keep = pi != qi
        total = p.torus.lee_distances_array(coords[pi[keep]], coords[qi[keep]]).sum()
        assert loads.sum() == pytest.approx(float(total))

    def test_udr_spreads_vs_odr(self):
        from repro.load.odr_loads import odr_edge_loads

        p = linear_placement(Torus(6, 2))
        assert udr_edge_loads(p).max() <= odr_edge_loads(p).max() + 1e-9

    def test_single_dim_pair_integer_load(self):
        # pairs differing in one dim have a single path: integer loads
        torus = Torus(5, 2)
        p = Placement(torus, torus.node_ids([(0, 0), (0, 2)]))
        loads = udr_edge_loads(p)
        used = loads[loads > 0]
        assert np.allclose(used, 1.0)


class TestSampledEstimator:
    def test_total_is_exact(self):
        p = linear_placement(Torus(4, 2))
        exact = udr_edge_loads(p)
        sampled = udr_sampled_edge_loads(p, messages_per_pair=1, seed=0)
        assert sampled.sum() == pytest.approx(exact.sum())

    def test_converges(self):
        p = linear_placement(Torus(4, 2))
        exact = udr_edge_loads(p)
        n = 300
        sampled = udr_sampled_edge_loads(p, messages_per_pair=n, seed=0) / n
        assert np.abs(sampled - exact).max() < 0.25

    def test_reproducible(self):
        p = linear_placement(Torus(4, 2))
        a = udr_sampled_edge_loads(p, seed=3)
        b = udr_sampled_edge_loads(p, seed=3)
        assert np.array_equal(a, b)

    def test_invalid_messages(self):
        p = linear_placement(Torus(4, 2))
        with pytest.raises(ValueError):
            udr_sampled_edge_loads(p, messages_per_pair=0)

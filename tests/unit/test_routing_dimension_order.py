"""Unit tests for repro.routing.dimension_order."""

import pytest

from repro.errors import RoutingError
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus


class TestDimensionOrderRouting:
    def test_custom_order_respected(self, torus_5_2):
        dor = DimensionOrderRouting([1, 0])
        path = dor.path(torus_5_2, (0, 0), (2, 2))
        dims = [torus_5_2.edges.decode(e).dim for e in path.edge_ids]
        assert dims == [1, 1, 0, 0]

    def test_odr_is_ascending_order(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        dor = DimensionOrderRouting([0, 1])
        assert odr.path(torus_5_2, (1, 2), (4, 0)) == dor.path(
            torus_5_2, (1, 2), (4, 0)
        )

    def test_all_orders_reach_destination(self):
        torus = Torus(4, 3)
        import itertools

        for order in itertools.permutations(range(3)):
            dor = DimensionOrderRouting(order)
            path = dor.path(torus, (0, 1, 2), (3, 3, 0))
            assert path.destination == torus.node_id((3, 3, 0))
            assert path.length == torus.lee_distance((0, 1, 2), (3, 3, 0))

    def test_invalid_order(self):
        with pytest.raises(RoutingError):
            DimensionOrderRouting([0, 0])
        with pytest.raises(RoutingError):
            DimensionOrderRouting([1, 2])

    def test_num_paths_is_one(self, torus_4_2):
        assert DimensionOrderRouting([0, 1]).num_paths(torus_4_2, (0, 0), (1, 1)) == 1

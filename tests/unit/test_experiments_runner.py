"""Tests for repro.experiments.runner — partial failure and checkpointing.

The suite swaps a tiny synthetic registry in for the real one so the
runner's failure tolerance and journal round-trip can be exercised in
milliseconds.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import base
from repro.experiments.runner import render_results, run_all
from repro.util.tables import Table


def _passing(quick):
    result = base.ExperimentResult("EXP-2", "passes", passed=True)
    result.check(True, "claim holds")
    table = Table(["k", "E_max"], title="synthetic")
    table.add_row([4, 2.0])
    result.tables.append(table)
    return result


def _raising(quick):
    raise RuntimeError("synthetic experiment crash")


@pytest.fixture
def synthetic_registry(monkeypatch):
    registry = {
        "EXP-1": base.Experiment("EXP-1", "crashes", "none", _raising),
        "EXP-2": base.Experiment("EXP-2", "passes", "none", _passing),
    }
    monkeypatch.setattr(base, "_REGISTRY", registry)
    return registry


class TestPartialFailure:
    def test_crash_recorded_and_sweep_continues(self, synthetic_registry):
        results = run_all()
        assert set(results) == {"EXP-1", "EXP-2"}
        assert results["EXP-2"].passed
        crashed = results["EXP-1"]
        assert not crashed.passed
        assert any(
            "RuntimeError: synthetic experiment crash" in f
            for f in crashed.findings
        )
        assert any(f.startswith("[note] traceback:") for f in crashed.findings)

    def test_render_counts_crashed_as_failed(self, synthetic_registry):
        text = render_results(run_all())
        assert "1/2 experiments passed" in text
        assert "Verdict: FAIL" in text and "Verdict: PASS" in text


class TestCheckpointResume:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(InvalidParameterError):
            run_all(resume=True)

    def test_resume_restores_without_rerunning(
        self, synthetic_registry, tmp_path
    ):
        path = tmp_path / "suite.jsonl"
        first = run_all(checkpoint=str(path))
        # sabotage EXP-2: if resume re-ran it, it would now crash
        synthetic_registry["EXP-2"] = base.Experiment(
            "EXP-2", "passes", "none", _raising
        )
        second = run_all(checkpoint=str(path), resume=True)
        assert second["EXP-2"].passed
        assert second["EXP-2"].findings == first["EXP-2"].findings

    def test_tables_survive_the_round_trip(self, synthetic_registry, tmp_path):
        path = tmp_path / "suite.jsonl"
        first = run_all(checkpoint=str(path))
        second = run_all(checkpoint=str(path), resume=True)
        assert render_results(second) == render_results(first)

    def test_quick_flag_fingerprints_the_journal(
        self, synthetic_registry, tmp_path
    ):
        from repro.errors import ExecutionError

        path = tmp_path / "suite.jsonl"
        run_all(quick=True, checkpoint=str(path))
        with pytest.raises(ExecutionError, match="fingerprint"):
            run_all(quick=False, checkpoint=str(path), resume=True)


class TestSuiteTiming:
    def test_run_all_stamps_elapsed_seconds(self, synthetic_registry):
        results = run_all()
        for result in results.values():
            assert result.elapsed_seconds is not None
            assert result.elapsed_seconds >= 0.0

    def test_render_includes_the_timing_table(self, synthetic_registry):
        text = render_results(run_all())
        assert "Suite timing" in text
        assert "total" in text

    def test_untimed_results_render_without_the_table(self):
        result = base.ExperimentResult("EXP-2", "handmade", passed=True)
        text = render_results({"EXP-2": result})
        assert "Suite timing" not in text

    def test_elapsed_survives_the_checkpoint_round_trip(
        self, synthetic_registry, tmp_path
    ):
        path = tmp_path / "suite.jsonl"
        first = run_all(checkpoint=str(path))
        second = run_all(checkpoint=str(path), resume=True)
        for exp_id, result in first.items():
            assert second[exp_id].elapsed_seconds == result.elapsed_seconds

    def test_traced_suite_emits_experiment_spans(self, synthetic_registry):
        from repro.obs import Tracer, using_tracer

        tracer = Tracer()
        with using_tracer(tracer):
            run_all()
        spans = {span.name: span for span in tracer.finished}
        assert set(spans) == {"experiment.run"}
        crashed = [
            span
            for span in tracer.finished
            if span.attributes.get("crashed") == "RuntimeError"
        ]
        assert len(crashed) == 1

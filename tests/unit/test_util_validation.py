"""Unit tests for repro.util.validation."""

import pytest

from repro.errors import InvalidParameterError
from repro.util.validation import (
    check_dimension,
    check_nonnegative,
    check_positive,
    check_probability,
    check_radix,
    check_torus_params,
)


class TestCheckDimension:
    def test_valid(self):
        assert check_dimension(1) == 1
        assert check_dimension(10) == 10

    def test_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_dimension(0)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_dimension(-3)

    def test_float_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_dimension(2.0)

    def test_bool_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_dimension(True)


class TestCheckRadix:
    def test_valid(self):
        assert check_radix(2) == 2
        assert check_radix(100) == 100

    def test_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_radix(1)

    def test_string_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_radix("4")


class TestCheckTorusParams:
    def test_returns_pair(self):
        assert check_torus_params(4, 3) == (4, 3)

    def test_bad_radix(self):
        with pytest.raises(InvalidParameterError):
            check_torus_params(0, 3)

    def test_bad_dimension(self):
        with pytest.raises(InvalidParameterError):
            check_torus_params(4, 0)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            check_probability(1.5)
        with pytest.raises(InvalidParameterError):
            check_probability(-0.1)


class TestSignChecks:
    def test_positive(self):
        assert check_positive(3) == 3
        with pytest.raises(InvalidParameterError):
            check_positive(0)

    def test_nonnegative(self):
        assert check_nonnegative(0) == 0
        with pytest.raises(InvalidParameterError):
            check_nonnegative(-1)

"""Unit tests for repro.routing.minimal."""


from repro.routing.minimal import AllMinimalPaths, count_minimal_paths
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestCountMinimalPaths:
    def test_single_dim(self, torus_5_2):
        assert count_minimal_paths(torus_5_2, (0, 0), (2, 0)) == 1

    def test_multinomial(self, torus_5_2):
        # deltas (2, 2): C(4,2) = 6
        assert count_minimal_paths(torus_5_2, (0, 0), (2, 2)) == 6

    def test_tie_doubles(self):
        torus = Torus(4, 2)
        # deltas (2*, 1), one tie: 2 * C(3,1) = 6
        assert count_minimal_paths(torus, (0, 0), (2, 1)) == 6

    def test_double_tie(self):
        torus = Torus(4, 2)
        # deltas (2*, 2*): 4 * C(4,2) = 24
        assert count_minimal_paths(torus, (0, 0), (2, 2)) == 24

    def test_self_pair(self, torus_4_2):
        assert count_minimal_paths(torus_4_2, (1, 2), (1, 2)) == 1

    def test_3d(self):
        torus = Torus(7, 3)
        # deltas (1,2,3): 6!/(1!2!3!) = 60
        assert count_minimal_paths(torus, (0, 0, 0), (1, 2, 3)) == 60


class TestAllMinimalPaths:
    def test_enumeration_matches_count(self):
        torus = Torus(4, 2)
        algo = AllMinimalPaths()
        for p, q in [((0, 0), (1, 1)), ((0, 0), (2, 1)), ((0, 0), (2, 2)),
                     ((1, 3), (3, 0))]:
            paths = algo.paths(torus, p, q)
            assert len(paths) == count_minimal_paths(torus, p, q)
            assert len({path.nodes for path in paths}) == len(paths)

    def test_all_paths_minimal(self, torus_5_2):
        algo = AllMinimalPaths()
        lee = torus_5_2.lee_distance((0, 0), (2, 3))
        for path in algo.paths(torus_5_2, (0, 0), (2, 3)):
            assert path.length == lee

    def test_superset_of_udr(self, torus_5_2):
        allmin = AllMinimalPaths()
        udr = UnorderedDimensionalRouting()
        p, q = (0, 0), (2, 2)
        all_nodes = {path.nodes for path in allmin.paths(torus_5_2, p, q)}
        udr_nodes = {path.nodes for path in udr.paths(torus_5_2, p, q)}
        assert udr_nodes <= all_nodes

    def test_num_paths_uses_closed_form(self, torus_4_2):
        algo = AllMinimalPaths()
        assert algo.num_paths(torus_4_2, (0, 0), (2, 2)) == 24

    def test_paths_end_at_destination(self, torus_4_2):
        algo = AllMinimalPaths()
        dst = torus_4_2.node_id((2, 1))
        for path in algo.paths(torus_4_2, (0, 0), (2, 1)):
            assert path.destination == dst

"""Tests for repro.obs.summary — trace rendering."""

from __future__ import annotations

from repro.obs import JsonlTraceSink, Tracer, summarize_path, summarize_trace


def _records():
    return [
        {"kind": "header", "version": 1, "label": "certify", "pid": 7},
        {
            "kind": "span",
            "name": "search.certify",
            "parent": None,
            "duration_seconds": 2.0,
            "status": "ok",
        },
        {
            "kind": "span",
            "name": "exec.task",
            "parent": "root",
            "duration_seconds": 0.5,
            "status": "ok",
        },
        {
            "kind": "span",
            "name": "exec.task",
            "parent": "root",
            "duration_seconds": 1.5,
            "status": "error",
        },
        {"kind": "event", "name": "exec.retry"},
        {"kind": "event", "name": "exec.retry"},
        {"kind": "event", "name": "exec.timeout"},
        {
            "kind": "metrics",
            "values": {
                "counters": {"search.leaves": 10.0},
                "gauges": {"engine.pairs_per_sec": 123.0},
                "histograms": {
                    "exec.task_seconds": {
                        "count": 2,
                        "total": 2.0,
                        "min": 0.5,
                        "max": 1.5,
                        "buckets": {"0": 2},
                    }
                },
            },
        },
    ]


class TestSummarizeTrace:
    def test_header_and_counts_line(self):
        text = summarize_trace(_records())
        assert text.startswith("# Trace summary — certify")
        assert "3 spans, 3 events, 8 records" in text

    def test_span_table_aggregates_by_name(self):
        text = summarize_trace(_records())
        # exec.task: two spans totalling 2.0s, one error; root defines 100%
        assert "exec.task" in text
        assert "search.certify" in text
        assert "100.0" in text  # root span share of its own wall time

    def test_event_counts(self):
        text = summarize_trace(_records())
        assert "exec.retry" in text and "exec.timeout" in text

    def test_metric_tables_render_final_snapshot(self):
        text = summarize_trace(_records())
        assert "search.leaves" in text
        assert "engine.pairs_per_sec" in text
        assert "exec.task_seconds" in text

    def test_spanless_trace_still_renders(self):
        text = summarize_trace([{"kind": "header", "version": 1, "pid": 1}])
        assert "0 spans, 0 events" in text

    def test_header_only_trace_notes_the_crash(self):
        # a run killed before any span closed leaves only the header
        text = summarize_trace([{"kind": "header", "version": 1, "pid": 1}])
        assert "may have crashed" in text

    def test_empty_record_list_renders(self):
        text = summarize_trace([])
        assert "0 spans, 0 events, 0 records" in text

    def test_unclosed_spans_reported_not_raised(self):
        # spans journal on exit: a crashed run's open spans only exist
        # as dangling parent/event references — they must be surfaced
        records = [
            {"kind": "header", "version": 1, "label": "crashed", "pid": 3},
            {
                "kind": "span",
                "name": "exec.task",
                "id": "s2",
                "parent": "s1",
                "duration_seconds": 0.5,
                "status": "ok",
            },
            {"kind": "event", "name": "exec.retry", "span": "s1"},
        ]
        text = summarize_trace(records)
        assert "1 span(s) opened but never closed" in text
        assert "s1" in text

    def test_closed_trace_reports_no_open_spans(self):
        records = [
            {"kind": "header", "version": 1, "pid": 1},
            {
                "kind": "span",
                "name": "root",
                "id": "s1",
                "parent": None,
                "duration_seconds": 1.0,
                "status": "ok",
            },
            {
                "kind": "span",
                "name": "child",
                "id": "s2",
                "parent": "s1",
                "duration_seconds": 0.5,
                "status": "ok",
            },
        ]
        text = summarize_trace(records)
        assert "never closed" not in text

    def test_last_metrics_record_wins(self):
        records = _records() + [
            {"kind": "metrics", "values": {"counters": {"final": 1.0}}}
        ]
        text = summarize_trace(records)
        assert "final" in text
        assert "search.leaves" not in text


class TestSummarizePath:
    def test_end_to_end_from_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlTraceSink(path, label="e2e"), label="e2e")
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick")
        tracer.metrics.counter("ticks").add(1)
        tracer.finish()
        text = summarize_path(path)
        assert "# Trace summary — e2e" in text
        assert "outer" in text and "inner" in text and "tick" in text
        assert "ticks" in text

"""Unit tests for repro.load.traffic."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.load.traffic import (
    complete_exchange_weights,
    hotspot_traffic_weights,
    permutation_traffic_weights,
)


class TestCompleteExchange:
    def test_shape_and_diagonal(self):
        w = complete_exchange_weights(5)
        assert w.shape == (5, 5)
        assert np.all(np.diagonal(w) == 0)
        assert w.sum() == 20

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            complete_exchange_weights(0)


class TestPermutation:
    def test_row_sums_one(self):
        w = permutation_traffic_weights(6, seed=0)
        assert np.all(w.sum(axis=1) == 1)
        assert np.all(w.sum(axis=0) == 1)

    def test_no_fixed_points(self):
        w = permutation_traffic_weights(8, seed=1)
        assert np.all(np.diagonal(w) == 0)

    def test_reproducible(self):
        assert np.array_equal(
            permutation_traffic_weights(6, seed=5),
            permutation_traffic_weights(6, seed=5),
        )

    def test_too_small(self):
        with pytest.raises(InvalidParameterError):
            permutation_traffic_weights(1)


class TestHotspot:
    def test_column_concentration(self):
        w = hotspot_traffic_weights(5, hotspot_index=2)
        assert np.all(w[:, 2][np.arange(5) != 2] == 1.0)
        assert w[2, 2] == 0.0
        assert w.sum() == 4

    def test_background(self):
        w = hotspot_traffic_weights(4, hotspot_index=0, background=0.5)
        assert w[1, 2] == 0.5
        assert w[1, 0] == 1.0

    def test_invalid_index(self):
        with pytest.raises(InvalidParameterError):
            hotspot_traffic_weights(4, hotspot_index=4)

"""Unit tests for repro.torus.topology."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.torus.topology import Torus


class TestConstruction:
    def test_counts(self):
        t = Torus(4, 3)
        assert t.num_nodes == 64
        assert t.num_edges == 2 * 3 * 64
        assert t.degree == 6
        assert t.shape == (4, 4, 4)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            Torus(1, 2)
        with pytest.raises(InvalidParameterError):
            Torus(4, 0)

    def test_equality_and_hash(self):
        assert Torus(4, 2) == Torus(4, 2)
        assert Torus(4, 2) != Torus(4, 3)
        assert hash(Torus(5, 2)) == hash(Torus(5, 2))

    def test_repr(self):
        assert repr(Torus(4, 2)) == "Torus(k=4, d=2)"


class TestCoordinates:
    def test_node_id_roundtrip(self, torus_4_3):
        for nid in (0, 13, 63):
            assert torus_4_3.node_id(torus_4_3.coord(nid)) == nid

    def test_all_node_coords_aligned(self, torus_4_2):
        coords = torus_4_2.all_node_coords()
        assert np.array_equal(
            torus_4_2.node_ids(coords), np.arange(torus_4_2.num_nodes)
        )

    def test_contains_coord(self, torus_4_2):
        assert torus_4_2.contains_coord((3, 3))
        assert not torus_4_2.contains_coord((4, 0))
        assert not torus_4_2.contains_coord((0, 0, 0))


class TestDistance:
    def test_lee_distance(self, torus_5_2):
        assert torus_5_2.lee_distance((0, 0), (4, 3)) == 1 + 2

    def test_lee_distance_ids(self, torus_4_2):
        u = torus_4_2.node_id((0, 0))
        v = torus_4_2.node_id((2, 2))
        assert torus_4_2.lee_distance_ids(u, v) == 4

    def test_diameter(self):
        assert Torus(6, 3).diameter == 9
        assert Torus(5, 2).diameter == 4

    def test_distance_array(self, torus_5_2):
        p = np.array([[0, 0], [1, 1]])
        q = np.array([[4, 3], [1, 1]])
        assert torus_5_2.lee_distances_array(p, q).tolist() == [3, 0]


class TestNeighbors:
    def test_count(self, torus_4_3):
        assert len(torus_4_3.neighbors(0)) == 6

    def test_symmetric(self, torus_4_2):
        for u in range(torus_4_2.num_nodes):
            for v in torus_4_2.neighbors(u):
                assert u in torus_4_2.neighbors(v)

    def test_k2_neighbors_coincide(self):
        t = Torus(2, 1)
        n = t.neighbors(0)
        assert n == [1, 1]

    def test_lee_distance_one(self, torus_5_2):
        for v in torus_5_2.neighbors(7):
            assert torus_5_2.lee_distance_ids(7, v) == 1

    def test_is_even(self):
        assert Torus(4, 2).is_even
        assert not Torus(5, 2).is_even

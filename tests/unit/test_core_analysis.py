"""Unit tests for repro.core.analysis."""

import numpy as np
import pytest

from repro.core.analysis import analyze, compute_loads
from repro.load.edge_loads import edge_loads_reference
from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.fully import block_placement
from repro.placements.linear import linear_placement
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestComputeLoads:
    def test_odr_dispatch(self, linear_4_2):
        assert np.allclose(
            compute_loads(linear_4_2, OrderedDimensionalRouting(2)),
            odr_edge_loads(linear_4_2),
        )

    def test_custom_order_dispatch(self, linear_4_2):
        dor = DimensionOrderRouting([1, 0])
        assert np.allclose(
            compute_loads(linear_4_2, dor),
            edge_loads_reference(linear_4_2, dor),
        )

    def test_udr_dispatch(self, linear_4_2):
        assert np.allclose(
            compute_loads(linear_4_2, UnorderedDimensionalRouting()),
            udr_edge_loads(linear_4_2),
        )

    def test_generic_fallback(self, linear_4_2):
        allmin = AllMinimalPaths()
        assert np.allclose(
            compute_loads(linear_4_2, allmin),
            edge_loads_reference(linear_4_2, allmin),
        )


class TestAnalyze:
    def test_linear_odr(self):
        p = linear_placement(Torus(6, 2))
        an = analyze(p, OrderedDimensionalRouting(2))
        assert an.uniform
        assert an.emax == 3.0
        assert an.dimension_cut_width == 4 * 6
        assert an.dimension_cut_balanced
        assert an.optimality_ratio >= 1.0
        assert an.linearity_ratio == pytest.approx(0.5)

    def test_bounds_hold(self):
        p = linear_placement(Torus(6, 3))
        for routing in (OrderedDimensionalRouting(3), UnorderedDimensionalRouting()):
            an = analyze(p, routing)
            assert an.emax >= an.bounds.best

    def test_nonuniform_placement(self, torus_4_2):
        p = block_placement(torus_4_2, 2)
        an = analyze(p, OrderedDimensionalRouting(2))
        assert not an.uniform
        assert an.bounds.section4 is None

    def test_hyperplane_within_corollary1(self):
        p = linear_placement(Torus(4, 3))
        an = analyze(p, OrderedDimensionalRouting(3))
        assert an.hyperplane_cut_width <= 6 * 3 * 16
        assert an.hyperplane_array_crossings <= 2 * 3 * 16

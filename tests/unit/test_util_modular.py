"""Unit tests for repro.util.modular."""

import numpy as np
import pytest

from repro.util.modular import (
    TIE_BOTH,
    TIE_PLUS,
    cyclic_distance,
    cyclic_distance_array,
    lee_distance,
    lee_distance_array,
    minimal_correction,
    minimal_correction_array,
)


class TestCyclicDistance:
    def test_zero_for_equal(self):
        assert cyclic_distance(3, 3, 7) == 0

    def test_adjacent(self):
        assert cyclic_distance(0, 1, 5) == 1
        assert cyclic_distance(1, 0, 5) == 1

    def test_wraparound_is_shorter(self):
        # 0 -> 4 on a 5-ring: one step backwards
        assert cyclic_distance(0, 4, 5) == 1

    def test_half_ring_even(self):
        assert cyclic_distance(0, 3, 6) == 3

    def test_max_is_floor_half(self):
        for k in range(2, 12):
            dists = [cyclic_distance(0, j, k) for j in range(k)]
            assert max(dists) == k // 2

    def test_reduces_modulo(self):
        assert cyclic_distance(7, -1, 5) == cyclic_distance(2, 4, 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cyclic_distance(0, 1, 0)

    def test_array_matches_scalar(self):
        k = 7
        i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        arr = cyclic_distance_array(i, j, k)
        for a in range(k):
            for b in range(k):
                assert arr[a, b] == cyclic_distance(a, b, k)

    def test_array_k1_is_zero(self):
        assert np.all(cyclic_distance_array([0, 0], [0, 0], 1) == 0)


class TestLeeDistance:
    def test_zero_for_equal(self):
        assert lee_distance((1, 2, 3), (1, 2, 3), 5) == 0

    def test_sum_of_cyclic(self):
        assert lee_distance((0, 0), (2, 4), 5) == 2 + 1

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            lee_distance((0, 0), (1,), 5)

    def test_array_form(self):
        p = np.array([[0, 0], [1, 1]])
        q = np.array([[2, 4], [1, 3]])
        assert lee_distance_array(p, q, 5).tolist() == [3, 2]

    def test_diameter(self):
        # farthest point from origin on T_6^2 is (3, 3)
        assert lee_distance((0, 0), (3, 3), 6) == 6


class TestMinimalCorrection:
    def test_forward_shorter(self):
        delta, tied = minimal_correction(0, 2, 6)
        assert (delta, tied) == (2, False)

    def test_backward_shorter(self):
        delta, tied = minimal_correction(0, 5, 6)
        assert (delta, tied) == (-1, False)

    def test_zero(self):
        assert minimal_correction(4, 4, 6) == (0, False)

    def test_half_ring_tie_resolves_plus(self):
        delta, tied = minimal_correction(0, 3, 6, tie=TIE_PLUS)
        assert (delta, tied) == (3, True)

    def test_tie_both_reports_tie(self):
        delta, tied = minimal_correction(1, 4, 6, tie=TIE_BOTH)
        assert delta == 3 and tied

    def test_odd_k_never_ties(self):
        for i in range(7):
            for j in range(7):
                _, tied = minimal_correction(i, j, 7)
                assert not tied

    def test_invalid_tie_policy(self):
        with pytest.raises(ValueError):
            minimal_correction(0, 1, 4, tie="bogus")

    def test_array_matches_scalar(self):
        k = 6
        p, q = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        delta, tied = minimal_correction_array(p, q, k)
        for a in range(k):
            for b in range(k):
                sd, st = minimal_correction(a, b, k)
                assert delta[a, b] == sd
                assert tied[a, b] == st

    def test_correction_reaches_target(self):
        for k in (4, 5, 6, 9):
            for i in range(k):
                for j in range(k):
                    delta, _ = minimal_correction(i, j, k)
                    assert (i + delta) % k == j

"""Unit tests for repro.sim.packet."""

from repro.sim.packet import Packet


class TestPacket:
    def test_path_length(self):
        p = Packet(packet_id=0, src=0, dst=3, edge_ids=(1, 2, 3))
        assert p.path_length == 3

    def test_latency_none_in_flight(self):
        p = Packet(packet_id=0, src=0, dst=1, edge_ids=(1,))
        assert p.latency is None

    def test_latency_after_delivery(self):
        p = Packet(packet_id=0, src=0, dst=1, edge_ids=(1,), release_cycle=2)
        p.delivered_cycle = 5
        assert p.latency == 3

    def test_zero_hop(self):
        p = Packet(packet_id=0, src=4, dst=4, edge_ids=())
        assert p.path_length == 0

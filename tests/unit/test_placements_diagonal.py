"""Unit tests for repro.placements.diagonal."""

import pytest

from repro.placements.analysis import is_uniform
from repro.placements.diagonal import (
    antidiagonal_placement_2d,
    shifted_diagonal_placement,
)
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestShiftedDiagonal:
    def test_equals_linear_with_offset(self):
        torus = Torus(5, 2)
        assert shifted_diagonal_placement(torus, 2) == linear_placement(
            torus, offset=2
        )

    def test_2d_shape(self):
        torus = Torus(4, 2)
        p = shifted_diagonal_placement(torus, 1)
        for i, j in p.coords().tolist():
            assert (i + j) % 4 == 1

    def test_3d_size(self):
        # Blaum et al.'s k^2 processors on T_k^3
        assert len(shifted_diagonal_placement(Torus(4, 3))) == 16

    def test_name(self):
        assert "shifted-diagonal" in shifted_diagonal_placement(Torus(4, 2)).name


class TestAntidiagonal:
    def test_membership(self):
        torus = Torus(5, 2)
        p = antidiagonal_placement_2d(torus, 2)
        for i, j in p.coords().tolist():
            assert j == (i + 2) % 5

    def test_size(self):
        assert len(antidiagonal_placement_2d(Torus(6, 2))) == 6

    def test_uniform(self):
        assert is_uniform(antidiagonal_placement_2d(Torus(5, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            antidiagonal_placement_2d(Torus(4, 3))

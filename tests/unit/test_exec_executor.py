"""Tests for repro.exec.executor — retries, deadlines, fallback, reports.

Pool-driving tests use tiny workloads and aggressive (but fully
deterministic) policies so the whole file stays fast on a single-core
runner; the heavyweight end-to-end drills live in
``tests/integration/test_exec_resilience.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    ChaosPolicy,
    CheckpointJournal,
    ExecPolicy,
    ExecTask,
    ExecutionReport,
    ResilientExecutor,
)

#: fast deterministic policy for pool tests (no chaos).
FAST = ExecPolicy(
    retries=2,
    backoff_base=0.001,
    backoff_max=0.01,
    heartbeat=0.02,
)

_INIT_OFFSET = 0


def _square(x):
    return x * x


def _offset_square(x):
    return x * x + _INIT_OFFSET


def _set_offset(value):
    global _INIT_OFFSET
    _INIT_OFFSET = value


def _boom(x):
    raise ValueError(f"deterministic failure for {x}")


def _tasks(n):
    return [ExecTask(f"t-{i}", i) for i in range(n)]


class TestInlinePath:
    def test_jobs_one_runs_inline(self):
        executor = ResilientExecutor(_square, jobs=1, policy=FAST)
        tasks = _tasks(5)
        outcome = executor.run(tasks)
        assert outcome.in_task_order(tasks) == [0, 1, 4, 9, 16]
        assert outcome.report.completed == 5
        assert outcome.report.attempts == 0  # no pool attempts charged

    def test_initializer_runs_in_parent(self):
        executor = ResilientExecutor(
            _offset_square,
            jobs=1,
            initializer=_set_offset,
            initargs=(100,),
            policy=FAST,
        )
        try:
            outcome = executor.run(_tasks(3))
            assert outcome.results == {"t-0": 100, "t-1": 101, "t-2": 104}
        finally:
            _set_offset(0)

    def test_worker_error_propagates_unchanged(self):
        executor = ResilientExecutor(_boom, jobs=1, policy=FAST)
        with pytest.raises(ValueError, match="deterministic failure"):
            executor.run(_tasks(1))

    def test_inline_path_ignores_chaos(self):
        # chaos is a pool-only concern: jobs=1 must never inject faults.
        policy = FAST.with_chaos(ChaosPolicy(seed=1, crash_fraction=1.0))
        executor = ResilientExecutor(_square, jobs=1, policy=policy)
        assert executor.run(_tasks(3)).results["t-2"] == 4


class TestValidation:
    def test_duplicate_task_ids_rejected(self):
        executor = ResilientExecutor(_square, jobs=1, policy=FAST)
        with pytest.raises(ExecutionError, match="duplicate task id"):
            executor.run([ExecTask("t-0", 1), ExecTask("t-0", 2)])

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExecutionError, match="jobs must be >= 1"):
            ResilientExecutor(_square, jobs=0)

    def test_empty_workload(self):
        outcome = ResilientExecutor(_square, jobs=1, policy=FAST).run([])
        assert outcome.results == {}
        assert outcome.report.tasks == 0


class TestBackoffSchedule:
    def test_deterministic_across_instances(self):
        a = ResilientExecutor(_square, jobs=1, policy=FAST)
        b = ResilientExecutor(_square, jobs=1, policy=FAST)
        assert a.backoff_schedule("t-0") == b.backoff_schedule("t-0")

    def test_jitter_bounds_and_growth(self):
        policy = ExecPolicy(
            retries=4, backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0
        )
        executor = ResilientExecutor(_square, jobs=1, policy=policy)
        schedule = executor.backoff_schedule("t-0")
        assert len(schedule) == 4
        for attempt, delay in enumerate(schedule, start=1):
            raw = min(10.0, 0.1 * 2.0 ** (attempt - 1))
            assert 0.5 * raw <= delay < raw

    def test_cap_applies(self):
        policy = ExecPolicy(
            retries=6, backoff_base=1.0, backoff_factor=10.0, backoff_max=2.0
        )
        executor = ResilientExecutor(_square, jobs=1, policy=policy)
        assert all(d <= 2.0 for d in executor.backoff_schedule("t-0"))

    def test_schedule_varies_by_task_and_seed(self):
        executor = ResilientExecutor(_square, jobs=1, policy=FAST)
        assert executor.backoff_schedule("t-0") != executor.backoff_schedule(
            "t-1"
        )
        import dataclasses

        reseeded = ResilientExecutor(
            _square, jobs=1, policy=dataclasses.replace(FAST, seed=99)
        )
        assert executor.backoff_schedule("t-0") != reseeded.backoff_schedule(
            "t-0"
        )


class TestJournalIntegration:
    def test_resumed_tasks_skip_execution(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fingerprint = {"workload": "unit"}
        with CheckpointJournal(path, fingerprint=fingerprint) as j:
            j.record("t-1", 999)  # pretend a prior run finished t-1
        journal = CheckpointJournal(path, fingerprint=fingerprint, resume=True)
        try:
            executor = ResilientExecutor(
                _square, jobs=1, policy=FAST, journal=journal
            )
            outcome = executor.run(_tasks(3))
        finally:
            journal.close()
        assert outcome.results == {"t-0": 0, "t-1": 999, "t-2": 4}
        assert outcome.report.resumed == 1
        assert [e.kind for e in outcome.report.events].count("resume") == 1

    def test_completions_are_journaled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fingerprint = {"workload": "unit"}
        journal = CheckpointJournal(path, fingerprint=fingerprint)
        try:
            ResilientExecutor(
                _square, jobs=1, policy=FAST, journal=journal
            ).run(_tasks(3))
        finally:
            journal.close()
        with CheckpointJournal(
            path, fingerprint=fingerprint, resume=True
        ) as j:
            assert j.completed == {"t-0": 0, "t-1": 1, "t-2": 4}


class TestPoolPath:
    def test_pool_results_match_inline(self):
        tasks = _tasks(6)
        pool = ResilientExecutor(_square, jobs=2, policy=FAST).run(tasks)
        inline = ResilientExecutor(_square, jobs=1, policy=FAST).run(tasks)
        assert pool.results == inline.results
        assert pool.in_task_order(tasks) == inline.in_task_order(tasks)
        assert pool.report.attempts == 6
        assert not pool.report.degraded

    def test_pool_initializer_reaches_workers(self):
        executor = ResilientExecutor(
            _offset_square,
            jobs=2,
            initializer=_set_offset,
            initargs=(1000,),
            policy=FAST,
        )
        outcome = executor.run(_tasks(4))
        assert outcome.results["t-3"] == 1009

    def test_deterministic_worker_error_propagates(self):
        executor = ResilientExecutor(_boom, jobs=2, policy=FAST)
        with pytest.raises(ValueError, match="deterministic failure"):
            executor.run(_tasks(2))


class TestCrashRecovery:
    def test_all_crashes_degrade_to_serial(self):
        # crash_fraction=1.0: every pool attempt kills its worker, so every
        # task must exhaust its budget and complete on the serial fallback
        # (where chaos never runs) with the exact fault-free answers.
        policy = ExecPolicy(
            retries=1,
            backoff_base=0.001,
            backoff_max=0.005,
            heartbeat=0.02,
            chaos=ChaosPolicy(seed=11, crash_fraction=1.0),
        )
        tasks = _tasks(3)
        outcome = ResilientExecutor(_square, jobs=2, policy=policy).run(tasks)
        assert outcome.in_task_order(tasks) == [0, 1, 4]
        report = outcome.report
        assert report.fallbacks == 3
        assert report.broken_pools >= 1
        assert report.degraded
        assert set(report.downgraded_task_ids) == {"t-0", "t-1", "t-2"}

    def test_fallback_disabled_raises(self):
        policy = ExecPolicy(
            retries=0,
            backoff_base=0.001,
            heartbeat=0.02,
            fallback_serial=False,
            chaos=ChaosPolicy(seed=11, crash_fraction=1.0),
        )
        executor = ResilientExecutor(_square, jobs=2, policy=policy)
        with pytest.raises(ExecutionError, match="serial fallback is disabled"):
            executor.run(_tasks(2))

    def test_partial_crashes_retry_to_success(self):
        # 0.5 crash fraction re-rolls per attempt: with a generous budget
        # every task eventually lands a clean attempt (or falls back), and
        # the results must still be exact.
        policy = ExecPolicy(
            retries=4,
            backoff_base=0.001,
            backoff_max=0.005,
            heartbeat=0.02,
            chaos=ChaosPolicy(seed=5, crash_fraction=0.5),
        )
        tasks = _tasks(6)
        outcome = ResilientExecutor(_square, jobs=2, policy=policy).run(tasks)
        assert outcome.in_task_order(tasks) == [0, 1, 4, 9, 16, 25]
        assert outcome.report.attempts >= 6


class TestDeadlineWatchdog:
    def test_hangs_are_timed_out_and_recovered(self):
        policy = ExecPolicy(
            retries=1,
            task_timeout=0.2,
            backoff_base=0.001,
            backoff_max=0.005,
            heartbeat=0.02,
            chaos=ChaosPolicy(seed=7, hang_fraction=1.0, hang_seconds=60.0),
        )
        tasks = _tasks(2)
        outcome = ResilientExecutor(_square, jobs=2, policy=policy).run(tasks)
        assert outcome.in_task_order(tasks) == [0, 1]
        report = outcome.report
        assert report.timeouts >= 2
        assert report.pool_rebuilds >= 1
        assert report.fallbacks == 2
        assert any(
            "TaskTimeoutError" in e.detail
            for e in report.events
            if e.kind == "timeout"
        )

    def test_no_timeout_without_deadline(self):
        policy = ExecPolicy(
            retries=1,
            task_timeout=None,
            heartbeat=0.02,
            chaos=ChaosPolicy(seed=7, slow_fraction=1.0, slow_seconds=0.05),
        )
        outcome = ResilientExecutor(_square, jobs=2, policy=policy).run(
            _tasks(2)
        )
        assert outcome.report.timeouts == 0
        assert outcome.results == {"t-0": 0, "t-1": 1}


class TestReportShape:
    def test_summary_and_to_dict(self):
        outcome = ResilientExecutor(_square, jobs=1, policy=FAST).run(
            _tasks(2)
        )
        report = outcome.report
        assert "2/2 tasks" in report.summary()
        data = report.to_dict()
        assert data["completed"] == 2 and data["tasks"] == 2
        assert isinstance(data["events"], list)

    def test_repr(self):
        executor = ResilientExecutor(_square, jobs=3, policy=FAST, label="x")
        assert "label='x'" in repr(executor) and "jobs=3" in repr(executor)


class TestReportClocks:
    def test_durations_are_monotonic_not_wall_clock(self):
        import time as _time

        report = ExecutionReport(label="clocks", tasks=0)
        _time.sleep(0.01)
        report.finish()
        assert report.elapsed_seconds >= 0.01
        # informational wall-clock stamp rides along but never times
        assert report.started_unix > 1e9
        assert report.to_dict()["started_at_unix"] == report.started_unix

    def test_run_finishes_the_report(self):
        outcome = ResilientExecutor(_square, jobs=1, policy=FAST).run(
            _tasks(2)
        )
        assert outcome.report.elapsed_seconds > 0.0
        assert outcome.report.summary().endswith("s")

"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import resolve_rng, spawn_rngs


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = resolve_rng(42).integers(0, 1000, size=10)
        b = resolve_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(
            a.integers(0, 10**9, size=8), b.integers(0, 10**9, size=8)
        )

    def test_reproducible(self):
        xs = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        ys = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert xs == ys

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_ok(self):
        assert spawn_rngs(0, 0) == []

"""Unit tests for repro.placements.analysis."""

from repro.placements.analysis import (
    is_uniform,
    layer_counts,
    placement_summary,
    uniform_dimensions,
)
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestLayerCounts:
    def test_linear_placement_flat(self):
        p = linear_placement(Torus(5, 3))
        for dim in range(3):
            assert layer_counts(p, dim).tolist() == [5] * 5

    def test_single_node(self, torus_4_2):
        p = Placement(torus_4_2, [torus_4_2.node_id((2, 1))])
        assert layer_counts(p, 0).tolist() == [0, 0, 1, 0]
        assert layer_counts(p, 1).tolist() == [0, 1, 0, 0]


class TestUniformity:
    def test_linear_is_uniform(self):
        assert is_uniform(linear_placement(Torus(4, 2)))

    def test_single_node_not_uniform(self, torus_4_2):
        assert not is_uniform(Placement(torus_4_2, [0]))

    def test_uniform_dimensions_partial(self, torus_4_2):
        # one processor per column, all in row 0: uniform along dim 1 only
        ids = torus_4_2.node_ids([(0, j) for j in range(4)])
        p = Placement(torus_4_2, ids)
        assert uniform_dimensions(p) == [1]


class TestSummary:
    def test_fields(self):
        torus = Torus(6, 3)
        p = linear_placement(torus)
        s = placement_summary(p)
        assert s.size == 36
        assert s.uniform
        assert s.uniform_dims == (0, 1, 2)
        assert s.density == 36 / 216
        assert s.min_layer_count == s.max_layer_count == 6

    def test_as_row(self):
        s = placement_summary(linear_placement(Torus(4, 2)))
        row = s.as_row()
        assert row[0] == "linear(c=0)"
        assert row[3] == 4

"""Unit tests for repro.core.scaling."""

import numpy as np
import pytest

from repro.core.scaling import fit_power_law, scaling_rows
from repro.placements.fully import FullyPopulatedFamily
from repro.placements.linear import LinearPlacementFamily
from repro.routing.odr import OrderedDimensionalRouting


class TestFitPowerLaw:
    def test_exact_power(self):
        xs = np.array([1, 2, 4, 8], dtype=float)
        fit = fit_power_law(xs, 3 * xs**2)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear(self):
        xs = [2.0, 5.0, 9.0]
        fit = fit_power_law(xs, [4.0, 10.0, 18.0])
        assert fit.exponent == pytest.approx(1.0)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 0.0], [1.0, 1.0])


class TestScalingRows:
    def test_linear_rows(self):
        rows = scaling_rows(
            LinearPlacementFamily(), OrderedDimensionalRouting, 2, [4, 6]
        )
        assert [r[0] for r in rows] == [4, 6]
        assert [r[1] for r in rows] == [4, 6]
        assert all(r[3] == pytest.approx(0.5) for r in rows)

    def test_full_rows_superlinear(self):
        rows = scaling_rows(
            FullyPopulatedFamily(), OrderedDimensionalRouting, 2, [4, 8]
        )
        fit = fit_power_law([r[1] for r in rows], [r[2] for r in rows])
        assert fit.exponent > 1.2

"""Unit tests for repro.load.distribution."""

import numpy as np
import pytest

from repro.load.distribution import (
    jain_fairness,
    load_distribution,
    load_histogram,
    peak_to_mean,
    per_dimension_max,
    per_dimension_total,
    per_sign_max,
)
from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.load import formulas
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestPerDimension:
    def test_shapes(self):
        torus = Torus(4, 3)
        loads = odr_edge_loads(linear_placement(torus))
        assert per_dimension_max(torus, loads).shape == (3,)
        assert per_dimension_total(torus, loads).shape == (3,)

    def test_totals_sum_to_total(self):
        torus = Torus(6, 2)
        loads = odr_edge_loads(linear_placement(torus))
        assert per_dimension_total(torus, loads).sum() == pytest.approx(loads.sum())

    def test_boundary_vs_interior_exp7_structure(self):
        torus = Torus(8, 3)
        dist = load_distribution(torus, odr_edge_loads(linear_placement(torus)))
        assert dist.boundary_max == formulas.odr_linear_emax_boundary(8, 3)
        assert dist.interior_max == formulas.odr_linear_emax_interior(8, 3)
        assert dist.global_max == dist.boundary_max

    def test_d2_interior_is_zero(self):
        torus = Torus(6, 2)
        dist = load_distribution(torus, odr_edge_loads(linear_placement(torus)))
        assert dist.interior_max == 0.0


class TestSignsAndFairness:
    def test_per_sign_symmetric_for_odd_k(self):
        torus = Torus(5, 2)
        loads = odr_edge_loads(linear_placement(torus))
        plus, minus = per_sign_max(torus, loads)
        assert plus == minus  # odd k: no tie bias

    def test_plus_bias_for_even_k(self):
        # canonical + tie-break loads the + direction more
        torus = Torus(4, 2)
        loads = odr_edge_loads(linear_placement(torus))
        plus, minus = per_sign_max(torus, loads)
        assert plus >= minus

    def test_udr_fairer_than_odr(self):
        torus = Torus(6, 2)
        p = linear_placement(torus)
        assert jain_fairness(udr_edge_loads(p)) >= jain_fairness(odr_edge_loads(p))

    def test_peak_to_mean_uniform_vector(self):
        assert peak_to_mean(np.array([2.0, 2.0, 0.0])) == 1.0

    def test_peak_to_mean_empty(self):
        assert peak_to_mean(np.zeros(4)) == 0.0

    def test_jain_bounds(self):
        assert jain_fairness(np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert 0.0 < jain_fairness(np.array([1.0, 9.0])) < 1.0
        assert jain_fairness(np.zeros(3)) == 1.0


class TestHistogram:
    def test_counts_sum(self):
        loads = np.array([0.0, 1.0, 2.0, 3.0])
        counts, edges = load_histogram(loads, bins=4)
        assert counts.sum() == 4
        assert edges.size == 5

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            load_histogram(np.array([1.0]), bins=0)


class TestValidation:
    def test_wrong_shape_rejected(self):
        torus = Torus(4, 2)
        with pytest.raises(ValueError):
            load_distribution(torus, np.zeros(3))


class TestEdgeMask:
    def test_masked_views_match_manual_selection(self):
        torus = Torus(4, 2)
        loads = odr_edge_loads(linear_placement(torus))
        rng = np.random.default_rng(3)
        mask = rng.random(torus.num_edges) < 0.5
        masked_loads = np.where(mask, loads, 0.0)
        assert np.array_equal(
            per_dimension_max(torus, loads, edge_mask=mask),
            per_dimension_max(torus, masked_loads),
        )
        assert per_dimension_total(torus, loads, edge_mask=mask).sum() == (
            pytest.approx(loads[mask].sum())
        )

    def test_empty_selection_returns_zero(self):
        # regression: an edge_mask wiping out a whole dimension (or every
        # edge) must yield 0.0 per the module convention, never raise the
        # numpy "zero-size array reduction" error.
        torus = Torus(4, 2)
        loads = odr_edge_loads(linear_placement(torus))
        none = np.zeros(torus.num_edges, dtype=bool)
        assert np.array_equal(
            per_dimension_max(torus, loads, edge_mask=none), np.zeros(2)
        )
        assert np.array_equal(
            per_dimension_total(torus, loads, edge_mask=none), np.zeros(2)
        )
        assert per_sign_max(torus, loads, edge_mask=none) == (0.0, 0.0)

    def test_one_dimension_masked_out(self):
        torus = Torus(4, 2)
        loads = odr_edge_loads(linear_placement(torus))
        dims = np.repeat(
            np.arange(torus.num_edges) // 2 % torus.d, 1
        )
        keep_dim0 = dims == 0
        per_dim = per_dimension_max(torus, loads, edge_mask=keep_dim0)
        assert per_dim[1] == 0.0
        assert per_dim[0] == loads[keep_dim0].max(initial=0.0)

    def test_bad_mask_shape_rejected(self):
        torus = Torus(4, 2)
        loads = odr_edge_loads(linear_placement(torus))
        with pytest.raises(ValueError):
            per_dimension_max(torus, loads, edge_mask=np.ones(3, dtype=bool))

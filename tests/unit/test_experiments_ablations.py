"""Unit tests for EXP-21 … EXP-23 internals."""

from repro.experiments import get_experiment


class TestTieAblation:
    def test_quick_passes(self):
        result = get_experiment("EXP-21").run(quick=True)
        assert result.passed

    def test_odd_k_control_present(self):
        result = get_experiment("EXP-21").run(quick=True)
        ks = result.tables[0].column("k")
        assert 5 in ks  # the odd-radix control row

    def test_unrestricted_never_higher(self):
        result = get_experiment("EXP-21").run(quick=True)
        col = result.tables[0].column("unrestricted <= restricted")
        assert all(col)


class TestGlobalOptimality:
    def test_quick_passes(self):
        result = get_experiment("EXP-22").run(quick=True)
        assert result.passed

    def test_reports_placement_counts(self):
        result = get_experiment("EXP-22").run(quick=True)
        counts = result.tables[0].column("placements evaluated")
        assert counts[0] == 84  # C(9, 3)

    def test_exhaustive_note_present(self):
        result = get_experiment("EXP-22").run(quick=True)
        assert any("exhaustively" in f for f in result.findings)

    def test_certifies_with_zero_full_evaluations(self):
        result = get_experiment("EXP-22").run(quick=True)
        assert any(
            "zero full placement evaluations" in f for f in result.findings
        )

    def test_cross_checked_against_brute_force(self):
        result = get_experiment("EXP-22").run(quick=True)
        assert any("brute-force catalog" in f for f in result.findings)

    def test_linear_optimal_column_reported(self):
        result = get_experiment("EXP-22").run(quick=True)
        assert result.tables[0].column("linear optimal") == [True]


class TestMixedRadix:
    def test_quick_passes(self):
        result = get_experiment("EXP-23").run(quick=True)
        assert result.passed

    def test_shapes_reported(self):
        result = get_experiment("EXP-23").run(quick=True)
        shapes = result.tables[0].column("shape")
        assert "4x8" in shapes

    def test_square_consistency_check_present(self):
        result = get_experiment("EXP-23").run(quick=True)
        assert any("edge-for-edge" in f for f in result.findings)

    def test_lcm_flat_ratio_check_present(self):
        result = get_experiment("EXP-23").run(quick=True)
        assert any("lcm construction" in f for f in result.findings)

"""Golden-output regression tests for user-facing renderings.

These pin the exact text of small, stable outputs (the Fig. 1 grid, a tiny
table) so accidental formatting regressions surface immediately.
"""

from repro.util.tables import Table
from repro.viz.ascii_art import render_figure1

FIGURE1_GRID = """\
[P]===( )---( )
 #     |     #
( )---( )===[P]
 |     #     #
( )===[P]===( )"""


class TestFigure1Golden:
    def test_grid_exact(self):
        text = render_figure1()
        assert FIGURE1_GRID in text

    def test_wraparound_listing_exact(self):
        text = render_figure1()
        for line in (
            "row 0: wraparound (0,2) = (0,0)",
            "row 1: wraparound (1,2) = (1,0)",
            "col 0: wraparound (2,0) = (0,0)",
            "col 1: wraparound (2,1) = (0,1)",
        ):
            assert line in text

    def test_header_counts(self):
        text = render_figure1()
        assert "highlighted: 24 directed links" in text


class TestTableGolden:
    def test_exact_rendering(self):
        t = Table(["k", "E_max"], title="demo")
        t.add_row([4, 2.0])
        t.add_row([16, 0.5])
        assert t.render() == (
            "### demo\n"
            "\n"
            "| k  | E_max |\n"
            "|----|-------|\n"
            "| 4  | 2     |\n"
            "| 16 | 0.5   |"
        )

    def test_float_format_override(self):
        t = Table(["x"], float_fmt="{:.2f}")
        t.add_row([1 / 3])
        assert "| 0.33 |" in t.render()

"""Meta-tests: the public API is importable and documented.

These enforce the documentation deliverable mechanically: every name
exported through an ``__all__`` must resolve, and every public module,
class, and function must carry a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.torus",
    "repro.placements",
    "repro.routing",
    "repro.load",
    "repro.load.engine",
    "repro.exec",
    "repro.bisection",
    "repro.sim",
    "repro.schedule",
    "repro.core",
    "repro.experiments",
    "repro.viz",
    "repro.mixedradix",
]


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{pkg_name}."):
            yield importlib.import_module(info.name)


ALL_MODULES = sorted({m.__name__ for m in _iter_modules()})


class TestExports:
    @pytest.mark.parametrize("mod_name", ALL_MODULES)
    def test_all_names_resolve(self, mod_name):
        mod = importlib.import_module(mod_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{mod_name}.__all__ lists missing {name}"

    @pytest.mark.parametrize("mod_name", ALL_MODULES)
    def test_module_docstring(self, mod_name):
        mod = importlib.import_module(mod_name)
        assert mod.__doc__ and mod.__doc__.strip(), f"{mod_name} lacks a docstring"

    @pytest.mark.parametrize("mod_name", ALL_MODULES)
    def test_public_items_documented(self, mod_name):
        mod = importlib.import_module(mod_name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{mod_name}.{name} lacks a docstring"
                )

    def test_top_level_api(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_matches_metadata(self):
        assert repro.__version__ == "1.0.0"

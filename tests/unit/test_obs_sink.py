"""Tests for repro.obs.sink — JSONL persistence and the tolerant reader."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.obs import JsonlTraceSink, TRACE_VERSION, Tracer, read_trace


class TestJsonlTraceSink:
    def test_header_is_the_first_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, label="unit"):
            pass
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["version"] == TRACE_VERSION
        assert header["label"] == "unit"

    def test_round_trip_preserves_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"kind": "event", "name": "a", "attributes": {"x": 1}})
            sink.emit({"kind": "span", "name": "b", "duration_seconds": 0.5})
        records = read_trace(path)
        assert [r["kind"] for r in records] == ["header", "event", "span"]
        assert records[1]["attributes"] == {"x": 1}
        assert records[2]["duration_seconds"] == 0.5

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        JsonlTraceSink(path).close()
        assert path.exists()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # close is twice-safe
        with pytest.raises(TraceError, match="closed"):
            sink.emit({"kind": "event", "name": "late"})

    def test_tracer_integration_ends_with_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlTraceSink(path, label="run"), label="run")
        with tracer.span("work"):
            tracer.metrics.counter("n").add(2)
        tracer.finish()
        records = read_trace(path)
        assert records[-1]["kind"] == "metrics"
        assert records[-1]["values"]["counters"] == {"n": 2.0}


class TestReadTrace:
    def _write_trace(self, tmp_path, extra_lines=()):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"kind": "event", "name": "a"})
            sink.emit({"kind": "event", "name": "b"})
        if extra_lines:
            with path.open("a", encoding="utf-8") as handle:
                handle.write("\n".join(extra_lines))
        return path

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            read_trace(tmp_path / "nope.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span", "name": "orphan"}\n')
        with pytest.raises(TraceError, match="header"):
            read_trace(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": TRACE_VERSION + 1}) + "\n"
        )
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = self._write_trace(
            tmp_path, extra_lines=['{"kind": "span", "name": "torn', ""]
        )
        records = read_trace(path)
        assert [r.get("name") for r in records[1:]] == ["a", "b"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = self._write_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = '{"kind": "event", "name": "mangled'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="corrupt mid-file"):
            read_trace(path)

    def test_non_object_interior_line_raises(self, tmp_path):
        path = self._write_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "[1, 2, 3]"  # valid JSON, but not a record object
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="corrupt mid-file"):
            read_trace(path)


class TestReadTraceDirectoryAndGlob:
    def _write(self, path, label):
        with JsonlTraceSink(path, label=label) as sink:
            sink.emit({"kind": "event", "name": f"from-{label}"})
        return path

    def test_directory_concatenates_sorted_files(self, tmp_path):
        # written out of name order; read back deterministically sorted
        self._write(tmp_path / "worker-b.jsonl", "b")
        self._write(tmp_path / "worker-a.jsonl", "a")
        records = read_trace(tmp_path)
        labels = [
            r["label"] for r in records if r.get("kind") == "header"
        ]
        assert labels == ["a", "b"]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no .jsonl files"):
            read_trace(tmp_path)

    def test_glob_pattern_concatenates_sorted_matches(self, tmp_path):
        self._write(tmp_path / "t2.jsonl", "two")
        self._write(tmp_path / "t1.jsonl", "one")
        self._write(tmp_path / "other.log", "skip")
        records = read_trace(tmp_path / "t*.jsonl")
        labels = [
            r["label"] for r in records if r.get("kind") == "header"
        ]
        assert labels == ["one", "two"]

    def test_glob_with_no_matches_raises(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace(tmp_path / "nothing-*.jsonl")

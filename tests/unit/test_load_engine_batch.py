"""Tests for batched multi-placement evaluation — ``edge_loads_many``.

The facade contract: row ``b`` of the batch is *bit*-identical to a
sequential ``edge_loads(placements[b], ...)`` call, for every backend,
whatever mix of coset and general-regime placements the batch holds, and
across process boundaries when workers warm their plan caches through
:func:`repro.load.plancache.warm_worker_plan_cache`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EngineError
from repro.exec import ExecPolicy, ExecTask, ResilientExecutor
from repro.load.engine import LoadEngine
from repro.load.plancache import PlanCache, using_plan_cache, warm_worker_plan_cache
from repro.obs import Tracer, using_tracer
from repro.placements.base import Placement
from repro.placements.fully import single_subtorus_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus

K, D = 5, 2


def _mixed_batch(torus):
    """Coset placements (linear), general regime (random), subtorus."""
    return [
        linear_placement(torus),
        linear_placement(torus, offset=1),
        linear_placement(torus, coefficients=[1, 2]),
        random_placement(torus, size=torus.k, seed=7),
        random_placement(torus, size=torus.k + 2, seed=11),
        single_subtorus_placement(torus),
    ]


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["fft", "displacement", "reference"])
    def test_batched_rows_match_sequential(self, backend):
        torus = Torus(K, D)
        placements = _mixed_batch(torus)
        routing = OrderedDimensionalRouting(D)
        with using_plan_cache(PlanCache()):
            engine = LoadEngine(backend)
            batched = engine.edge_loads_many(placements, routing)
            rows = [engine.edge_loads(p, routing) for p in placements]
        assert batched.shape == (len(placements), torus.num_edges)
        assert np.array_equal(batched, np.stack(rows))

    def test_udr_batch_matches_sequential(self):
        torus = Torus(4, 3)
        placements = [
            linear_placement(torus),
            random_placement(torus, size=6, seed=3),
        ]
        routing = UnorderedDimensionalRouting()
        with using_plan_cache(PlanCache()):
            engine = LoadEngine("fft")
            batched = engine.edge_loads_many(placements, routing)
            rows = [engine.edge_loads(p, routing) for p in placements]
        assert np.array_equal(batched, np.stack(rows))

    def test_chunking_does_not_change_the_result(self):
        torus = Torus(K, D)
        placements = _mixed_batch(torus)
        routing = OrderedDimensionalRouting(D)
        with using_plan_cache(PlanCache()):
            engine = LoadEngine("fft")
            whole = engine.edge_loads_many(placements, routing)
            chunked = engine.edge_loads_many(placements, routing, batch_size=2)
        assert np.array_equal(whole, chunked)

    def test_emax_many_matches_per_placement_emax(self):
        torus = Torus(K, D)
        placements = _mixed_batch(torus)
        routing = OrderedDimensionalRouting(D)
        with using_plan_cache(PlanCache()):
            engine = LoadEngine("fft")
            batched = engine.emax_many(placements, routing)
            single = [engine.emax(p, routing) for p in placements]
        assert batched.dtype == np.float64
        assert batched.tolist() == single

    def test_single_placement_batch(self):
        torus = Torus(K, D)
        placement = linear_placement(torus)
        routing = OrderedDimensionalRouting(D)
        engine = LoadEngine("fft")
        batched = engine.edge_loads_many([placement], routing)
        assert np.array_equal(batched[0], engine.edge_loads(placement, routing))


class TestValidation:
    def test_empty_batch_raises(self):
        with pytest.raises(EngineError, match="at least one placement"):
            LoadEngine("fft").edge_loads_many([], OrderedDimensionalRouting(D))

    def test_mixed_torus_batch_raises(self):
        placements = [
            linear_placement(Torus(4, 2)),
            linear_placement(Torus(5, 2)),
        ]
        with pytest.raises(EngineError, match="one torus"):
            LoadEngine("fft").edge_loads_many(
                placements, OrderedDimensionalRouting(2)
            )

    def test_non_positive_batch_size_raises(self):
        placements = [linear_placement(Torus(4, 2))]
        with pytest.raises(EngineError, match="batch_size"):
            LoadEngine("fft").edge_loads_many(
                placements, OrderedDimensionalRouting(2), batch_size=0
            )


class TestObservability:
    def test_batch_metrics_land_on_the_tracer(self):
        torus = Torus(K, D)
        placements = _mixed_batch(torus)
        tracer = Tracer(label="batch-test")
        with using_tracer(tracer), using_plan_cache(PlanCache()):
            LoadEngine("fft").edge_loads_many(
                placements, OrderedDimensionalRouting(D), batch_size=4
            )
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["engine.batched_placements"] == 6
        hist = snapshot["histograms"]["engine.batch_size"]
        assert hist["count"] == 2  # blocks of 4 + 2
        assert hist["total"] == 6
        assert snapshot["counters"]["plancache.misses"] == 1


# ------------------------------------------------- cross-process determinism

_POOL_K, _POOL_D = 4, 2


def _pool_edge_loads(node_ids):
    """Worker-side evaluation against the worker's warmed plan cache."""
    torus = Torus(_POOL_K, _POOL_D)
    routing = OrderedDimensionalRouting(_POOL_D)
    placement = Placement(torus, list(node_ids), name="pool")
    return LoadEngine("fft").edge_loads(placement, routing).tobytes()


class TestCrossProcessDeterminism:
    def test_warmed_workers_reproduce_parent_loads_bitwise(self):
        """Same content address, same bytes — in every worker process."""
        torus = Torus(_POOL_K, _POOL_D)
        routing = OrderedDimensionalRouting(_POOL_D)
        placements = [
            linear_placement(torus),
            linear_placement(torus, offset=2),
            random_placement(torus, size=4, seed=5),
            single_subtorus_placement(torus),
        ]
        with using_plan_cache(PlanCache()):
            parent = LoadEngine("fft").edge_loads_many(placements, routing)
        executor = ResilientExecutor(
            _pool_edge_loads,
            jobs=2,
            initializer=warm_worker_plan_cache,
            initargs=(_POOL_K, _POOL_D, routing),
            policy=ExecPolicy(retries=1),
            label="batch-determinism",
        )
        tasks = [
            ExecTask(f"p-{i}", tuple(int(n) for n in p.node_ids))
            for i, p in enumerate(placements)
        ]
        remote = executor.run(tasks).in_task_order(tasks)
        for row, raw in zip(parent, remote):
            assert row.tobytes() == raw

"""Unit tests for repro.sim.validate."""

import pytest

from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.validate import compare_sim_to_analytic
from repro.torus.topology import Torus


class TestValidation:
    def test_odr_exact(self):
        p = linear_placement(Torus(5, 2))
        rep = compare_sim_to_analytic(
            p, OrderedDimensionalRouting(2), odr_edge_loads(p), seed=0
        )
        assert rep.exact_match
        assert rep.max_abs_error == 0.0
        assert rep.sim_emax == rep.analytic_emax

    def test_udr_totals_conserved(self):
        p = linear_placement(Torus(4, 2))
        rep = compare_sim_to_analytic(
            p, UnorderedDimensionalRouting(), udr_edge_loads(p), rounds=5, seed=0
        )
        assert rep.total_sim == pytest.approx(rep.total_analytic)
        assert rep.rounds == 5

    def test_udr_error_shrinks_with_rounds(self):
        p = linear_placement(Torus(4, 2))
        udr = UnorderedDimensionalRouting()
        analytic = udr_edge_loads(p)
        few = compare_sim_to_analytic(p, udr, analytic, rounds=2, seed=1)
        many = compare_sim_to_analytic(p, udr, analytic, rounds=100, seed=1)
        assert many.max_abs_error <= few.max_abs_error

"""Unit tests for the extension experiments (EXP-14 … EXP-20 internals)."""


from repro.experiments import get_experiment


class TestSymmetryExperiment:
    def test_quick_passes_with_tables(self):
        result = get_experiment("EXP-14").run(quick=True)
        assert result.passed
        assert len(result.tables) == 1
        assert len(result.tables[0]) >= 4  # base + offsets + coeff variants

    def test_structural_check_present(self):
        result = get_experiment("EXP-14").run(quick=True)
        assert any("translation-equivalent" in f for f in result.findings)


class TestSingleDimUniformity:
    def test_quick_passes(self):
        result = get_experiment("EXP-15").run(quick=True)
        assert result.passed
        assert any("4k^(d-1)" in f for f in result.findings)

    def test_notes_random_contrast(self):
        result = get_experiment("EXP-15").run(quick=True)
        assert any("fully random" in f for f in result.findings)


class TestLeeCodes:
    def test_quick_passes(self):
        result = get_experiment("EXP-16").run(quick=True)
        assert result.passed

    def test_table_has_coverage_columns(self):
        result = get_experiment("EXP-16").run(quick=True)
        assert "cover radius" in result.tables[0].headers


class TestTrafficPatterns:
    def test_quick_passes(self):
        result = get_experiment("EXP-17").run(quick=True)
        assert result.passed

    def test_three_patterns_reported(self):
        result = get_experiment("EXP-17").run(quick=True)
        patterns = result.tables[0].column("traffic")
        assert patterns == ["complete exchange", "permutation", "hotspot"]


class TestWormholeExperiment:
    def test_quick_passes(self):
        result = get_experiment("EXP-18").run(quick=True)
        assert result.passed

    def test_both_placements_reported(self):
        result = get_experiment("EXP-18").run(quick=True)
        names = result.tables[0].column("placement")
        assert names == ["linear", "fully populated"]


class TestSearchExperiment:
    def test_quick_passes(self):
        result = get_experiment("EXP-19").run(quick=True)
        assert result.passed

    def test_never_beats_linear_reported(self):
        result = get_experiment("EXP-19").run(quick=True)
        beats = result.tables[0].column("beats linear")
        assert not any(beats)


class TestScheduleExperiment:
    def test_quick_passes(self):
        result = get_experiment("EXP-20").run(quick=True)
        assert result.passed

    def test_ratios_reasonable(self):
        result = get_experiment("EXP-20").run(quick=True)
        for ratio in result.tables[0].column("ratio"):
            assert 1.0 <= ratio <= 2.0

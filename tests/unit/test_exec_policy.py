"""Tests for repro.exec.policy — the ambient execution policy."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.exec import (
    ChaosPolicy,
    ExecPolicy,
    current_exec_policy,
    set_exec_policy,
    using_exec_policy,
)


@pytest.fixture(autouse=True)
def _reset_policy():
    yield
    set_exec_policy(None)


class TestExecPolicy:
    def test_defaults(self):
        policy = ExecPolicy()
        assert policy.retries == 2
        assert policy.task_timeout is None
        assert policy.fallback_serial is True
        assert policy.chaos is None

    def test_with_chaos_copies(self):
        base = ExecPolicy()
        chaos = ChaosPolicy(seed=3, crash_fraction=0.1)
        chaotic = base.with_chaos(chaos)
        assert chaotic.chaos is chaos and base.chaos is None
        assert chaotic.retries == base.retries

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"task_timeout": 0.0},
            {"task_timeout": -5.0},
            {"backoff_base": -0.1},
            {"backoff_max": -1.0},
            {"backoff_factor": 0.5},
            {"heartbeat": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ExecPolicy(**kwargs)


class TestAmbientPolicy:
    def test_default_is_lazily_built(self):
        set_exec_policy(None)
        assert current_exec_policy() == ExecPolicy()

    def test_set_and_reset(self):
        custom = ExecPolicy(retries=7)
        assert set_exec_policy(custom) is custom
        assert current_exec_policy() is custom
        assert set_exec_policy(None) == ExecPolicy()

    def test_using_installs_and_restores(self):
        before = current_exec_policy()
        custom = ExecPolicy(retries=9)
        with using_exec_policy(custom) as installed:
            assert installed is custom
            assert current_exec_policy() is custom
        assert current_exec_policy() == before

    def test_using_none_is_a_noop(self):
        custom = ExecPolicy(retries=5)
        set_exec_policy(custom)
        with using_exec_policy(None) as installed:
            assert installed is custom
            assert current_exec_policy() is custom

    def test_using_restores_on_error(self):
        before = current_exec_policy()
        with pytest.raises(RuntimeError):
            with using_exec_policy(ExecPolicy(retries=9)):
                raise RuntimeError("boom")
        assert current_exec_policy() == before

"""Unit tests for repro.experiments.reportgen and the CLI --write flag."""

from pathlib import Path

from repro.cli import main
from repro.experiments.reportgen import write_report


class TestWriteReport:
    def test_writes_markdown(self, tmp_path):
        out = write_report(tmp_path / "report.md", quick=True)
        text = Path(out).read_text()
        assert text.startswith("# Reproduction experiment report")
        assert "23/23 experiments passed" in text

    def test_creates_parent_dirs(self, tmp_path):
        out = write_report(tmp_path / "nested" / "dir" / "r.md", quick=True)
        assert Path(out).exists()


class TestCliWrite:
    def test_experiments_write_flag(self, tmp_path, capsys):
        target = tmp_path / "cli_report.md"
        code = main(["experiments", "--quick", "--write", str(target)])
        assert code == 0
        assert target.exists()
        assert "report written to" in capsys.readouterr().out

"""Tests for repro.obs.console — the quiet-aware stderr choke point."""

from __future__ import annotations

import time

import pytest

from repro.obs import console


@pytest.fixture(autouse=True)
def _loud():
    previous = console.set_quiet(False)
    yield
    console.set_quiet(previous)


class TestQuietFlag:
    def test_set_quiet_returns_previous(self):
        assert console.set_quiet(True) is False
        assert console.set_quiet(False) is True

    def test_is_quiet_tracks_state(self):
        assert not console.is_quiet()
        console.set_quiet(True)
        assert console.is_quiet()


class TestEmission:
    def test_info_goes_to_stderr_not_stdout(self, capsys):
        console.info("hello")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "hello" in captured.err

    def test_progress_and_warn_go_to_stderr(self, capsys):
        console.progress("working")
        console.warn("careful")
        captured = capsys.readouterr()
        assert "working" in captured.err and "careful" in captured.err

    def test_quiet_suppresses_info_progress_warn(self, capsys):
        console.set_quiet(True)
        console.info("a")
        console.progress("b")
        console.warn("c")
        assert capsys.readouterr().err == ""

    def test_error_survives_quiet(self, capsys):
        console.set_quiet(True)
        console.error("boom")
        captured = capsys.readouterr()
        assert "boom" in captured.err
        assert captured.out == ""


class TestWallClock:
    def test_wall_clock_is_unix_time(self):
        before = time.time()  # the test suite may read wall clocks freely
        stamp = console.wall_clock()
        after = time.time()
        assert before <= stamp <= after

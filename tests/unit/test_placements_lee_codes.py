"""Unit tests for repro.placements.lee_codes."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.lee_codes import (
    covering_radius,
    is_perfect_dominating,
    lee_sphere_size,
    perfect_lee_placement,
)
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestSphereSize:
    def test_2d_closed_form(self):
        for r in range(0, 5):
            assert lee_sphere_size(r, 2) == 2 * r * r + 2 * r + 1

    def test_radius_zero(self):
        assert lee_sphere_size(0, 3) == 1

    def test_3d_radius_one(self):
        assert lee_sphere_size(1, 3) == 7  # center + 6 neighbours

    def test_1d(self):
        assert lee_sphere_size(3, 1) == 7

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            lee_sphere_size(-1)


class TestPerfectLeePlacement:
    @pytest.mark.parametrize("k,r", [(5, 1), (10, 1), (13, 2), (15, 1)])
    def test_perfect_domination(self, k, r):
        p = perfect_lee_placement(Torus(k, 2), r)
        assert is_perfect_dominating(p, r)
        assert covering_radius(p) == r

    def test_size_law(self):
        p = perfect_lee_placement(Torus(10, 2), 1)
        assert len(p) == 100 // 5

    def test_divisibility_required(self):
        with pytest.raises(InvalidParameterError):
            perfect_lee_placement(Torus(6, 2), 1)

    def test_requires_2d(self):
        with pytest.raises(InvalidParameterError):
            perfect_lee_placement(Torus(5, 3), 1)

    def test_radius_bounds(self):
        with pytest.raises(InvalidParameterError):
            perfect_lee_placement(Torus(5, 2), 0)


class TestCoverageVsLoad:
    def test_linear_placement_covering_radius(self):
        # a k-processor diagonal on T_k^2 has covering radius floor(k/2):
        # the diagonal is distance-regular along itself
        p = linear_placement(Torus(5, 2))
        assert covering_radius(p) == 2

    def test_lee_code_is_sparser_but_covers_tighter(self):
        torus = Torus(10, 2)
        code = perfect_lee_placement(torus, 1)
        diag = linear_placement(torus)
        # code: 20 nodes cover within r=1; diagonal: 10 nodes cover within 5
        assert covering_radius(code) < covering_radius(diag)
        assert len(code) > len(diag)

    def test_not_dominating_with_smaller_radius(self):
        p = perfect_lee_placement(Torus(13, 2), 2)
        assert not is_perfect_dominating(p, 1)

"""Unit tests for repro.routing.cyclic."""

from repro.routing.cyclic import correction_options, corrections, signed_moves


class TestCorrections:
    def test_basic(self):
        assert corrections((0, 0), (2, 4), 5) == [2, -1]

    def test_tie_resolves_plus(self):
        assert corrections((0,), (3,), 6) == [3]

    def test_zero(self):
        assert corrections((1, 2), (1, 2), 5) == [0, 0]

    def test_sum_abs_is_lee(self):
        from repro.util.modular import lee_distance

        for k in (4, 5, 7):
            p, q = (0, 1), (3, 3)
            deltas = corrections(p, q, k)
            assert sum(abs(x) for x in deltas) == lee_distance(p, q, k)


class TestCorrectionOptions:
    def test_no_tie_single_option(self):
        opts = correction_options((0,), (2,), 5)
        assert opts == [(2,)]

    def test_tie_gives_both(self):
        opts = correction_options((0,), (2,), 4)
        assert set(opts[0]) == {2, -2}

    def test_zero_option(self):
        assert correction_options((3,), (3,), 4) == [(0,)]


class TestSignedMoves:
    def test_positive(self):
        assert signed_moves(1, 3) == [(1, 1)] * 3

    def test_negative(self):
        assert signed_moves(0, -2) == [(0, -1)] * 2

    def test_zero(self):
        assert signed_moves(2, 0) == []

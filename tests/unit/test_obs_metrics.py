"""Tests for repro.obs.metrics — instruments, snapshots, ordered merges."""

from __future__ import annotations

import pytest

from repro.exec import ExecPolicy, ExecTask, ResilientExecutor
from repro.obs import NULL_METRICS, Metrics
from repro.obs.metrics import _NULL_INSTRUMENT


class TestCounter:
    def test_accumulates(self):
        counter = Metrics().counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Metrics().counter("c").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Metrics().gauge("g")
        gauge.set(1.0)
        gauge.set(7.0)
        assert gauge.value == 7.0
        assert gauge.updates == 2


class TestHistogram:
    def test_summary_stats(self):
        hist = Metrics().histogram("h")
        for value in (0.5, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 7.5
        assert hist.min == 0.5 and hist.max == 4.0
        assert hist.mean == 2.5

    def test_base2_buckets(self):
        hist = Metrics().histogram("h")
        hist.observe(0.0)  # dedicated zero bucket
        hist.observe(0.75)  # (2^-1, 2^0] -> "0"
        hist.observe(3.0)  # (2, 4]      -> "2"
        hist.observe(4.0)  # (2, 4]      -> "2"
        assert hist.buckets == {"zero": 1, "0": 1, "2": 2}

    def test_empty_mean_is_none(self):
        assert Metrics().histogram("h").mean is None


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.gauge("y") is metrics.gauge("y")
        assert metrics.histogram("z") is metrics.histogram("z")

    def test_snapshot_is_sorted_and_json_compatible(self):
        import json

        metrics = Metrics()
        metrics.counter("b").add(2)
        metrics.counter("a").add(1)
        metrics.gauge("rate").set(10.0)
        metrics.gauge("silent")  # never set: omitted from the snapshot
        metrics.histogram("lat").observe(0.25)
        snap = metrics.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert "silent" not in snap["gauges"]
        json.dumps(snap)  # must be JSON-compatible

    def test_clear_empties_everything(self):
        metrics = Metrics()
        metrics.counter("a").add(1)
        metrics.clear()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        left, right = Metrics(), Metrics()
        for registry, scale in ((left, 1.0), (right, 2.0)):
            registry.counter("n").add(scale)
            registry.gauge("rate").set(scale)
            registry.histogram("lat").observe(scale)
        left.merge(right.snapshot())
        assert left.counter("n").value == 3.0
        assert left.gauge("rate").value == 2.0
        hist = left.histogram("lat")
        assert hist.count == 2 and hist.min == 1.0 and hist.max == 2.0

    def test_merge_into_empty_reproduces_snapshot(self):
        source = Metrics()
        source.counter("c").add(4)
        source.histogram("h").observe(0.0)
        source.histogram("h").observe(9.0)
        target = Metrics()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()


def _observe_payload(payload):
    """Worker: build a private registry, return its snapshot."""
    metrics = Metrics()
    metrics.counter("pairs").add(payload["pairs"])
    metrics.gauge("last_k").set(payload["k"])
    metrics.histogram("seconds").observe(payload["seconds"])
    return metrics.snapshot()


class TestCrossProcessMerge:
    def test_pool_snapshots_merge_deterministically_in_task_order(self):
        """Task-order merge == serial merge, however the pool scheduled it."""
        payloads = [
            {"pairs": 10 * i, "k": i, "seconds": 0.1 * i} for i in range(8)
        ]
        tasks = [
            ExecTask(f"m-{i}", payload) for i, payload in enumerate(payloads)
        ]
        executor = ResilientExecutor(
            _observe_payload,
            jobs=4,
            policy=ExecPolicy(retries=1, heartbeat=0.05),
            label="metrics-merge",
        )
        outcome = executor.run(tasks)

        merged = Metrics()
        for snap in outcome.in_task_order(tasks):
            merged.merge(snap)

        expected = Metrics()
        for payload in payloads:
            expected.merge(_observe_payload(payload))

        # identical snapshots — including the last-write-wins gauge, which
        # is only deterministic because the merge is in task order.
        assert merged.snapshot() == expected.snapshot()
        assert merged.gauge("last_k").value == payloads[-1]["k"]


class TestNullMetrics:
    def test_instruments_are_shared_noops(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
        NULL_METRICS.counter("a").add(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_is_a_noop(self):
        real = Metrics()
        real.counter("c").add(1)
        NULL_METRICS.merge(real.snapshot())
        assert NULL_METRICS.snapshot()["counters"] == {}

    def test_null_instrument_is_the_shared_singleton(self):
        assert NULL_METRICS.counter("anything") is _NULL_INSTRUMENT

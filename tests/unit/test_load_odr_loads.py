"""Unit tests for repro.load.odr_loads — vectorized vs oracle."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.load.edge_loads import edge_loads_reference
from repro.load.odr_loads import dimension_order_edge_loads, odr_edge_loads
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.placements.multiple import multiple_linear_placement
from repro.placements.random_placement import random_placement
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus


class TestAgainstOracle:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (4, 3), (3, 3)])
    def test_linear_placements(self, k, d):
        p = linear_placement(Torus(k, d))
        fast = odr_edge_loads(p)
        slow = edge_loads_reference(p, OrderedDimensionalRouting(d))
        assert np.allclose(fast, slow)

    def test_random_placement(self):
        torus = Torus(4, 3)
        p = random_placement(torus, 12, seed=5)
        assert np.allclose(
            odr_edge_loads(p),
            edge_loads_reference(p, OrderedDimensionalRouting(3)),
        )

    def test_multiple_linear(self):
        p = multiple_linear_placement(Torus(5, 2), 2)
        assert np.allclose(
            odr_edge_loads(p),
            edge_loads_reference(p, OrderedDimensionalRouting(2)),
        )

    @pytest.mark.parametrize("order", [(1, 0), (0, 1)])
    def test_custom_orders(self, order):
        p = linear_placement(Torus(4, 2))
        fast = dimension_order_edge_loads(p, order)
        slow = edge_loads_reference(p, DimensionOrderRouting(order))
        assert np.allclose(fast, slow)


class TestProperties:
    def test_conservation(self):
        p = linear_placement(Torus(6, 2))
        loads = odr_edge_loads(p)
        coords = p.coords()
        m = len(p)
        idx = np.arange(m)
        pi, qi = np.meshgrid(idx, idx, indexing="ij")
        keep = pi != qi
        total = p.torus.lee_distances_array(coords[pi[keep]], coords[qi[keep]]).sum()
        assert loads.sum() == pytest.approx(float(total))

    def test_integer_loads(self):
        # single-path routing: every pair contributes exactly 1
        loads = odr_edge_loads(linear_placement(Torus(6, 3)))
        assert np.allclose(loads, np.round(loads))

    def test_weights(self):
        p = linear_placement(Torus(4, 2))
        m = len(p)
        w = np.full((m, m), 2.0)
        np.fill_diagonal(w, 0.0)
        assert np.allclose(odr_edge_loads(p, w), 2.0 * odr_edge_loads(p))

    def test_bad_weight_shape(self):
        p = linear_placement(Torus(4, 2))
        with pytest.raises(ValueError):
            odr_edge_loads(p, np.ones((3, 3)))

    def test_bad_order(self):
        p = linear_placement(Torus(4, 2))
        with pytest.raises(RoutingError):
            dimension_order_edge_loads(p, (0, 0))

    def test_single_processor_zero_load(self):
        torus = Torus(4, 2)
        p = Placement(torus, [5])
        assert odr_edge_loads(p).sum() == 0.0

    def test_k2_torus(self):
        # degenerate radix: + tie every time a coordinate differs
        p = Placement(Torus(2, 2), [0, 3])
        fast = odr_edge_loads(p)
        slow = edge_loads_reference(p, OrderedDimensionalRouting(2))
        assert np.allclose(fast, slow)

"""Unit tests for repro.placements.search."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.fully import fully_populated_placement
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.placements.search import (
    local_search_placement,
    placement_objective,
)
from repro.torus.topology import Torus


class TestObjective:
    def test_matches_odr_emax(self):
        from repro.load.odr_loads import odr_edge_loads

        p = linear_placement(Torus(5, 2))
        assert placement_objective(p) == odr_edge_loads(p).max()


class TestLocalSearch:
    def test_never_worse_than_start(self):
        start = random_placement(Torus(4, 2), 4, seed=7)
        res = local_search_placement(start, max_moves=10, seed=0)
        assert res.best_emax <= res.initial_emax
        assert res.improvement >= 0

    def test_preserves_size(self):
        start = random_placement(Torus(5, 2), 5, seed=1)
        res = local_search_placement(start, max_moves=10, seed=0)
        assert len(res.best) == 5

    def test_trajectory_monotone_at_zero_temperature(self):
        start = random_placement(Torus(5, 2), 5, seed=2)
        res = local_search_placement(start, max_moves=15, seed=0)
        assert all(
            b <= a for a, b in zip(res.trajectory, res.trajectory[1:])
        )

    def test_reaches_linear_optimum(self):
        torus = Torus(5, 2)
        linear_emax = placement_objective(linear_placement(torus))
        start = random_placement(torus, 5, seed=3)
        res = local_search_placement(
            start, max_moves=40, candidates_per_move=16, seed=0
        )
        assert res.best_emax >= linear_emax - 1e-9  # cannot beat the optimum

    def test_deterministic(self):
        start = random_placement(Torus(4, 2), 4, seed=4)
        a = local_search_placement(start, max_moves=8, seed=5)
        b = local_search_placement(start, max_moves=8, seed=5)
        assert a.best_emax == b.best_emax
        assert a.trajectory == b.trajectory

    def test_fully_populated_has_no_moves(self):
        p = fully_populated_placement(Torus(3, 2))
        res = local_search_placement(p, max_moves=5, seed=0)
        assert res.best == p
        assert res.evaluations == 1

    def test_annealing_accepts_uphill(self):
        start = random_placement(Torus(4, 2), 4, seed=6)
        res = local_search_placement(
            start, max_moves=20, temperature=5.0, seed=0
        )
        assert res.best_emax <= res.initial_emax

    def test_invalid_args(self):
        start = random_placement(Torus(4, 2), 4, seed=0)
        with pytest.raises(InvalidParameterError):
            local_search_placement(start, max_moves=-1)
        with pytest.raises(InvalidParameterError):
            local_search_placement(start, candidates_per_move=0)

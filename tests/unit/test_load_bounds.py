"""Unit tests for repro.load.bounds."""

import numpy as np
import pytest

from repro.load.bounds import (
    best_known_lower_bound,
    eq6_bound,
    eq8_bound,
    lemma1_bound,
    section4_bound,
    separator_size,
)
from repro.load.odr_loads import odr_edge_loads
from repro.placements.fully import block_placement
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestSeparator:
    def test_singleton_size_4d(self):
        for k, d in [(4, 2), (5, 3)]:
            torus = Torus(k, d)
            assert separator_size(torus, [0]) == 4 * d

    def test_whole_torus_empty_boundary(self, torus_4_2):
        assert separator_size(torus_4_2, np.arange(16)) == 0

    def test_layer_boundary(self, torus_4_2):
        # one full layer of T_4^2 (dim 0): boundary = 2 cuts x 2k^(d-1) links
        from repro.torus.subtorus import principal_subtorus_nodes

        layer = principal_subtorus_nodes(torus_4_2, 0, 1)
        assert separator_size(torus_4_2, layer) == 2 * 2 * 4


class TestBounds:
    def test_eq6(self, linear_4_3):
        assert eq6_bound(linear_4_3) == pytest.approx(15 / 6)

    def test_lemma1_singleton_equals_eq6(self, linear_4_3):
        s = linear_4_3.node_ids[:1]
        assert lemma1_bound(linear_4_3, s) == pytest.approx(eq6_bound(linear_4_3))

    def test_lemma1_requires_subset(self, linear_4_2):
        outside = linear_4_2.complement().node_ids[:1]
        with pytest.raises(ValueError):
            lemma1_bound(linear_4_2, outside)

    def test_eq8(self, linear_4_2):
        assert eq8_bound(linear_4_2, 16) == pytest.approx(2 * 4 / 16)

    def test_section4(self):
        p = linear_placement(Torus(8, 3))
        assert section4_bound(p) == pytest.approx(64**2 / (8 * 64))

    def test_bounds_below_measured(self):
        p = linear_placement(Torus(6, 3))
        emax = float(odr_edge_loads(p).max())
        rep = best_known_lower_bound(p, bisection_width=4 * 36)
        assert rep.best <= emax
        assert rep.eq6 <= emax and rep.section4 <= emax and rep.eq8 <= emax


class TestBoundReport:
    def test_section4_suppressed_for_nonuniform(self, torus_4_2):
        p = block_placement(torus_4_2, 2)
        rep = best_known_lower_bound(p)
        assert rep.section4 is None
        assert rep.best == rep.eq6

    def test_best_picks_max(self):
        p = linear_placement(Torus(4, 4))
        rep = best_known_lower_bound(p)
        # d=4, k=4: section4 = 64^2/(8*64)=8 > eq6 = 63/8
        assert rep.section4 is not None
        assert rep.best == rep.section4

    def test_eq8_optional(self, linear_4_2):
        assert best_known_lower_bound(linear_4_2).eq8 is None
        assert best_known_lower_bound(linear_4_2, 16).eq8 is not None

"""Unit tests for repro.routing.udr."""

import itertools
import math

from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus


class TestPathMultiplicity:
    def test_s_factorial(self):
        torus = Torus(5, 3)
        udr = UnorderedDimensionalRouting()
        cases = {
            ((0, 0, 0), (1, 0, 0)): 1,
            ((0, 0, 0), (1, 1, 0)): 2,
            ((0, 0, 0), (1, 1, 1)): 6,
        }
        for (p, q), expected in cases.items():
            assert len(udr.paths(torus, p, q)) == expected
            assert udr.num_paths(torus, p, q) == expected

    def test_self_pair(self, torus_4_2):
        udr = UnorderedDimensionalRouting()
        paths = udr.paths(torus_4_2, (1, 1), (1, 1))
        assert len(paths) == 1 and paths[0].length == 0
        assert udr.num_paths(torus_4_2, (1, 1), (1, 1)) == 1

    def test_paths_distinct(self):
        torus = Torus(5, 3)
        udr = UnorderedDimensionalRouting()
        paths = udr.paths(torus, (0, 0, 0), (2, 1, 2))
        assert len({p.nodes for p in paths}) == 6


class TestPathProperties:
    def test_all_minimal(self, torus_5_2):
        udr = UnorderedDimensionalRouting()
        lee = torus_5_2.lee_distance((0, 1), (3, 4))
        for path in udr.paths(torus_5_2, (0, 1), (3, 4)):
            assert path.length == lee

    def test_union_of_dimension_orders(self):
        # UDR path set == { DOR(perm) path : perm in S_d } for each pair
        torus = Torus(5, 3)
        udr = UnorderedDimensionalRouting()
        p, q = (0, 1, 2), (2, 3, 0)
        udr_paths = {path.nodes for path in udr.paths(torus, p, q)}
        dor_paths = {
            DimensionOrderRouting(perm).path(torus, p, q).nodes
            for perm in itertools.permutations(range(3))
        }
        assert udr_paths == dor_paths

    def test_differing_dims(self, torus_5_2):
        udr = UnorderedDimensionalRouting()
        assert udr.differing_dims(torus_5_2, (0, 1), (0, 2)) == [1]
        assert udr.differing_dims(torus_5_2, (0, 1), (3, 2)) == [0, 1]

    def test_tie_uses_plus_direction(self):
        # k even: the half-ring tie should still yield exactly s! paths
        torus = Torus(4, 2)
        udr = UnorderedDimensionalRouting()
        paths = udr.paths(torus, (0, 0), (2, 2))
        assert len(paths) == 2
        for path in paths:
            signs = {torus.edges.decode(e).sign for e in path.edge_ids}
            assert signs == {+1}

    def test_max_multiplicity_is_d_factorial(self):
        torus = Torus(5, 4)
        udr = UnorderedDimensionalRouting()
        n = udr.num_paths(torus, (0, 0, 0, 0), (1, 2, 1, 2))
        assert n == math.factorial(4)

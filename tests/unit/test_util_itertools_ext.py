"""Unit tests for repro.util.itertools_ext."""

import pytest

from repro.util.itertools_ext import (
    chunked,
    pairs_ordered,
    pairs_unordered,
    product_coords,
)


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestPairs:
    def test_ordered_count(self):
        assert len(list(pairs_ordered([1, 2, 3]))) == 6

    def test_ordered_excludes_self(self):
        assert (1, 1) not in list(pairs_ordered([1, 2]))

    def test_unordered_count(self):
        assert len(list(pairs_unordered([1, 2, 3, 4]))) == 6


class TestProductCoords:
    def test_count(self):
        assert len(list(product_coords(3, 2))) == 9

    def test_c_order(self):
        coords = list(product_coords(2, 2))
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

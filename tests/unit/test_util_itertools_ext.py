"""Unit tests for repro.util.itertools_ext."""

import pytest

from repro.util.itertools_ext import (
    chunked,
    ordered_pair_index_arrays,
    pairs_ordered,
    pairs_unordered,
    product_coords,
)


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestPairs:
    def test_ordered_count(self):
        assert len(list(pairs_ordered([1, 2, 3]))) == 6

    def test_ordered_excludes_self(self):
        assert (1, 1) not in list(pairs_ordered([1, 2]))

    def test_unordered_count(self):
        assert len(list(pairs_unordered([1, 2, 3, 4]))) == 6


class TestProductCoords:
    def test_count(self):
        assert len(list(product_coords(3, 2))) == 9

    def test_c_order(self):
        coords = list(product_coords(2, 2))
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestOrderedPairIndexArrays:
    def test_matches_meshgrid_construction(self):
        # the vectorized load kernels were born from this masked-meshgrid
        # construction; the arithmetic replacement must be bit-identical.
        np = pytest.importorskip("numpy")
        for m in range(7):
            pi, qi = ordered_pair_index_arrays(m)
            idx = np.arange(m)
            grid_p, grid_q = np.meshgrid(idx, idx, indexing="ij")
            mask = grid_p != grid_q
            assert np.array_equal(pi, grid_p[mask])
            assert np.array_equal(qi, grid_q[mask])
            assert pi.dtype == np.int64 and qi.dtype == np.int64

    def test_counts_and_degenerate_sizes(self):
        np = pytest.importorskip("numpy")
        assert ordered_pair_index_arrays(0)[0].size == 0
        assert ordered_pair_index_arrays(1)[0].size == 0
        pi, qi = ordered_pair_index_arrays(5)
        assert pi.size == qi.size == 20
        assert np.all(pi != qi)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ordered_pair_index_arrays(-1)

    def test_agrees_with_pairs_ordered(self):
        items = ["a", "b", "c", "d"]
        pi, qi = ordered_pair_index_arrays(len(items))
        from_arrays = [(items[p], items[q]) for p, q in zip(pi, qi)]
        assert from_arrays == list(pairs_ordered(items))

"""Unit tests for repro.sim.wormhole."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.sim.packet import Packet
from repro.sim.workloads import complete_exchange_packets
from repro.sim.wormhole import (
    WormholeConfig,
    WormholeEngine,
    assign_virtual_channels,
)
from repro.torus.topology import Torus


def _packet(torus, src, dst, pid=0):
    path = OrderedDimensionalRouting(torus.d).path(torus, src, dst)
    return Packet(pid, path.source, path.destination, path.edge_ids)


class TestConfig:
    def test_defaults(self):
        cfg = WormholeConfig()
        assert cfg.flits_per_packet >= 1 and cfg.buffer_flits >= 1

    def test_invalid(self):
        with pytest.raises(SimulationError):
            WormholeConfig(flits_per_packet=0)
        with pytest.raises(SimulationError):
            WormholeConfig(buffer_flits=0)


class TestVirtualChannels:
    def test_no_wrap_stays_vc0(self):
        torus = Torus(6, 2)
        pkt = _packet(torus, (0, 0), (2, 2))
        assert assign_virtual_channels(torus, pkt.edge_ids) == [0, 0, 0, 0]

    def test_wrap_switches_to_vc1(self):
        torus = Torus(6, 2)
        pkt = _packet(torus, (5, 0), (1, 0))  # crosses 5 -> 0 immediately
        vcs = assign_virtual_channels(torus, pkt.edge_ids)
        assert vcs == [1, 1]

    def test_vc_resets_per_dimension(self):
        torus = Torus(6, 2)
        # dim 0 wraps (5 -> 1), dim 1 does not (0 -> 2)
        pkt = _packet(torus, (5, 0), (1, 2))
        vcs = assign_virtual_channels(torus, pkt.edge_ids)
        assert vcs == [1, 1, 0, 0]

    def test_minus_direction_dateline(self):
        torus = Torus(6, 2)
        pkt = _packet(torus, (1, 0), (5, 0))  # 1 -> 0 -> 5 travelling −
        vcs = assign_virtual_channels(torus, pkt.edge_ids)
        assert vcs == [0, 1]


class TestPipelining:
    def test_single_packet_latency(self):
        torus = Torus(6, 2)
        pkt = _packet(torus, (0, 0), (2, 2))
        res = WormholeEngine(torus, WormholeConfig(flits_per_packet=4)).run([pkt])
        # wormhole: hops + flits - 1 under zero contention
        assert pkt.latency == 4 + 4 - 1

    def test_single_flit_degenerates(self):
        torus = Torus(6, 2)
        pkt = _packet(torus, (0, 0), (0, 3))
        res = WormholeEngine(torus, WormholeConfig(flits_per_packet=1)).run([pkt])
        assert pkt.latency == 3

    def test_zero_hop_packet(self):
        torus = Torus(4, 2)
        pkt = Packet(0, 5, 5, ())
        res = WormholeEngine(torus).run([pkt])
        assert res.delivered == 1
        assert pkt.latency == 0


class TestCompleteExchange:
    @pytest.mark.parametrize("flits,buffers", [(1, 1), (3, 2), (4, 1)])
    def test_all_delivered(self, flits, buffers):
        torus = Torus(5, 2)
        placement = linear_placement(torus)
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(2), seed=0
        )
        res = WormholeEngine(
            torus, WormholeConfig(flits_per_packet=flits, buffer_flits=buffers)
        ).run(packets)
        assert res.delivered == len(packets)

    def test_packet_counts_match_analytic(self):
        torus = Torus(6, 2)
        placement = linear_placement(torus)
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(2), seed=0
        )
        res = WormholeEngine(
            torus, WormholeConfig(flits_per_packet=3)
        ).run(packets)
        assert np.allclose(res.link_packet_counts, odr_edge_loads(placement))

    def test_longer_worms_take_longer(self):
        torus = Torus(5, 2)
        placement = linear_placement(torus)

        def run(flits):
            packets = complete_exchange_packets(
                placement, OrderedDimensionalRouting(2), seed=0
            )
            return WormholeEngine(
                torus, WormholeConfig(flits_per_packet=flits)
            ).run(packets)

        assert run(4).cycles > run(1).cycles

    def test_wormhole_beats_store_and_forward_for_long_packets(self):
        # pipelining: single long packet completes in hops+L-1 cycles,
        # a store-and-forward model would need hops*L
        torus = Torus(8, 2)
        pkt = _packet(torus, (0, 0), (4, 4))
        hops = pkt.path_length
        flits = 6
        res = WormholeEngine(
            torus, WormholeConfig(flits_per_packet=flits, buffer_flits=2)
        ).run([pkt])
        assert pkt.latency == hops + flits - 1 < hops * flits


class TestValidation:
    def test_edge_revisiting_route_rejected(self):
        torus = Torus(4, 2)
        eid = torus.edges.edge_id(0, 0, +1)
        pkt = Packet(0, 0, 0, (eid, eid))
        with pytest.raises(SimulationError):
            WormholeEngine(torus).run([pkt])

    def test_max_cycles_guard(self):
        torus = Torus(4, 2)
        pkt = _packet(torus, (0, 0), (1, 1))
        pkt.release_cycle = 10**7
        with pytest.raises(SimulationError):
            WormholeEngine(torus, max_cycles=5).run([pkt])


class TestStress:
    def test_tight_buffers_fully_populated(self):
        # minimum buffering, every node populated: maximal channel pressure,
        # still deadlock-free under dateline dimension-order routing
        torus = Torus(4, 2)
        from repro.placements.fully import fully_populated_placement

        placement = fully_populated_placement(torus)
        packets = complete_exchange_packets(
            placement, OrderedDimensionalRouting(2), seed=0
        )
        res = WormholeEngine(
            torus, WormholeConfig(flits_per_packet=4, buffer_flits=1),
            max_cycles=200_000,
        ).run(packets)
        assert res.delivered == len(packets)
        assert np.allclose(res.link_packet_counts, odr_edge_loads(placement))

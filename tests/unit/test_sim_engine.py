"""Unit tests for repro.sim.engine — the cycle-accurate core."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import CycleEngine
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet


def _path_edges(torus, coords_seq):
    """Edge ids along consecutive coordinates."""
    ei = torus.edges
    ids = [torus.node_id(c) for c in coords_seq]
    return tuple(
        ei.edge_between(ids[i], ids[i + 1]) for i in range(len(ids) - 1)
    )


class TestBasicDelivery:
    def test_single_packet_latency_equals_hops(self, torus_4_2):
        edges = _path_edges(torus_4_2, [(0, 0), (0, 1), (0, 2)])
        pkt = Packet(0, torus_4_2.node_id((0, 0)), torus_4_2.node_id((0, 2)), edges)
        result = CycleEngine(SimNetwork(torus_4_2)).run([pkt])
        assert result.delivered == 1
        assert pkt.latency == 2
        assert result.cycles == 2
        assert result.max_link_count == 1

    def test_zero_hop_packet(self, torus_4_2):
        pkt = Packet(0, 3, 3, ())
        result = CycleEngine(SimNetwork(torus_4_2)).run([pkt])
        assert result.delivered == 1
        assert pkt.latency == 0
        assert result.cycles == 0

    def test_empty_workload(self, torus_4_2):
        result = CycleEngine(SimNetwork(torus_4_2)).run([])
        assert result.delivered == 0
        assert result.cycles == 0


class TestContention:
    def test_shared_link_serializes(self, torus_4_2):
        # two packets over the same single link: second waits one cycle
        edges = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        pkts = [
            Packet(0, 0, 1, edges),
            Packet(1, 0, 1, edges),
        ]
        result = CycleEngine(SimNetwork(torus_4_2)).run(pkts)
        assert sorted(p.latency for p in pkts) == [1, 2]
        assert result.link_counts[edges[0]] == 2
        assert result.max_queue_length == 2

    def test_disjoint_links_parallel(self, torus_4_2):
        a = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        b = _path_edges(torus_4_2, [(1, 0), (1, 1)])
        pkts = [Packet(0, 0, 1, a), Packet(1, 4, 5, b)]
        result = CycleEngine(SimNetwork(torus_4_2)).run(pkts)
        assert all(p.latency == 1 for p in pkts)
        assert result.cycles == 1

    def test_release_cycle_staggering(self, torus_4_2):
        edges = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        pkts = [
            Packet(0, 0, 1, edges, release_cycle=0),
            Packet(1, 0, 1, edges, release_cycle=5),
        ]
        result = CycleEngine(SimNetwork(torus_4_2)).run(pkts)
        assert pkts[0].latency == 1
        assert pkts[1].latency == 1
        assert result.cycles == 6


class TestFailures:
    def test_path_over_failed_link_rejected(self, torus_4_2):
        edges = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        net = SimNetwork(torus_4_2, failed_edge_ids=[edges[0]])
        with pytest.raises(SimulationError):
            CycleEngine(net).run([Packet(0, 0, 1, edges)])

    def test_max_cycles_guard(self, torus_4_2):
        edges = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        pkt = Packet(0, 0, 1, edges, release_cycle=100)
        with pytest.raises(SimulationError):
            CycleEngine(SimNetwork(torus_4_2), max_cycles=10).run([pkt])


class TestResultMetrics:
    def test_throughput(self, torus_4_2):
        a = _path_edges(torus_4_2, [(0, 0), (0, 1)])
        result = CycleEngine(SimNetwork(torus_4_2)).run([Packet(0, 0, 1, a)])
        assert result.throughput == 1.0

    def test_latencies_array(self, torus_4_2):
        a = _path_edges(torus_4_2, [(0, 0), (0, 1), (0, 2)])
        result = CycleEngine(SimNetwork(torus_4_2)).run([Packet(0, 0, 2, a)])
        assert np.array_equal(result.latencies, [2])
        assert result.mean_latency == 2.0

"""Tests for repro.obs.analyze — forests, critical path, rollups, diffs."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs import (
    build_forest,
    critical_path,
    diff_traces,
    rollup,
    utilization,
)
from repro.obs.analyze import (
    render_critical_path,
    render_diff,
    render_waterfall,
)


def _span(name, span_id, parent, started, duration, status="ok", **attrs):
    return {
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "status": status,
        "started_unix": started,
        "duration_seconds": duration,
        "attributes": attrs,
    }


def _forest_records():
    """A hand-built two-level run.

    root [0, 10]
      ├── fast  [1, 3]   (2s)
      └── slow  [2, 9]   (7s)
            └── leaf [3, 8] (5s)
    """
    return [
        {"kind": "header", "version": 1, "label": "t"},
        _span("root", "s1", None, 0.0, 10.0),
        _span("fast", "s2", "s1", 1.0, 2.0),
        _span("slow", "s3", "s1", 2.0, 7.0),
        _span("leaf", "s4", "s3", 3.0, 5.0, status="error"),
    ]


class TestBuildForest:
    def test_tree_shape(self):
        roots = build_forest(_forest_records())
        assert [r.name for r in roots] == ["root"]
        (root,) = roots
        assert [c.name for c in root.children] == ["fast", "slow"]
        assert [c.name for c in root.children[1].children] == ["leaf"]

    def test_children_ordered_by_start_time(self):
        records = [
            _span("root", "r", None, 0.0, 10.0),
            _span("late", "b", "r", 5.0, 1.0),
            _span("early", "a", "r", 1.0, 1.0),
        ]
        (root,) = build_forest(records)
        assert [c.name for c in root.children] == ["early", "late"]

    def test_orphaned_span_becomes_flagged_root(self):
        # the parent span never closed (crashed run) — its id appears
        # only as a dangling reference
        records = [
            _span("root", "s1", None, 0.0, 10.0),
            _span("lost", "s9", "never-closed", 1.0, 2.0),
        ]
        roots = build_forest(records)
        assert {r.name for r in roots} == {"root", "lost"}
        by_name = {r.name: r for r in roots}
        assert by_name["lost"].orphan is True
        assert by_name["root"].orphan is False

    def test_self_seconds_clamped_at_zero(self):
        # children overlapping their parent (recorded clock skew) must
        # not produce negative self time
        records = [
            _span("root", "s1", None, 0.0, 1.0),
            _span("child", "s2", "s1", 0.0, 5.0),
        ]
        (root,) = build_forest(records)
        assert root.self_seconds == 0.0


class TestCriticalPath:
    def test_descends_into_latest_finishing_child(self):
        path = critical_path(_forest_records())
        assert [row["name"] for row in path] == ["root", "slow", "leaf"]
        assert [row["depth"] for row in path] == [0, 1, 2]

    def test_fractions_and_self_time(self):
        path = critical_path(_forest_records())
        root, slow, leaf = path
        assert root["fraction_of_root"] == 1.0
        assert slow["fraction_of_root"] == pytest.approx(0.7)
        # root self = 10 - (2 + 7); slow self = 7 - 5
        assert root["self_seconds"] == pytest.approx(1.0)
        assert slow["self_seconds"] == pytest.approx(2.0)
        assert leaf["status"] == "error"

    def test_picks_longest_root(self):
        records = [
            _span("minor", "a", None, 0.0, 1.0),
            _span("major", "b", None, 0.0, 9.0),
        ]
        path = critical_path(records)
        assert path[0]["name"] == "major"

    def test_orphans_can_carry_the_path(self):
        records = [
            _span("root", "s1", None, 0.0, 1.0),
            _span("orphan", "s2", "gone", 0.0, 9.0),
        ]
        path = critical_path(records)
        assert path[0]["name"] == "orphan"

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError, match="no spans"):
            critical_path([{"kind": "header", "version": 1}])


class TestRollup:
    def test_sorted_by_self_time(self):
        rows = rollup(_forest_records())
        assert [row["name"] for row in rows] == [
            "leaf",  # self 5.0
            "fast",  # self 2.0 (ties broken by name)
            "slow",  # self 2.0
            "root",  # self 1.0
        ]

    def test_counts_totals_and_errors(self):
        rows = {row["name"]: row for row in rollup(_forest_records())}
        assert rows["root"]["count"] == 1
        assert rows["root"]["total_seconds"] == pytest.approx(10.0)
        assert rows["root"]["fraction_of_wall"] == pytest.approx(1.0)
        assert rows["leaf"]["errors"] == 1
        assert rows["fast"]["errors"] == 0

    def test_min_max_over_repeated_name(self):
        records = [
            _span("root", "r", None, 0.0, 10.0),
            _span("exec.task", "a", "r", 0.0, 1.0),
            _span("exec.task", "b", "r", 2.0, 4.0),
        ]
        rows = {row["name"]: row for row in rollup(records)}
        task = rows["exec.task"]
        assert task["count"] == 2
        assert task["min_seconds"] == pytest.approx(1.0)
        assert task["max_seconds"] == pytest.approx(4.0)


class TestUtilization:
    def test_counts_overlapping_spans(self):
        records = [
            _span("exec.run", "r", None, 0.0, 4.0),
            _span("exec.task", "a", "r", 0.0, 1.5),
            _span("exec.task", "b", "r", 0.0, 4.0),
            _span("exec.task", "c", "r", 2.5, 1.5),
        ]
        timeline = utilization(records, buckets=4)
        assert timeline["peak"] == 2
        assert timeline["busy"][0] == 2  # a + b
        assert timeline["busy"][-1] == 2  # b + c
        assert timeline["wall_seconds"] == pytest.approx(4.0)

    def test_no_matching_spans_is_empty_timeline(self):
        timeline = utilization(_forest_records(), span_name="exec.task")
        assert timeline["busy"] == []
        assert timeline["peak"] == 0

    def test_custom_span_name(self):
        timeline = utilization(
            _forest_records(), span_name="leaf", buckets=5
        )
        assert timeline["peak"] == 1
        assert timeline["wall_seconds"] == pytest.approx(5.0)


class TestDiffTraces:
    def test_self_diff_is_empty_at_any_tolerance(self):
        records = _forest_records()
        assert diff_traces(records, records, tolerance=0.0) == []

    def test_added_and_removed_names(self):
        before = [_span("old.phase", "a", None, 0.0, 1.0)]
        after = [_span("new.phase", "b", None, 0.0, 1.0)]
        rows = {row["name"]: row for row in diff_traces(before, after)}
        assert rows["old.phase"]["direction"] == "removed"
        assert rows["new.phase"]["direction"] == "added"

    def test_slower_beyond_tolerance(self):
        before = [_span("work", "a", None, 0.0, 1.0)]
        after = [_span("work", "b", None, 0.0, 2.0)]
        (row,) = diff_traces(before, after, tolerance=0.10)
        assert row["direction"] == "slower"
        assert row["delta_seconds"] == pytest.approx(1.0)
        assert row["relative_change"] == pytest.approx(0.5)

    def test_within_tolerance_is_silent(self):
        before = [_span("work", "a", None, 0.0, 1.0)]
        after = [_span("work", "b", None, 0.0, 1.05)]
        assert diff_traces(before, after, tolerance=0.10) == []

    def test_count_change_always_reports(self):
        before = [_span("work", "a", None, 0.0, 1.0)]
        after = [
            _span("work", "b", None, 0.0, 0.5),
            _span("work", "c", None, 0.5, 0.5),
        ]
        (row,) = diff_traces(before, after, tolerance=0.50)
        assert row["count_before"] == 1
        assert row["count_after"] == 2

    def test_sorted_by_absolute_delta(self):
        before = [
            _span("small", "a", None, 0.0, 1.0),
            _span("big", "b", None, 0.0, 1.0),
        ]
        after = [
            _span("small", "c", None, 0.0, 1.3),
            _span("big", "d", None, 0.0, 5.0),
        ]
        rows = diff_traces(before, after)
        assert [row["name"] for row in rows] == ["big", "small"]


class TestRenderers:
    def test_render_critical_path_lines(self):
        lines = render_critical_path(critical_path(_forest_records()))
        text = "\n".join(lines)
        assert "root" in text and "slow" in text and "leaf" in text

    def test_render_waterfall_marks_orphans_and_errors(self):
        records = _forest_records() + [
            _span("stray", "s9", "gone", 4.0, 1.0)
        ]
        text = "\n".join(render_waterfall(records))
        assert "root" in text
        assert "stray" in text

    def test_render_waterfall_empty_raises(self):
        with pytest.raises(TraceError):
            render_waterfall([{"kind": "header", "version": 1}])

    def test_render_diff_empty_and_nonempty(self):
        assert render_diff([]) == [
            "traces are equivalent (no span-name deltas beyond tolerance)"
        ]
        before = [_span("work", "a", None, 0.0, 1.0)]
        after = [_span("work", "b", None, 0.0, 3.0)]
        lines = render_diff(diff_traces(before, after))
        assert any("work" in line for line in lines)

"""Unit tests for repro.placements.linear."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.placements.analysis import is_uniform
from repro.placements.linear import (
    LinearPlacementFamily,
    linear_placement,
    modular_inverse,
    solve_linear_congruence,
)
from repro.torus.topology import Torus


class TestModularInverse:
    def test_basic(self):
        assert modular_inverse(3, 7) == 5
        assert (3 * modular_inverse(3, 7)) % 7 == 1

    def test_not_invertible(self):
        with pytest.raises(InvalidParameterError):
            modular_inverse(2, 4)

    def test_one(self):
        assert modular_inverse(1, 9) == 1


class TestSolveCongruence:
    def test_count(self):
        coords = solve_linear_congruence(5, 3, None, 0)
        assert coords.shape == (25, 3)

    def test_all_satisfy(self):
        coords = solve_linear_congruence(6, 3, None, 2)
        assert np.all(coords.sum(axis=1) % 6 == 2)

    def test_general_coefficients(self):
        coeffs = [2, 3]  # 3 coprime to 4
        coords = solve_linear_congruence(4, 2, coeffs, 1)
        assert np.all((coords @ np.array(coeffs)) % 4 == 1)
        assert coords.shape == (4, 2)

    def test_no_invertible_coefficient_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_linear_congruence(6, 2, [2, 3], 0)  # gcd(2,6)=2, gcd(3,6)=3

    def test_wrong_length_coefficients(self):
        with pytest.raises(InvalidParameterError):
            solve_linear_congruence(4, 2, [1, 1, 1], 0)

    def test_d1(self):
        coords = solve_linear_congruence(7, 1, None, 3)
        assert coords.tolist() == [[3]]

    def test_solutions_distinct(self):
        coords = solve_linear_congruence(4, 3, None, 0)
        as_tuples = {tuple(c) for c in coords.tolist()}
        assert len(as_tuples) == 16


class TestLinearPlacement:
    def test_size_law(self):
        for k, d in [(4, 2), (5, 2), (4, 3), (3, 4)]:
            p = linear_placement(Torus(k, d))
            assert len(p) == k ** (d - 1)

    def test_uniform(self):
        assert is_uniform(linear_placement(Torus(6, 3)))

    def test_offsets_partition_torus(self):
        torus = Torus(4, 2)
        ids = np.concatenate(
            [linear_placement(torus, offset=c).node_ids for c in range(4)]
        )
        assert np.array_equal(np.sort(ids), np.arange(16))

    def test_diagonal_d2(self):
        p = linear_placement(Torus(3, 2))
        assert {tuple(c) for c in p.coords().tolist()} == {
            (0, 0),
            (1, 2),
            (2, 1),
        }

    def test_name_generated(self):
        assert linear_placement(Torus(4, 2), offset=1).name == "linear(c=1)"


class TestLinearFamily:
    def test_build_matches_function(self):
        fam = LinearPlacementFamily()
        assert fam.build(4, 2) == linear_placement(Torus(4, 2))

    def test_expected_size(self):
        fam = LinearPlacementFamily()
        assert fam.expected_size(6, 3) == 36

    def test_uniform_by_construction(self):
        assert LinearPlacementFamily().is_uniform_by_construction()

"""Unit tests for repro.load.formulas — every closed form the paper states."""

import pytest

from repro.load import formulas as F


class TestLowerBounds:
    def test_blaum_examples_from_paper(self):
        # "for d = 2, E_max >= |P|/4 and, for d = 3, E_max >= |P|/6"
        assert F.blaum_lower_bound(101, 2) == pytest.approx(100 / 4)
        assert F.blaum_lower_bound(61, 3) == pytest.approx(60 / 6)

    def test_separator_bound(self):
        assert F.separator_lower_bound(1, 5, 8) == pytest.approx(2 * 1 * 4 / 8)

    def test_separator_bound_zero_boundary(self):
        with pytest.raises(ValueError):
            F.separator_lower_bound(1, 2, 0)

    def test_eq6_is_lemma1_singleton(self):
        # |S| = 1, |∂S| = 4d reduces (7) to (6)
        p, d = 37, 3
        assert F.separator_lower_bound(1, p, 4 * d) == pytest.approx(
            F.blaum_lower_bound(p, d)
        )

    def test_bisection_lower_bound(self):
        assert F.bisection_lower_bound(8, 16) == pytest.approx(2 * 16 / 16)

    def test_bisection_lower_bound_odd_size(self):
        # odd |P| splits (floor, ceil): 2 * 4 * 5 / 16, not 2 * (9/2)^2 / 16
        assert F.bisection_lower_bound(9, 16) == pytest.approx(2 * 4 * 5 / 16)

    def test_improved_bound(self):
        assert F.improved_lower_bound(1.0, 8, 3) == pytest.approx(64 / 8)
        assert F.improved_lower_bound(2.0, 8, 3) == pytest.approx(4 * 64 / 8)

    def test_improved_from_size_consistent(self):
        k, d, c = 8, 3, 2.0
        p = c * k ** (d - 1)
        assert F.improved_lower_bound_from_size(int(p), k, d) == pytest.approx(
            F.improved_lower_bound(c, k, d)
        )


class TestOdrForms:
    def test_even(self):
        assert F.odr_linear_emax_exact(8, 3) == pytest.approx(64 / 8 + 8 / 4)

    def test_odd(self):
        assert F.odr_linear_emax_exact(5, 3) == pytest.approx(25 / 8 - 1 / 8)

    def test_interior_alias(self):
        assert F.odr_linear_emax_interior(6, 3) == F.odr_linear_emax_exact(6, 3)

    def test_boundary(self):
        assert F.odr_linear_emax_boundary(8, 3) == 32
        assert F.odr_linear_emax_boundary(5, 3) == 10

    def test_global_max(self):
        assert F.odr_linear_emax_global(8, 3) == 32.0
        assert F.odr_linear_emax_global(8, 2) == 4.0

    def test_leading_term(self):
        assert F.odr_linear_emax_leading(8, 3) == 8.0

    def test_multiple_upper(self):
        assert F.odr_multiple_upper_bound(8, 3, 2) == 4 * 64


class TestUdrForms:
    def test_upper(self):
        assert F.udr_upper_bound(8, 3) == 4 * 64

    def test_multiple_upper(self):
        assert F.udr_multiple_upper_bound(8, 3, 3) == 9 * 4 * 64


class TestStructuralForms:
    def test_fully_populated(self):
        assert F.fully_populated_bisection_load(4, 2) == pytest.approx(64 / 8)

    def test_corollary1(self):
        assert F.corollary1_bisection_bound(8, 3) == 6 * 3 * 64

    def test_theorem1(self):
        assert F.theorem1_bisection_width(8, 3) == 4 * 64

    def test_appendix(self):
        assert F.appendix_sweep_bound(8, 3) == 2 * 3 * 64

    def test_eq9_ceiling(self):
        assert F.max_placement_size_bound(1.0, 4, 3) == 12 * 3 * 16

    def test_size_laws(self):
        assert F.linear_placement_size(6, 3) == 36
        assert F.multiple_linear_placement_size(6, 3, 2) == 72


class TestMultipleInteriorForm:
    def test_t1_reduces_to_linear(self):
        assert F.odr_multiple_emax_interior(8, 3, 1) == F.odr_linear_emax_exact(8, 3)

    def test_t2_even(self):
        assert F.odr_multiple_emax_interior(8, 3, 2) == 4 * 10

    def test_t3_odd(self):
        assert F.odr_multiple_emax_interior(5, 3, 3) == 9 * 3


class TestMultipleInteriorMeasured:
    @pytest.mark.parametrize("k,t", [(6, 2), (7, 2), (8, 3)])
    def test_measured_matches_formula(self, k, t):

        from repro.load.distribution import per_dimension_max
        from repro.load.odr_loads import odr_edge_loads
        from repro.placements.multiple import multiple_linear_placement
        from repro.torus.topology import Torus

        torus = Torus(k, 3)
        placement = multiple_linear_placement(torus, t)
        dm = per_dimension_max(torus, odr_edge_loads(placement))
        interior = max(dm[1:2])
        assert interior == pytest.approx(F.odr_multiple_emax_interior(k, 3, t))


class TestUdr2dForm:
    def test_values(self):
        assert F.udr_linear_emax_2d(8) == 2.0
        assert F.udr_linear_emax_2d(9) == 2.0
        assert F.udr_linear_emax_2d(10) == 2.5

    @pytest.mark.parametrize("k", [4, 5, 6, 7])
    def test_measured(self, k):
        from repro.load.udr_loads import udr_edge_loads
        from repro.placements.linear import linear_placement
        from repro.torus.topology import Torus

        emax = float(udr_edge_loads(linear_placement(Torus(k, 2))).max())
        assert emax == pytest.approx(F.udr_linear_emax_2d(k))

"""Unit tests for the repro.load.engine subsystem."""

import numpy as np
import pytest

from repro.errors import EngineError, LoadError
from repro.load.edge_loads import edge_loads_reference
from repro.load.engine import (
    DisplacementPathCache,
    FFTBackend,
    LoadEngine,
    ParallelBackend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    cross_check,
    displacement_edge_loads,
    get_default_engine,
    parallel_edge_loads,
    resolve_engine,
    set_default_engine,
    using_engine,
)
from repro.load.traffic import hotspot_traffic_weights
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.routing.faults import FaultMaskedRouting
from repro.routing.minimal import AllMinimalPaths
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.odr_unrestricted import UnrestrictedODR
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus

ATOL = 1e-9


class TestBackendAgreement:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (4, 3)])
    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda d: OrderedDimensionalRouting(d),
            lambda d: UnorderedDimensionalRouting(),
            lambda d: UnrestrictedODR(),
        ],
        ids=["odr", "udr", "odr-unrestricted"],
    )
    def test_all_backends_match_oracle(self, k, d, make_routing):
        placement = linear_placement(Torus(k, d))
        diffs = cross_check(placement, make_routing(d), jobs=2, atol=ATOL)
        assert set(diffs) >= {"reference", "displacement", "parallel"}
        assert all(v <= ATOL for v in diffs.values())

    @pytest.mark.parametrize("k,d", [(8, 2), (4, 3)])
    def test_parallel_matches_oracle_acceptance(self, k, d):
        """The ISSUE-1 acceptance instances: T_8^2 and T_4^3, linear."""
        placement = linear_placement(Torus(k, d))
        routing = OrderedDimensionalRouting(d)
        oracle = edge_loads_reference(placement, routing)
        loads = parallel_edge_loads(placement, routing, jobs=2, chunk_pairs=64)
        assert np.abs(loads - oracle).max() <= ATOL

    def test_weighted_traffic(self, linear_4_2):
        routing = OrderedDimensionalRouting(2)
        w = hotspot_traffic_weights(len(linear_4_2), hotspot_index=1, background=0.5)
        oracle = edge_loads_reference(linear_4_2, routing, w)
        for name in ("vectorized", "fft", "displacement", "parallel"):
            engine = LoadEngine(name, jobs=2)
            loads = engine.edge_loads(linear_4_2, routing, pair_weights=w)
            assert np.abs(loads - oracle).max() <= ATOL, name

    def test_emax_matches_loads(self, linear_4_2):
        routing = OrderedDimensionalRouting(2)
        engine = LoadEngine("displacement")
        loads = engine.edge_loads(linear_4_2, routing)
        assert engine.emax(linear_4_2, routing) == loads.max()


class TestAutoDispatch:
    def test_auto_picks_vectorized_for_odr(self, linear_4_2):
        engine = LoadEngine("auto")
        backend = engine.backend_for(linear_4_2, OrderedDimensionalRouting(2))
        assert isinstance(backend, VectorizedBackend)

    def test_auto_picks_fft_for_unrestricted(self, linear_4_2):
        engine = LoadEngine("auto")
        backend = engine.backend_for(linear_4_2, UnrestrictedODR())
        assert isinstance(backend, FFTBackend)

    def test_auto_falls_back_to_reference_for_faults(self, linear_4_2):
        engine = LoadEngine("auto")
        masked = FaultMaskedRouting(AllMinimalPaths(), [0])
        assert isinstance(
            engine.backend_for(linear_4_2, masked), ReferenceBackend
        )

    def test_auto_udr_weighted_uses_fft(self, linear_4_2):
        engine = LoadEngine("auto")
        routing = UnorderedDimensionalRouting()
        w = np.ones((len(linear_4_2), len(linear_4_2)))
        assert isinstance(
            engine.backend_for(linear_4_2, routing, w), FFTBackend
        )
        # and the numbers still match the oracle
        np.fill_diagonal(w, 0.0)
        loads = engine.edge_loads(linear_4_2, routing, pair_weights=w)
        oracle = edge_loads_reference(linear_4_2, routing, w)
        assert np.abs(loads - oracle).max() <= ATOL


class TestDisplacementCache:
    def test_templates_are_memoized(self, linear_4_2):
        cache = DisplacementPathCache(
            linear_4_2.torus, OrderedDimensionalRouting(2)
        )
        t1 = cache.template((1, 2))
        t2 = cache.template((1, 2))
        assert t1 is t2
        assert len(cache) == 1

    def test_template_weights_sum_to_lee_distance(self, torus_5_2):
        # each pair's fractional contributions sum to its Lee distance
        cache = DisplacementPathCache(torus_5_2, AllMinimalPaths())
        tpl = cache.template((2, 1))
        assert tpl.weight.sum() == pytest.approx(3.0)
        assert tpl.num_paths == 3

    def test_cache_rejects_non_invariant_routing(self, torus_4_2):
        masked = FaultMaskedRouting(OrderedDimensionalRouting(2), [0])
        with pytest.raises(EngineError):
            DisplacementPathCache(torus_4_2, masked)

    def test_cache_reuse_across_calls(self, linear_4_2):
        routing = OrderedDimensionalRouting(2)
        cache = DisplacementPathCache(linear_4_2.torus, routing)
        first = displacement_edge_loads(linear_4_2, routing, cache=cache)
        n_templates = len(cache)
        second = displacement_edge_loads(linear_4_2, routing, cache=cache)
        assert len(cache) == n_templates
        assert np.array_equal(first, second)

    def test_asymmetric_placement(self, torus_5_2):
        # not closed under translation: every displacement class is small
        placement = Placement(
            torus_5_2, torus_5_2.node_ids([(0, 0), (1, 2), (3, 4), (4, 1)])
        )
        for routing in (OrderedDimensionalRouting(2), AllMinimalPaths()):
            loads = displacement_edge_loads(placement, routing)
            oracle = edge_loads_reference(placement, routing)
            assert np.abs(loads - oracle).max() <= ATOL


class TestParallelBackend:
    def test_single_job_runs_inline(self, linear_4_2):
        routing = OrderedDimensionalRouting(2)
        loads = parallel_edge_loads(linear_4_2, routing, jobs=1)
        assert np.abs(loads - edge_loads_reference(linear_4_2, routing)).max() <= ATOL

    def test_non_invariant_routing_in_workers(self, torus_4_2):
        # fault-masked routing forces the per-pair reference fallback path
        placement = linear_placement(torus_4_2)
        routing = FaultMaskedRouting(UnorderedDimensionalRouting(), [0])
        oracle = edge_loads_reference(placement, routing)
        loads = parallel_edge_loads(placement, routing, jobs=2, chunk_pairs=16)
        assert np.abs(loads - oracle).max() <= ATOL

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            ParallelBackend(jobs=0)

    def test_invalid_chunk(self, linear_4_2):
        with pytest.raises(ValueError):
            parallel_edge_loads(
                linear_4_2, OrderedDimensionalRouting(2), chunk_pairs=0
            )


class TestEngineErrors:
    def test_unknown_backend(self):
        with pytest.raises(EngineError):
            LoadEngine("warp-drive")

    def test_vectorized_rejects_weighted_udr(self, linear_4_2):
        w = np.ones((len(linear_4_2), len(linear_4_2)))
        engine = LoadEngine("vectorized")
        with pytest.raises(EngineError):
            engine.edge_loads(
                linear_4_2, UnorderedDimensionalRouting(), pair_weights=w
            )

    def test_vectorized_rejects_unknown_routing(self, linear_4_2):
        with pytest.raises(EngineError):
            LoadEngine("vectorized").edge_loads(linear_4_2, AllMinimalPaths())

    def test_displacement_rejects_masked_routing(self, linear_4_2):
        masked = FaultMaskedRouting(OrderedDimensionalRouting(2), [0])
        with pytest.raises(EngineError):
            LoadEngine("displacement").edge_loads(linear_4_2, masked)

    def test_zero_path_pair_raises_load_error(self, torus_4_2):
        placement = Placement(torus_4_2, [0, 1])
        odr = OrderedDimensionalRouting(2)
        # node 0 = (0,0), node 1 = (0,1): the unique ODR path 0 -> 1 uses
        # the single +dim1 link out of node 0; failing it empties the set
        masked = FaultMaskedRouting(
            odr, [torus_4_2.edges.edge_id(0, 1, +1)], strict=False
        )
        with pytest.raises(LoadError):
            LoadEngine("reference").edge_loads(placement, masked)

    def test_resolve_engine_rejects_garbage(self):
        with pytest.raises(EngineError):
            resolve_engine(42)


class TestDefaultEngine:
    def test_default_is_auto(self):
        set_default_engine(None)
        assert get_default_engine().backend_name == "auto"

    def test_using_engine_restores(self):
        set_default_engine(None)
        before = get_default_engine()
        with using_engine("reference") as eng:
            assert eng.backend_name == "reference"
            assert get_default_engine() is eng
        assert get_default_engine() is before

    def test_using_engine_none_is_noop(self):
        set_default_engine("vectorized")
        try:
            with using_engine(None) as eng:
                assert eng.backend_name == "vectorized"
        finally:
            set_default_engine(None)

    def test_set_by_name(self):
        try:
            eng = set_default_engine("displacement")
            assert eng.backend_name == "displacement"
            assert get_default_engine() is eng
        finally:
            set_default_engine(None)

    def test_available_backends(self):
        names = available_backends()
        assert set(names) == {
            "auto",
            "reference",
            "vectorized",
            "fft",
            "displacement",
            "parallel",
        }

"""Unit tests for repro.routing.odr (and the paper's canonical path shape)."""

import pytest

from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus


class TestCanonicalPath:
    def test_single_path(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        paths = odr.paths(torus_5_2, (0, 0), (2, 3))
        assert len(paths) == 1
        assert odr.num_paths(torus_5_2, (0, 0), (2, 3)) == 1

    def test_path_is_minimal(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        p = odr.path(torus_5_2, (0, 0), (2, 3))
        assert p.length == torus_5_2.lee_distance((0, 0), (2, 3))

    def test_paper_node_sequence(self):
        # p -> (q1, p2, ..., pd) -> (q1, q2, p3, ...) -> ... -> q
        torus = Torus(5, 3)
        odr = OrderedDimensionalRouting(3)
        p, q = (0, 0, 0), (1, 1, 1)
        path = odr.path(torus, p, q)
        visited = [torus.coord(n) for n in path.nodes]
        assert (1, 0, 0) in visited
        assert (1, 1, 0) in visited
        assert visited[0] == p and visited[-1] == q

    def test_dimension_order_ascending(self, torus_5_2):
        odr = OrderedDimensionalRouting(2)
        path = odr.path(torus_5_2, (0, 0), (2, 2))
        dims = [torus_5_2.edges.decode(e).dim for e in path.edge_ids]
        assert dims == sorted(dims)

    def test_tie_corrects_plus(self):
        torus = Torus(4, 1)
        odr = OrderedDimensionalRouting(1)
        path = odr.path(torus, (0,), (2,))
        # + direction: 0 -> 1 -> 2
        assert [torus.coord(n)[0] for n in path.nodes] == [0, 1, 2]

    def test_self_path_empty(self, torus_4_2):
        odr = OrderedDimensionalRouting(2)
        assert odr.path(torus_4_2, (1, 1), (1, 1)).length == 0

    def test_wrong_dimensionality(self, torus_4_2):
        from repro.errors import RoutingError

        odr = OrderedDimensionalRouting(3)
        with pytest.raises(RoutingError):
            odr.path(torus_4_2, (0, 0), (1, 1))

    def test_name(self):
        assert OrderedDimensionalRouting(2).name == "ODR"

    def test_canonical_path_alias(self, torus_4_2):
        odr = OrderedDimensionalRouting(2)
        assert odr.canonical_path(torus_4_2, (0, 0), (1, 2)) == odr.path(
            torus_4_2, (0, 0), (1, 2)
        )

"""Unit tests for repro.core.report_md."""

from repro.core.analysis import analyze
from repro.core.designer import design_placement
from repro.core.report_md import analysis_report_md


class TestAnalysisReport:
    def test_contains_headline_figures(self):
        design = design_placement(6, 2, routing="odr")
        analysis = analyze(design.placement, design.routing)
        md = analysis_report_md(design, analysis)
        assert md.startswith("# Placement analysis")
        assert "E_max" in md
        assert "optimality ratio" in md
        assert "Theorem 1 two-cut: 24 directed edges" in md

    def test_bounds_rows_present_for_uniform(self):
        design = design_placement(6, 3, t=2, routing="udr")
        analysis = analyze(design.placement, design.routing)
        md = analysis_report_md(design, analysis)
        assert "Eq. 6 (Blaum)" in md
        assert "Sec. 4 (dimension-free)" in md
        assert "upper bound (Thm 3/5)" in md

    def test_markdown_tables_well_formed(self):
        design = design_placement(4, 2)
        analysis = analyze(design.placement, design.routing)
        md = analysis_report_md(design, analysis)
        for line in md.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

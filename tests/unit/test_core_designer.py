"""Unit tests for repro.core.designer."""

import math

import pytest

from repro.core.designer import design_placement
from repro.errors import InvalidParameterError
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting


class TestDesignPlacement:
    def test_linear_odr(self):
        d = design_placement(6, 3)
        assert d.size == 36
        assert d.t == 1
        assert isinstance(d.routing, OrderedDimensionalRouting)
        assert d.paths_per_pair_max == 1

    def test_multiple_udr(self):
        d = design_placement(6, 3, t=2, routing="udr")
        assert d.size == 72
        assert isinstance(d.routing, UnorderedDimensionalRouting)
        assert d.paths_per_pair_max == math.factorial(3)

    def test_predicted_upper_bounds(self):
        d_odr = design_placement(8, 2, t=2, routing="odr")
        assert d_odr.predicted_emax_upper == 4 * 8
        d_udr = design_placement(8, 2, t=2, routing="udr")
        assert d_udr.predicted_emax_upper == 4 * 2 * 8

    def test_lower_bound_value(self):
        d = design_placement(8, 3)
        assert d.lower_bound == pytest.approx(64**2 / (8 * 64))

    def test_offset(self):
        d = design_placement(5, 2, offset=2)
        sums = set((d.placement.coords().sum(axis=1) % 5).tolist())
        assert sums == {2}

    def test_case_insensitive_routing(self):
        assert isinstance(
            design_placement(4, 2, routing="UDR").routing,
            UnorderedDimensionalRouting,
        )

    def test_invalid_routing(self):
        with pytest.raises(InvalidParameterError):
            design_placement(4, 2, routing="xy")

    def test_invalid_t(self):
        with pytest.raises(InvalidParameterError):
            design_placement(4, 2, t=0)
        with pytest.raises(InvalidParameterError):
            design_placement(4, 2, t=4)

    def test_invalid_torus(self):
        with pytest.raises(InvalidParameterError):
            design_placement(1, 2)

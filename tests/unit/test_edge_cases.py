"""Cross-cutting edge-case tests: degenerate radii and dimensions.

``k = 2`` (parallel +/− links between every adjacent pair, every differing
coordinate a half-ring tie) and ``d = 1`` (a plain ring) stress every
assumption in the stack; these tests pin the behaviour end to end.
"""

import numpy as np

from repro.bisection.dimension_cut import best_dimension_cut
from repro.bisection.hyperplane import hyperplane_bisection
from repro.core.analysis import analyze
from repro.core.designer import design_placement
from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.network import SimNetwork
from repro.sim.workloads import complete_exchange_packets
from repro.torus.topology import Torus


class TestK2Torus:
    def test_linear_placement(self):
        torus = Torus(2, 3)
        p = linear_placement(torus)
        assert len(p) == 4
        assert np.all(p.coords().sum(axis=1) % 2 == 0)

    def test_odr_loads_all_plus_links(self):
        # every correction is a half-ring tie resolved to +: no − link used
        torus = Torus(2, 2)
        p = linear_placement(torus)
        loads = odr_edge_loads(p)
        ids = np.arange(torus.num_edges)
        _t, _d, signs = torus.edges.decode_arrays(ids)
        assert loads[signs < 0].sum() == 0.0

    def test_udr_matches_reference(self):
        torus = Torus(2, 3)
        p = linear_placement(torus)
        from repro.load.edge_loads import edge_loads_reference

        assert np.allclose(
            udr_edge_loads(p),
            edge_loads_reference(p, UnorderedDimensionalRouting()),
        )

    def test_design_and_analyze(self):
        design = design_placement(2, 3)
        an = analyze(design.placement, design.routing)
        assert an.emax >= an.bounds.best - 1e-9

    def test_simulator(self):
        torus = Torus(2, 2)
        p = linear_placement(torus)
        packets = complete_exchange_packets(
            p, OrderedDimensionalRouting(2), seed=0
        )
        res = CycleEngine(SimNetwork(torus)).run(packets)
        assert res.delivered == len(packets)


class TestD1Ring:
    def test_linear_placement_single_node(self):
        p = linear_placement(Torus(6, 1))
        assert len(p) == 1

    def test_two_node_ring_placement_loads(self):
        torus = Torus(6, 1)
        p = Placement(torus, [0, 3])
        loads = odr_edge_loads(p)
        # 0 -> 3 and 3 -> 0 both tie: both travel +, three hops each
        assert loads.sum() == 6
        assert loads.max() == 1.0

    def test_hyperplane_bisection_on_ring(self):
        torus = Torus(6, 1)
        p = Placement(torus, [0, 2, 3, 5])
        sweep = hyperplane_bisection(p)
        assert sweep.is_balanced

    def test_dimension_cut_on_ring(self):
        torus = Torus(6, 1)
        p = Placement(torus, [0, 3])
        cut = best_dimension_cut(p)
        assert cut.cut_size == 4  # 4 * k^0
        assert cut.is_balanced

    def test_udr_equals_odr_on_ring(self):
        # only one dimension: UDR degenerates to ODR exactly
        torus = Torus(7, 1)
        p = Placement(torus, [0, 2, 5])
        assert np.allclose(odr_edge_loads(p), udr_edge_loads(p))


class TestMinimalPlacements:
    def test_two_processor_analysis(self):
        torus = Torus(5, 2)
        p = Placement(torus, [0, 12])
        an = analyze(p, OrderedDimensionalRouting(2))
        assert an.emax == 1.0
        assert an.emax >= an.bounds.best - 1e-9

    def test_single_processor_loads_zero(self):
        torus = Torus(4, 2)
        p = Placement(torus, [7])
        assert odr_edge_loads(p).sum() == 0
        assert udr_edge_loads(p).sum() == 0

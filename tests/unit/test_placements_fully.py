"""Unit tests for repro.placements.fully."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.analysis import is_uniform, uniform_dimensions
from repro.placements.fully import (
    FullyPopulatedFamily,
    block_placement,
    fully_populated_placement,
    single_subtorus_placement,
)


class TestFullyPopulated:
    def test_size(self, torus_4_3):
        assert len(fully_populated_placement(torus_4_3)) == 64

    def test_uniform(self, torus_4_2):
        assert is_uniform(fully_populated_placement(torus_4_2))

    def test_family(self):
        fam = FullyPopulatedFamily()
        assert fam.expected_size(4, 3) == 64
        assert len(fam.build(4, 3)) == 64
        assert fam.is_uniform_by_construction()


class TestBlockPlacement:
    def test_size(self, torus_4_2):
        assert len(block_placement(torus_4_2, 2)) == 4

    def test_membership(self, torus_4_2):
        p = block_placement(torus_4_2, 2)
        for c in p.coords().tolist():
            assert max(c) <= 1

    def test_not_uniform(self, torus_4_2):
        assert not is_uniform(block_placement(torus_4_2, 2))

    def test_full_side_is_everything(self, torus_4_2):
        assert len(block_placement(torus_4_2, 4)) == 16

    def test_invalid_side(self, torus_4_2):
        with pytest.raises(InvalidParameterError):
            block_placement(torus_4_2, 0)
        with pytest.raises(InvalidParameterError):
            block_placement(torus_4_2, 5)


class TestSingleSubtorus:
    def test_size_matches_linear(self, torus_4_3):
        assert len(single_subtorus_placement(torus_4_3)) == 16

    def test_uniform_only_off_axis(self, torus_4_3):
        p = single_subtorus_placement(torus_4_3, dim=0)
        dims = uniform_dimensions(p)
        assert 0 not in dims
        assert set(dims) == {1, 2}

    def test_nonzero_value(self, torus_4_2):
        p = single_subtorus_placement(torus_4_2, dim=1, value=2)
        assert all(c[1] == 2 for c in p.coords().tolist())

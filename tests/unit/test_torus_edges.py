"""Unit tests for repro.torus.edges."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.torus.edges import EdgeIndex


@pytest.fixture
def ei() -> EdgeIndex:
    return EdgeIndex(4, 2)


class TestEncodingDecoding:
    def test_id_layout(self, ei):
        assert ei.edge_id(0, 0, +1) == 0
        assert ei.edge_id(0, 0, -1) == 1
        assert ei.edge_id(0, 1, +1) == 2
        assert ei.edge_id(1, 0, +1) == 4

    def test_roundtrip_all(self, ei):
        for eid in range(ei.num_edges):
            e = ei.decode(eid)
            assert ei.edge_id(e.tail, e.dim, e.sign) == eid

    def test_decode_out_of_range(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.decode(ei.num_edges)
        with pytest.raises(InvalidParameterError):
            ei.decode(-1)

    def test_bad_sign(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.edge_id(0, 0, 2)

    def test_bad_dim(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.edge_id(0, 2, 1)

    def test_bad_node(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.edge_id(16, 0, 1)

    def test_decode_arrays_matches_scalar(self, ei):
        ids = np.arange(ei.num_edges)
        tails, dims, signs = ei.decode_arrays(ids)
        for eid in range(0, ei.num_edges, 7):
            e = ei.decode(eid)
            assert tails[eid] == e.tail
            assert dims[eid] == e.dim
            assert signs[eid] == e.sign


class TestNeighborStep:
    def test_plus_wraps(self, ei):
        # node (0, 3) + dim1 -> (0, 0)
        n_33 = 0 * 4 + 3
        assert ei.neighbor(n_33, 1, +1) == 0

    def test_minus_wraps(self, ei):
        assert ei.neighbor(0, 0, -1) == 3 * 4 + 0

    def test_array_matches_scalar(self, ei):
        ids = np.arange(ei.num_nodes)
        for dim in range(2):
            for sign in (+1, -1):
                arr = ei.neighbors_array(ids, dim, sign)
                for u in range(ei.num_nodes):
                    assert arr[u] == ei.neighbor(u, dim, sign)

    def test_step_coords_does_not_mutate(self, ei):
        coords = np.array([[0, 0], [1, 3]])
        out = ei.step_coords(coords, 1, +1)
        assert coords.tolist() == [[0, 0], [1, 3]]
        assert out.tolist() == [[0, 1], [1, 0]]


class TestEdgeBetween:
    def test_adjacent(self, ei):
        eid = ei.edge_between(0, 1)
        e = ei.decode(eid)
        assert (e.tail, e.head, e.dim, e.sign) == (0, 1, 1, 1)

    def test_wraparound(self, ei):
        n_03 = 3
        eid = ei.edge_between(n_03, 0)
        e = ei.decode(eid)
        assert e.sign == +1 and e.dim == 1

    def test_not_adjacent(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.edge_between(0, 5)  # diagonal

    def test_two_apart_same_dim(self, ei):
        with pytest.raises(InvalidParameterError):
            ei.edge_between(0, 2)


class TestReverseAndEnumeration:
    def test_reverse_involution(self, ei):
        for eid in range(ei.num_edges):
            assert ei.reverse(ei.reverse(eid)) == eid

    def test_reverse_swaps_endpoints(self, ei):
        e = ei.decode(10)
        r = ei.decode(ei.reverse(10))
        assert (r.tail, r.head) == (e.head, e.tail)

    def test_all_edges_count(self, ei):
        assert ei.all_edges().size == ei.num_edges

    def test_undirected_pairs_cover(self, ei):
        plus = ei.undirected_pair_ids()
        assert plus.size == ei.num_edges // 2
        partners = np.array([ei.reverse(int(e)) for e in plus])
        both = np.sort(np.concatenate([plus, partners]))
        assert np.array_equal(both, np.arange(ei.num_edges))

    def test_edge_ids_array_matches_scalar(self, ei):
        nodes = np.array([0, 3, 7])
        dims = np.array([0, 1, 1])
        signs = np.array([1, -1, 1])
        out = ei.edge_ids_array(nodes, dims, signs)
        expected = [ei.edge_id(int(n), int(d), int(s)) for n, d, s in zip(nodes, dims, signs)]
        assert out.tolist() == expected

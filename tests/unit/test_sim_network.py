"""Unit tests for repro.sim.network."""

import pytest

from repro.errors import SimulationError
from repro.sim.network import SimNetwork


class TestSimNetwork:
    def test_all_alive_by_default(self, torus_4_2):
        net = SimNetwork(torus_4_2)
        assert net.num_failed == 0
        assert net.alive.all()

    def test_failures_marked(self, torus_4_2):
        net = SimNetwork(torus_4_2, failed_edge_ids=[0, 5])
        assert net.num_failed == 2
        assert not net.alive[0] and not net.alive[5]

    def test_invalid_failure_id(self, torus_4_2):
        with pytest.raises(SimulationError):
            SimNetwork(torus_4_2, failed_edge_ids=[torus_4_2.num_edges])

    def test_check_path_alive(self, torus_4_2):
        net = SimNetwork(torus_4_2, failed_edge_ids=[3])
        assert net.check_path_alive([0, 1, 2])
        assert not net.check_path_alive([2, 3])

    def test_record_traversal(self, torus_4_2):
        net = SimNetwork(torus_4_2)
        net.record_traversal(7)
        net.record_traversal(7)
        assert net.link_counts[7] == 2

    def test_traversal_of_failed_link_rejected(self, torus_4_2):
        net = SimNetwork(torus_4_2, failed_edge_ids=[7])
        with pytest.raises(SimulationError):
            net.record_traversal(7)

"""Unit tests for the mixed-radix torus generalization."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.mixedradix import (
    MixedPlacement,
    MixedTorus,
    lcm_linear_placement,
    mixed_dimension_cut,
    mixed_linear_placement,
    mixed_odr_edge_loads,
)
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


class TestMixedTorus:
    def test_counts(self):
        t = MixedTorus((4, 6, 8))
        assert t.num_nodes == 192
        assert t.num_edges == 2 * 3 * 192
        assert t.d == 3

    def test_invalid_shape(self):
        with pytest.raises(InvalidParameterError):
            MixedTorus(())
        with pytest.raises(InvalidParameterError):
            MixedTorus((4, 1))

    def test_coord_roundtrip(self):
        t = MixedTorus((3, 5, 2))
        ids = np.arange(t.num_nodes)
        assert np.array_equal(t.node_ids(t.coords(ids)), ids)

    def test_coords_reduced_modulo_shape(self):
        t = MixedTorus((3, 5))
        assert t.node_ids([(4, 7)])[0] == t.node_ids([(1, 2)])[0]

    def test_out_of_range_id(self):
        t = MixedTorus((3, 3))
        with pytest.raises(InvalidParameterError):
            t.coords([9])

    def test_lee_distance_per_dimension_radix(self):
        t = MixedTorus((4, 10))
        # dim 0 wraps at 4 (distance 1), dim 1 wraps at 10 (distance 3)
        assert t.lee_distance((0, 0), (3, 7)) == 1 + 3

    def test_minimal_corrections_tie_plus(self):
        t = MixedTorus((4, 6))
        delta = t.minimal_corrections(
            np.array([[0, 0]]), np.array([[2, 3]])
        )
        assert delta.tolist() == [[2, 3]]  # both half-ring ties -> +

    def test_layer_counts(self):
        t = MixedTorus((2, 3))
        counts = t.layer_counts(np.arange(6), 1)
        assert counts.tolist() == [2, 2, 2]

    def test_equality(self):
        assert MixedTorus((4, 6)) == MixedTorus((4, 6))
        assert MixedTorus((4, 6)) != MixedTorus((6, 4))


class TestMixedLinearPlacement:
    def test_size_law_gcd(self):
        t = MixedTorus((4, 8))
        p = mixed_linear_placement(t)
        assert len(p) == 32 // 4

    def test_membership(self):
        t = MixedTorus((4, 6))
        p = mixed_linear_placement(t)  # gcd = 2
        assert np.all(p.coords().sum(axis=1) % 2 == 0)

    def test_uniform(self):
        assert mixed_linear_placement(MixedTorus((4, 6, 8))).is_uniform()

    def test_modulus_must_divide(self):
        with pytest.raises(InvalidParameterError):
            mixed_linear_placement(MixedTorus((4, 6)), modulus=4)

    def test_coprime_radii_rejected(self):
        with pytest.raises(InvalidParameterError):
            mixed_linear_placement(MixedTorus((3, 4)))  # gcd 1

    def test_coefficient_coprimality_enforced(self):
        with pytest.raises(InvalidParameterError):
            mixed_linear_placement(
                MixedTorus((4, 8)), modulus=4, coefficients=[2, 1]
            )

    def test_offset_classes_partition(self):
        t = MixedTorus((4, 8))
        all_ids = np.concatenate(
            [mixed_linear_placement(t, offset=c).node_ids for c in range(4)]
        )
        assert np.array_equal(np.sort(all_ids), np.arange(32))


class TestLcmPlacement:
    def test_size_law(self):
        t = MixedTorus((4, 6))
        assert len(lcm_linear_placement(t)) == 24 // math.lcm(4, 6)

    def test_square_equals_paper_linear(self):
        t = MixedTorus((5, 5))
        p = lcm_linear_placement(t)
        assert np.all(p.coords().sum(axis=1) % 5 == 0)
        assert len(p) == 5

    def test_flat_load_ratio(self):
        for shape in [(4, 8), (4, 12), (6, 12)]:
            t = MixedTorus(shape)
            p = lcm_linear_placement(t)
            ratio = float(mixed_odr_edge_loads(p).max()) / len(p)
            assert ratio == pytest.approx(0.5)


class TestMixedLoads:
    def test_conservation(self):
        # coprime radii: no linear placement exists, use an ad-hoc one
        t = MixedTorus((3, 4))
        p = MixedPlacement(t, [0, 5, 7, 10])
        loads = mixed_odr_edge_loads(p)
        coords = p.coords()
        m = len(p)
        lee = sum(
            t.lee_distance(coords[i], coords[j])
            for i in range(m)
            for j in range(m)
            if i != j
        )
        assert loads.sum() == pytest.approx(lee)

    def test_square_matches_uniform_engine(self):
        mixed = MixedTorus((4, 4))
        p_mixed = mixed_linear_placement(mixed, modulus=4)
        ref = odr_edge_loads(linear_placement(Torus(4, 2)))
        assert np.allclose(mixed_odr_edge_loads(p_mixed), ref)

    def test_nonnegative(self):
        t = MixedTorus((4, 6))
        loads = mixed_odr_edge_loads(mixed_linear_placement(t))
        assert np.all(loads >= 0)


class TestMixedDimensionCut:
    def test_cut_size_cross_section(self):
        t = MixedTorus((4, 8))
        p = mixed_linear_placement(t)
        cut = mixed_dimension_cut(p, dim=1)
        assert cut.cut_size == 4 * 4  # cross-section of dim 1 is 4

    def test_balanced_for_uniform(self):
        p = mixed_linear_placement(MixedTorus((4, 6, 8)))
        assert mixed_dimension_cut(p).is_balanced

    def test_best_dim_prefers_smallest_cut(self):
        p = mixed_linear_placement(MixedTorus((4, 8)))
        cut = mixed_dimension_cut(p)
        # both dims balance; the dim-1 cut (cross-section 4) is cheaper
        assert cut.dim == 1

    def test_bad_dim(self):
        p = mixed_linear_placement(MixedTorus((4, 8)))
        with pytest.raises(InvalidParameterError):
            mixed_dimension_cut(p, dim=2)


class TestMixedPlacementValidation:
    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixedPlacement(MixedTorus((3, 3)), [])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixedPlacement(MixedTorus((3, 3)), [9])

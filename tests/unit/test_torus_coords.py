"""Unit tests for repro.torus.coords."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.torus.coords import (
    all_coords,
    coord_tuple,
    coords_to_ids,
    ids_to_coords,
    normalize_coords,
)


class TestNormalizeCoords:
    def test_single_tuple(self):
        out = normalize_coords((1, 2), 4, 2)
        assert out.shape == (1, 2)

    def test_reduces_modulo(self):
        out = normalize_coords((5, -1), 4, 2)
        assert out.tolist() == [[1, 3]]

    def test_wrong_width(self):
        with pytest.raises(InvalidParameterError):
            normalize_coords((1, 2, 3), 4, 2)


class TestRoundTrip:
    @pytest.mark.parametrize("k,d", [(2, 1), (3, 2), (4, 3), (5, 2)])
    def test_ids_to_coords_to_ids(self, k, d):
        ids = np.arange(k**d)
        coords = ids_to_coords(ids, k, d)
        assert np.array_equal(coords_to_ids(coords, k, d), ids)

    def test_c_order_convention(self):
        # id = a1*k^(d-1) + ... + ad
        assert coords_to_ids((1, 2), 4, 2)[0] == 1 * 4 + 2
        assert coords_to_ids((2, 1, 3), 4, 3)[0] == 2 * 16 + 1 * 4 + 3

    def test_scalar_id_decodes_to_1d(self):
        out = ids_to_coords(5, 4, 2)
        assert out.shape == (2,)
        assert out.tolist() == [1, 1]

    def test_out_of_range_id(self):
        with pytest.raises(InvalidParameterError):
            ids_to_coords(16, 4, 2)
        with pytest.raises(InvalidParameterError):
            ids_to_coords(-1, 4, 2)


class TestAllCoords:
    def test_shape(self):
        assert all_coords(3, 2).shape == (9, 2)

    def test_row_i_is_node_i(self):
        coords = all_coords(3, 3)
        ids = coords_to_ids(coords, 3, 3)
        assert np.array_equal(ids, np.arange(27))

    def test_values_in_range(self):
        coords = all_coords(5, 2)
        assert coords.min() == 0 and coords.max() == 4


class TestCoordTuple:
    def test_from_array(self):
        assert coord_tuple(np.array([1, 2])) == (1, 2)

    def test_hashable(self):
        assert hash(coord_tuple([0, 1])) == hash((0, 1))

"""Unit tests for repro.placements.multiple."""

import pytest

from repro.errors import InvalidParameterError
from repro.placements.analysis import is_uniform
from repro.placements.linear import linear_placement
from repro.placements.multiple import (
    MultipleLinearPlacementFamily,
    multiple_linear_placement,
)
from repro.torus.topology import Torus


class TestMultipleLinear:
    def test_size_law(self):
        torus = Torus(6, 3)
        for t in (1, 2, 3):
            assert len(multiple_linear_placement(torus, t)) == t * 36

    def test_t1_equals_linear(self):
        torus = Torus(5, 2)
        assert multiple_linear_placement(torus, 1) == linear_placement(torus)

    def test_classes_disjoint_union(self):
        torus = Torus(4, 2)
        p = multiple_linear_placement(torus, 2)
        sums = p.coords().sum(axis=1) % 4
        assert set(sums.tolist()) == {0, 1}

    def test_base_offset(self):
        torus = Torus(5, 2)
        p = multiple_linear_placement(torus, 2, base_offset=3)
        sums = set((p.coords().sum(axis=1) % 5).tolist())
        assert sums == {3, 4}

    def test_uniform(self):
        assert is_uniform(multiple_linear_placement(Torus(6, 3), 3))

    def test_t_equals_k_is_full(self):
        torus = Torus(3, 2)
        p = multiple_linear_placement(torus, 3)
        assert len(p) == torus.num_nodes

    def test_invalid_t(self):
        torus = Torus(4, 2)
        with pytest.raises(InvalidParameterError):
            multiple_linear_placement(torus, 0)
        with pytest.raises(InvalidParameterError):
            multiple_linear_placement(torus, 5)


class TestFamily:
    def test_expected_size(self):
        assert MultipleLinearPlacementFamily(2).expected_size(6, 3) == 72

    def test_build(self):
        fam = MultipleLinearPlacementFamily(2)
        assert len(fam.build(4, 2)) == 8

    def test_invalid_t(self):
        with pytest.raises(InvalidParameterError):
            MultipleLinearPlacementFamily(0)

"""Tests for the whole-program semantic analyzer and rules RL011-RL015.

Covers the semantics package itself (resolver, project canonicalization,
CFG/reaching definitions, taint engine, scope analysis), true-positive
and false-positive fixtures for each new rule family, the resolver
retrofits of RL004/RL009/RL010, the RL006/RL007 autofixer (idempotence
included), the findings-baseline ratchet, multiline noqa spans, and the
JSON reporter round-trip.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    Finding,
    LintReport,
    lint_file,
    lint_paths,
)
from repro.devtools.lint.autofix import fix_paths
from repro.devtools.lint.baseline import (
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.reporters import parse_json, render_json
from repro.devtools.lint.semantics import (
    ControlFlowGraph,
    FunctionScopes,
    GlobalUsage,
    ImportResolver,
    Project,
    ReachingDefinitions,
    TaintAnalysis,
    module_name_for_path,
    run_taint,
)


def _lint_snippet(tmp_path: Path, rel_path: str, source: str):
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return lint_file(target)


def _codes(findings) -> set[str]:
    return {f.code for f in findings}


def _resolve(source: str, expr: str, module: str = "repro.demo") -> str | None:
    resolver = ImportResolver(ast.parse(source), module_name=module)
    return resolver.qualified_name(ast.parse(expr, mode="eval").body)


# ------------------------------------------------------------- resolver


class TestImportResolver:
    def test_plain_import_binds_top_name(self):
        assert _resolve("import numpy\n", "numpy.fft.rfft") == "numpy.fft.rfft"

    def test_aliased_import(self):
        assert _resolve("import numpy as np\n", "np.random.rand") == (
            "numpy.random.rand"
        )

    def test_from_import_with_rename(self):
        source = "from repro.load.engine import fft as f\n"
        assert _resolve(source, "f.FFTBackend") == (
            "repro.load.engine.fft.FFTBackend"
        )

    def test_relative_import_resolves_against_module(self):
        source = "from .engine import fft\n"
        resolver = ImportResolver(
            ast.parse(source), module_name="repro.load.helpers"
        )
        node = ast.parse("fft", mode="eval").body
        assert resolver.qualified_name(node) == "repro.load.engine.fft"

    def test_package_relative_import(self):
        source = "from .facade import LoadEngine\n"
        resolver = ImportResolver(
            ast.parse(source),
            module_name="repro.load.engine",
            is_package=True,
        )
        node = ast.parse("LoadEngine", mode="eval").body
        assert resolver.qualified_name(node) == (
            "repro.load.engine.facade.LoadEngine"
        )

    def test_module_level_alias_assignment(self):
        source = "import numpy as np\nrand = np.random.rand\n"
        assert _resolve(source, "rand") == "numpy.random.rand"

    def test_unresolvable_local(self):
        assert _resolve("import numpy\n", "local_var") is None

    def test_module_name_for_path(self):
        assert module_name_for_path(
            Path("src/repro/load/engine/fft.py")
        ) == "repro.load.engine.fft"
        assert module_name_for_path(
            Path("src/repro/load/engine/__init__.py")
        ) == "repro.load.engine"


class TestProject:
    def _project(self) -> Project:
        return Project.build(
            [
                (
                    Path("src/repro/load/engine/__init__.py"),
                    ast.parse("from repro.load.engine.facade import LoadEngine\n"),
                ),
                (
                    Path("src/repro/load/engine/facade.py"),
                    ast.parse("class LoadEngine:\n    pass\n"),
                ),
            ]
        )

    def test_canonical_chases_reexport(self):
        assert self._project().canonical("repro.load.engine.LoadEngine") == (
            "repro.load.engine.facade.LoadEngine"
        )

    def test_canonical_identity_for_defining_module(self):
        qname = "repro.load.engine.facade.LoadEngine"
        assert self._project().canonical(qname) == qname

    def test_import_graph_and_importers(self):
        project = self._project()
        graph = project.import_graph
        assert graph["repro.load.engine"] == ("repro.load.engine.facade",)
        assert project.importers_of("repro.load.engine.facade") == (
            "repro.load.engine",
        )


# ------------------------------------------------------ CFG / dataflow


class TestControlFlow:
    def test_reaching_definitions_through_branches(self):
        func = ast.parse(
            "def f(n):\n"
            "    x = 1\n"
            "    if n:\n"
            "        x = 2\n"
            "    else:\n"
            "        x = 3\n"
            "    return x\n"
        ).body[0]
        cfg = ControlFlowGraph.for_function(func)
        reaching = ReachingDefinitions(cfg)
        ret = next(u for _, u in cfg.iter_units() if isinstance(u, ast.Return))
        # both branch assignments reach; the initial x = 1 is killed
        assert len(reaching.before(ret)["x"]) == 2

    def test_loop_body_definition_reaches_header(self):
        func = ast.parse(
            "def f(items):\n"
            "    acc = 0\n"
            "    for item in items:\n"
            "        acc = acc + item\n"
            "    return acc\n"
        ).body[0]
        cfg = ControlFlowGraph.for_function(func)
        reaching = ReachingDefinitions(cfg)
        ret = next(u for _, u in cfg.iter_units() if isinstance(u, ast.Return))
        assert len(reaching.before(ret)["acc"]) == 2


class _SetSpec:
    """set() is tainted; sorted() launders; journal.record is the sink."""

    def source(self, node, resolve):
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )

    def sanitizer(self, call, resolve):
        return isinstance(call.func, ast.Name) and call.func.id == "sorted"

    def sink(self, call, resolve):
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "record"
        ):
            return "journal"
        return None


class TestTaintEngine:
    def test_flow_through_loop_and_container_mutation(self):
        func = ast.parse(
            "def f(journal, xs):\n"
            "    names = set(xs)\n"
            "    acc = []\n"
            "    for name in names:\n"
            "        acc.append(name)\n"
            "    journal.record(acc)\n"
        ).body[0]
        hits = run_taint(func, _SetSpec(), lambda n: None)
        assert len(hits) == 1
        assert hits[0].label == "journal"

    def test_sanitizer_cuts_the_chain(self):
        func = ast.parse(
            "def f(journal, xs):\n"
            "    names = sorted(set(xs))\n"
            "    journal.record(names)\n"
        ).body[0]
        assert run_taint(func, _SetSpec(), lambda n: None) == []

    def test_reassignment_strong_update_clears_taint(self):
        func = ast.parse(
            "def f(journal, xs):\n"
            "    names = set(xs)\n"
            "    names = sorted(names)\n"
            "    journal.record(names)\n"
        ).body[0]
        assert run_taint(func, _SetSpec(), lambda n: None) == []

    def test_comprehension_iteration_carries_taint(self):
        func = ast.parse(
            "def f(journal, xs):\n"
            "    names = set(xs)\n"
            "    journal.record([n for n in names])\n"
        ).body[0]
        assert len(run_taint(func, _SetSpec(), lambda n: None)) == 1

    def test_taint_of_return_expression(self):
        class DivSpec:
            def source(self, node, resolve):
                return isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.Div
                )

            def sanitizer(self, call, resolve):
                return (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "snap"
                )

            def sink(self, call, resolve):
                return None

        func = ast.parse(
            "def f(w, n):\n"
            "    x = w / n\n"
            "    return x\n"
        ).body[0]
        analysis = TaintAnalysis(func, DivSpec(), lambda n: None)
        ret = next(
            u for _, u in analysis.iter_units() if isinstance(u, ast.Return)
        )
        assert analysis.taint_of(ret, ret.value)


class TestScopeAnalysis:
    SOURCE = (
        "_STATE = {}\n"
        "def _init(payload):\n"
        "    global _STATE\n"
        "    _STATE = dict(payload)\n"
        "def worker(x):\n"
        "    return _STATE, x\n"
        "def pure(x):\n"
        "    return x + 1\n"
        "def outer():\n"
        "    def inner():\n"
        "        pass\n"
        "    return inner\n"
    )

    def test_global_usage(self):
        usage = GlobalUsage(ast.parse(self.SOURCE))
        assert usage.mutated_globals() == frozenset({"_STATE"})
        assert usage.reads("worker") == frozenset({"_STATE"})
        assert usage.reads("pure") == frozenset()
        assert usage.writes("_init") == frozenset({"_STATE"})
        assert usage.mutators_of("_STATE") == ("_init",)

    def test_nested_function_detection(self):
        tree = ast.parse(self.SOURCE)
        scopes = FunctionScopes(tree)
        funcs = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert scopes.is_nested(funcs["inner"])
        assert not scopes.is_nested(funcs["worker"])
        assert "inner" not in scopes.module_functions


# --------------------------------------------------------------- RL011


class TestRL011AmbientRNG:
    def test_flags_numpy_default_rng(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "import numpy as np\n\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n",
        )
        assert "RL011" in _codes(findings)

    def test_flags_renamed_random_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "from random import shuffle as mix\n\n"
            "def f(xs):\n"
            "    mix(xs)\n"
            "    return xs\n",
        )
        assert "RL011" in _codes(findings)

    def test_clean_resolve_rng_and_generator_classes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/sim/mod.py",
            "import numpy as np\n"
            "from repro.util.rng import resolve_rng\n\n"
            "def f(seed):\n"
            "    rng = resolve_rng(seed)\n"
            "    bitgen = np.random.PCG64(seed)\n"
            "    return rng, bitgen\n",
        )
        assert "RL011" not in _codes(findings)

    def test_rng_module_itself_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/util/rng.py",
            "import numpy as np\n\n"
            "def resolve_rng(seed):\n"
            "    return np.random.default_rng(seed)\n",
        )
        assert "RL011" not in _codes(findings)

    def test_tests_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "tests/unit/test_mod.py",
            "import random\n\n"
            "def test_f():\n"
            "    assert random.random() >= 0\n",
        )
        assert "RL011" not in _codes(findings)


# --------------------------------------------------------------- RL012


class TestRL012NondetIteration:
    def test_flags_set_iteration_into_journal_record(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(journal, task_id, xs):\n"
            "    names = set(xs)\n"
            "    acc = []\n"
            "    for name in names:\n"
            "        acc.append(name)\n"
            "    journal.record(task_id, acc)\n",
        )
        assert "RL012" in _codes(findings)

    def test_flags_listdir_into_fingerprint(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import os\n\n"
            "def f(root):\n"
            "    entries = os.listdir(root)\n"
            "    return compute_fingerprint(entries)\n",
        )
        assert "RL012" in _codes(findings)

    def test_sorted_launders(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import os\n\n"
            "def f(journal, task_id, root):\n"
            "    names = sorted(set(os.listdir(root)))\n"
            "    journal.record(task_id, names)\n",
        )
        assert "RL012" not in _codes(findings)

    def test_order_insensitive_aggregate_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(metrics, xs):\n"
            "    names = set(xs)\n"
            "    metrics.record(len(names))\n",
        )
        assert "RL012" not in _codes(findings)

    def test_plain_dict_iteration_not_a_source(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(journal, task_id, table):\n"
            "    acc = [k for k in table]\n"
            "    journal.record(task_id, acc)\n",
        )
        assert "RL012" not in _codes(findings)


# --------------------------------------------------------------- RL013


class TestRL013ExactnessTaint:
    def test_flags_unsnapped_division_reaching_return(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def my_edge_loads(pairs, paths):\n"
            "    loads = {}\n"
            "    for e in pairs:\n"
            "        loads[e] = 1.0 / len(paths)\n"
            "    return loads\n",
        )
        assert "RL013" in _codes(findings)

    def test_snap_loads_sanitizes(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "from repro.load.quantize import snap_loads\n\n"
            "def my_edge_loads(pairs, paths, q):\n"
            "    loads = {}\n"
            "    for e in pairs:\n"
            "        loads[e] = 1.0 / len(paths)\n"
            "    loads = snap_loads(loads, q)\n"
            "    return loads\n",
        )
        assert "RL013" not in _codes(findings)

    def test_only_edge_loads_functions_are_checked(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/load/mod.py",
            "def helper(w, n):\n"
            "    return w / n\n",
        )
        assert "RL013" not in _codes(findings)

    def test_outside_load_package_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/viz/mod.py",
            "def plot_edge_loads(w, n):\n"
            "    return w / n\n",
        )
        assert "RL013" not in _codes(findings)


# --------------------------------------------------------------- RL014


class TestRL014WorkerPurity:
    def test_flags_lambda_worker(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.exec import ResilientExecutor\n\n"
            "def f(jobs):\n"
            "    return ResilientExecutor(lambda j: j + 1, jobs)\n",
        )
        assert "RL014" in _codes(findings)

    def test_flags_nested_function_worker(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.exec import ResilientExecutor\n\n"
            "def f(jobs):\n"
            "    def worker(j):\n"
            "        return j\n"
            "    return ResilientExecutor(worker, jobs)\n",
        )
        assert "RL014" in _codes(findings)

    def test_flags_mutated_global_reader_without_initializer(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.exec import ResilientExecutor\n\n"
            "_STATE = {}\n\n"
            "def _install(payload):\n"
            "    global _STATE\n"
            "    _STATE = dict(payload)\n\n"
            "def _worker(j):\n"
            "    return _STATE, j\n\n"
            "def f(jobs):\n"
            "    return ResilientExecutor(_worker, jobs)\n",
        )
        assert "RL014" in _codes(findings)

    def test_sanctioned_initializer_pattern_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.exec import ResilientExecutor\n\n"
            "_STATE = {}\n\n"
            "def _install(payload):\n"
            "    global _STATE\n"
            "    _STATE = dict(payload)\n\n"
            "def _worker(j):\n"
            "    return _STATE, j\n\n"
            "def f(jobs, payload):\n"
            "    return ResilientExecutor(\n"
            "        _worker, jobs, initializer=_install, initargs=(payload,)\n"
            "    )\n",
        )
        assert "RL014" not in _codes(findings)

    def test_pure_module_worker_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.exec import ResilientExecutor\n\n"
            "def _worker(j):\n"
            "    return j * 2\n\n"
            "def f(jobs):\n"
            "    return ResilientExecutor(_worker, jobs)\n",
        )
        assert "RL014" not in _codes(findings)


# --------------------------------------------------------------- RL015


class TestRL015SpanHygiene:
    def test_flags_span_assigned_to_variable(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(tracer, n):\n"
            "    span = tracer.span('work', n=n)\n"
            "    return n\n",
        )
        assert "RL015" in _codes(findings)

    def test_flags_discarded_span_on_current_tracer(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from repro.obs import current_tracer\n\n"
            "def f(n):\n"
            "    current_tracer().span('loose')\n"
            "    return n\n",
        )
        assert "RL015" in _codes(findings)

    def test_with_statement_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(tracer, n):\n"
            "    with tracer.span('work', n=n):\n"
            "        return n + 1\n",
        )
        assert "RL015" not in _codes(findings)

    def test_chained_with_item_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(tracer, n):\n"
            "    with tracer.span('work').annotate(n=n):\n"
            "        return n + 1\n",
        )
        assert "RL015" not in _codes(findings)

    def test_non_tracer_span_method_ignored(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(layout, n):\n"
            "    cell = layout.span(n)\n"
            "    return cell\n",
        )
        assert "RL015" not in _codes(findings)


# ------------------------------------------------------- rule retrofits


class TestResolverRetrofits:
    def test_rl004_sees_through_renamed_oracle_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/viz/mod.py",
            "from repro.load.edge_loads import edge_loads_reference as oracle\n\n"
            "def f(p, r):\n"
            "    return oracle(p, r)\n",
        )
        assert "RL004" in _codes(findings)

    def test_rl004_unrelated_name_resolved_elsewhere_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/viz/mod.py",
            "from repro.viz.palette import ReferenceBackend\n\n"
            "def f():\n"
            "    return ReferenceBackend()\n",
        )
        assert "RL004" not in _codes(findings)

    def test_rl009_sees_get_context_pool(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import multiprocessing as mp\n\n"
            "def f():\n"
            "    return mp.get_context('spawn').Pool()\n",
        )
        assert "RL009" in _codes(findings)

    def test_rl009_renamed_executor_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from concurrent.futures import ProcessPoolExecutor as PoolCls\n\n"
            "def f():\n"
            "    return PoolCls(max_workers=2)\n",
        )
        assert "RL009" in _codes(findings)

    def test_rl010_bare_name_bound_to_wall_clock(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from time import time as now\n\n"
            "def f(record):\n"
            "    record(stamp=now)\n",
        )
        assert "RL010" in _codes(findings)

    def test_rl010_perf_counter_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import time\n\n"
            "def f():\n"
            "    return time.perf_counter()\n",
        )
        assert "RL010" not in _codes(findings)


# --------------------------------------------- RL007 factory extension


class TestRL007FactoryExtension:
    def test_flags_attribute_form_defaultdict(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import collections\n\n"
            "def f(acc=collections.defaultdict(list)):\n"
            "    return acc\n",
        )
        assert "RL007" in _codes(findings)

    def test_flags_imported_deque(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from collections import deque\n\n"
            "def f(q=deque()):\n"
            "    return q\n",
        )
        assert "RL007" in _codes(findings)

    def test_flags_tuple_containing_mutables(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(pair=([], {})):\n"
            "    return pair\n",
        )
        assert "RL007" in _codes(findings)

    def test_plain_tuple_of_constants_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def f(shape=(2, 3)):\n"
            "    return shape\n",
        )
        assert "RL007" not in _codes(findings)

    def test_namedtuple_style_factory_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "import collections\n\n"
            "def f(point=collections.namedtuple('P', 'x y')(0, 0)):\n"
            "    return point\n",
        )
        assert "RL007" not in _codes(findings)


# --------------------------------------------------- multiline noqa


class TestMultilineNoqa:
    def test_pragma_on_decorator_suppresses_def_finding(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def deco(f):\n"
            "    return f\n\n\n"
            "@deco  # repro: noqa(RL007)\n"
            "def f(acc=[]):\n"
            "    return acc\n",
        )
        assert "RL007" not in _codes(findings)

    def test_pragma_inside_parenthesized_import(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "from collections import (\n"
            "    OrderedDict,  # repro: noqa(RL006)\n"
            "    deque,\n"
            ")\n\n"
            "def f():\n"
            "    return deque()\n",
        )
        assert "RL006" not in _codes(findings)

    def test_pragma_does_not_blanket_the_body(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "repro/exp/mod.py",
            "def deco(f):\n"
            "    return f\n\n\n"
            "@deco  # repro: noqa(RL007)\n"
            "def f(n):\n"
            "    acc = []\n"
            "    def g(xs=[]):\n"
            "        return xs\n"
            "    return acc, g\n",
        )
        # the nested def's own mutable default is NOT under the header span
        assert "RL007" in _codes(findings)


# ------------------------------------------------------------- autofix


class TestAutofix:
    FIXTURE = (
        '"""Demo."""\n\n'
        "import os\n"
        "import sys\n"
        "from collections import (\n"
        "    OrderedDict,\n"
        "    deque,\n"
        ")\n\n\n"
        "def f(items=[], *, extra=deque()):\n"
        '    """Doc."""\n'
        "    items.append(os.sep)\n"
        "    return items, extra\n"
    )

    def _write(self, tmp_path: Path) -> Path:
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(self.FIXTURE, encoding="utf-8")
        return target

    def test_fix_removes_unused_and_rewrites_defaults(self, tmp_path):
        target = self._write(tmp_path)
        result = fix_paths([target], write=True)
        fixed = target.read_text(encoding="utf-8")
        assert "import sys" not in fixed
        assert "OrderedDict" not in fixed
        assert "from collections import deque" in fixed
        assert "def f(items=None, *, extra=None):" in fixed
        assert "    if items is None:\n        items = []\n" in fixed
        assert "    if extra is None:\n        extra = deque()\n" in fixed
        # guard lands after the docstring
        doc_at = fixed.index('"""Doc."""')
        assert fixed.index("if items is None") > doc_at
        assert result.total_fixes == 4
        ast.parse(fixed)  # still valid python

    def test_fixed_file_lints_clean(self, tmp_path):
        target = self._write(tmp_path)
        fix_paths([target], write=True)
        findings = lint_file(target)
        assert "RL006" not in _codes(findings)
        assert "RL007" not in _codes(findings)

    def test_fix_is_idempotent(self, tmp_path):
        target = self._write(tmp_path)
        fix_paths([target], write=True)
        once = target.read_text(encoding="utf-8")
        second = fix_paths([target], write=True)
        assert target.read_text(encoding="utf-8") == once
        assert second.total_fixes == 0

    def test_dry_run_diff_leaves_file_untouched(self, tmp_path):
        target = self._write(tmp_path)
        result = fix_paths([target], write=False)
        assert target.read_text(encoding="utf-8") == self.FIXTURE
        (fix,) = result.changed_files
        diff = fix.diff()
        assert diff.startswith("--- a/")
        assert "+def f(items=None, *, extra=None):" in diff

    def test_noqa_suppressed_findings_not_fixed(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir(parents=True)
        source = "import sys  # repro: noqa(RL006)\n"
        target.write_text(source, encoding="utf-8")
        fix_paths([target], write=True)
        assert target.read_text(encoding="utf-8") == source

    def test_runner_diff_and_fix_flags(self, tmp_path, capsys):
        from repro.devtools.lint.__main__ import run

        target = self._write(tmp_path)
        assert run([str(target), "--diff"]) == 0
        out = capsys.readouterr().out
        assert "+def f(items=None, *, extra=None):" in out
        assert target.read_text(encoding="utf-8") == self.FIXTURE
        assert run([str(target), "--fix"]) == 0
        assert "def f(items=None, *, extra=None):" in target.read_text(
            encoding="utf-8"
        )


# ------------------------------------------------------------ baseline


class TestBaseline:
    def _report(self, tmp_path: Path) -> LintReport:
        target = tmp_path / "pkg" / "legacy.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("import sys\n\n\ndef f(x=[]):\n    return x\n")
        return lint_paths([target])

    def test_write_then_apply_absorbs_all(self, tmp_path):
        report = self._report(tmp_path)
        assert report.findings
        path = tmp_path / "baseline.json"
        write_baseline(path, report)
        allow = load_baseline(path)
        result = apply_baseline(report.findings, allow)
        assert result.new_findings == []
        assert len(result.suppressed) == len(report.findings)
        assert result.stale == []

    def test_new_finding_escapes_baseline(self, tmp_path):
        report = self._report(tmp_path)
        allow = baseline_from_findings(report.findings)
        extra = Finding(
            path=report.findings[0].path,
            line=99,
            col=0,
            code="RL007",
            message="another one",
        )
        result = apply_baseline(report.findings + [extra], allow)
        assert len(result.new_findings) == 1

    def test_stale_allowances_reported(self, tmp_path):
        report = self._report(tmp_path)
        allow = baseline_from_findings(report.findings)
        allow["pkg/gone.py"] = {"RL001": 2}
        result = apply_baseline(report.findings, allow)
        assert result.stale == ["pkg/gone.py:RL001", "pkg/gone.py:RL001"] or (
            result.stale == ["pkg/gone.py:RL001"]
        )

    def test_rejects_bad_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "allow": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_runner_baseline_flags(self, tmp_path, capsys):
        from repro.devtools.lint.__main__ import run

        target = tmp_path / "pkg" / "legacy.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(x=[]):\n    return x\n")
        baseline = tmp_path / "baseline.json"
        assert run([str(target), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert run([str(target), "--baseline", str(baseline)]) == 0
        target.write_text(
            "def f(x=[]):\n    return x\n\n\ndef g(y={}):\n    return y\n"
        )
        capsys.readouterr()
        assert run([str(target), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "1 finding(s)" in out


# ------------------------------------------------------ JSON round-trip


class TestJsonRoundTrip:
    def test_render_parse_round_trip(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import sys\n\n\ndef f(x=[]):\n    return x\n")
        report = lint_paths([target])
        assert report.findings
        parsed = parse_json(render_json(report))
        assert parsed.findings == report.findings
        assert parsed.files_scanned == report.files_scanned
        assert parsed.counts == report.counts

    def test_json_snapshot_shape(self):
        report = LintReport(
            findings=[
                Finding(
                    path="src/repro/mod.py",
                    line=3,
                    col=4,
                    code="RL011",
                    message="ambient RNG",
                )
            ],
            files_scanned=1,
        )
        doc = json.loads(render_json(report))
        assert doc == {
            "files_scanned": 1,
            "total": 1,
            "counts": {"RL011": 1},
            "findings": [
                {
                    "path": "src/repro/mod.py",
                    "line": 3,
                    "col": 4,
                    "code": "RL011",
                    "message": "ambient RNG",
                }
            ],
        }

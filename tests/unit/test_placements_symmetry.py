"""Unit tests for repro.torus.symmetry."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.placements.diagonal import antidiagonal_placement_2d
from repro.placements.linear import linear_placement
from repro.placements.symmetry import (
    are_equivalent_placements,
    canonical_form,
    permute_dimensions,
    reflect_dimensions,
    translate_placement,
)
from repro.torus.topology import Torus


class TestGroupAction:
    def test_translate_identity(self, linear_4_2):
        assert translate_placement(linear_4_2, [0, 0]) == linear_4_2

    def test_translate_composition(self, linear_4_2):
        once = translate_placement(linear_4_2, [1, 2])
        twice = translate_placement(once, [3, 2])
        assert twice == translate_placement(linear_4_2, [0, 0])

    def test_translate_preserves_size(self, linear_4_3):
        assert len(translate_placement(linear_4_3, [1, 2, 3])) == len(linear_4_3)

    def test_translate_bad_offset(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            translate_placement(linear_4_2, [1])

    def test_permute_involution(self, linear_4_2):
        swapped = permute_dimensions(linear_4_2, [1, 0])
        assert permute_dimensions(swapped, [1, 0]) == linear_4_2

    def test_permute_bad_perm(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            permute_dimensions(linear_4_2, [0, 0])

    def test_reflect_involution(self, linear_4_2):
        once = reflect_dimensions(linear_4_2, [0])
        assert reflect_dimensions(once, [0]) == linear_4_2

    def test_reflect_bad_dim(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            reflect_dimensions(linear_4_2, [2])


class TestEquivalence:
    def test_offsets_are_translates(self):
        torus = Torus(5, 2)
        a = linear_placement(torus, offset=0)
        b = linear_placement(torus, offset=2)
        assert are_equivalent_placements(a, b, translations_only=True)

    def test_antidiagonal_is_reflection(self):
        torus = Torus(5, 2)
        diag = linear_placement(torus)
        anti = antidiagonal_placement_2d(torus)
        assert are_equivalent_placements(diag, anti)
        assert not are_equivalent_placements(diag, anti, translations_only=True)

    def test_different_sizes_not_equivalent(self, torus_4_2):
        a = Placement(torus_4_2, [0, 1])
        b = Placement(torus_4_2, [0, 1, 2])
        assert not are_equivalent_placements(a, b)

    def test_different_tori_not_equivalent(self):
        a = Placement(Torus(4, 2), [0])
        b = Placement(Torus(5, 2), [0])
        assert not are_equivalent_placements(a, b)

    def test_canonical_form_idempotent(self):
        torus = Torus(4, 2)
        p = linear_placement(torus, offset=3)
        c1 = canonical_form(p, translations_only=True)
        c2 = canonical_form(c1, translations_only=True)
        assert c1 == c2


class TestLoadInvariance:
    def test_emax_invariant_under_translation(self):
        torus = Torus(5, 2)
        p = linear_placement(torus)
        q = translate_placement(p, [2, 3])
        assert odr_edge_loads(p).max() == odr_edge_loads(q).max()

    def test_load_multiset_invariant_under_permutation(self):
        torus = Torus(5, 2)
        p = linear_placement(torus)
        q = permute_dimensions(p, [1, 0])
        assert np.array_equal(
            np.sort(odr_edge_loads(p)), np.sort(odr_edge_loads(q))
        )

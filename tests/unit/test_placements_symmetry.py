"""Unit tests for repro.torus.symmetry."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.placements.diagonal import antidiagonal_placement_2d
from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.placements.symmetry import (
    are_equivalent_placements,
    automorphism_group,
    canonical_form,
    permute_dimensions,
    reflect_dimensions,
    translate_placement,
)
from repro.torus.topology import Torus


def _brute_force_images(placement, translations_only=False):
    """Sorted id-tuples of every group image, via the per-element API."""
    import itertools

    torus = placement.torus
    if translations_only:
        point_images = [placement]
    else:
        point_images = []
        for perm in itertools.permutations(range(torus.d)):
            permuted = permute_dimensions(placement, perm)
            for mask in range(1 << torus.d):
                dims = [i for i in range(torus.d) if mask >> i & 1]
                point_images.append(reflect_dimensions(permuted, dims))
    images = []
    for image in point_images:
        for offset in itertools.product(range(torus.k), repeat=torus.d):
            shifted = translate_placement(image, list(offset))
            images.append(tuple(sorted(int(i) for i in shifted.node_ids)))
    return images


class TestGroupAction:
    def test_translate_identity(self, linear_4_2):
        assert translate_placement(linear_4_2, [0, 0]) == linear_4_2

    def test_translate_composition(self, linear_4_2):
        once = translate_placement(linear_4_2, [1, 2])
        twice = translate_placement(once, [3, 2])
        assert twice == translate_placement(linear_4_2, [0, 0])

    def test_translate_preserves_size(self, linear_4_3):
        assert len(translate_placement(linear_4_3, [1, 2, 3])) == len(linear_4_3)

    def test_translate_bad_offset(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            translate_placement(linear_4_2, [1])

    def test_permute_involution(self, linear_4_2):
        swapped = permute_dimensions(linear_4_2, [1, 0])
        assert permute_dimensions(swapped, [1, 0]) == linear_4_2

    def test_permute_bad_perm(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            permute_dimensions(linear_4_2, [0, 0])

    def test_reflect_involution(self, linear_4_2):
        once = reflect_dimensions(linear_4_2, [0])
        assert reflect_dimensions(once, [0]) == linear_4_2

    def test_reflect_bad_dim(self, linear_4_2):
        with pytest.raises(InvalidParameterError):
            reflect_dimensions(linear_4_2, [2])


class TestEquivalence:
    def test_offsets_are_translates(self):
        torus = Torus(5, 2)
        a = linear_placement(torus, offset=0)
        b = linear_placement(torus, offset=2)
        assert are_equivalent_placements(a, b, translations_only=True)

    def test_antidiagonal_is_reflection(self):
        torus = Torus(5, 2)
        diag = linear_placement(torus)
        anti = antidiagonal_placement_2d(torus)
        assert are_equivalent_placements(diag, anti)
        assert not are_equivalent_placements(diag, anti, translations_only=True)

    def test_different_sizes_not_equivalent(self, torus_4_2):
        a = Placement(torus_4_2, [0, 1])
        b = Placement(torus_4_2, [0, 1, 2])
        assert not are_equivalent_placements(a, b)

    def test_different_tori_not_equivalent(self):
        a = Placement(Torus(4, 2), [0])
        b = Placement(Torus(5, 2), [0])
        assert not are_equivalent_placements(a, b)

    def test_canonical_form_idempotent(self):
        torus = Torus(4, 2)
        p = linear_placement(torus, offset=3)
        c1 = canonical_form(p, translations_only=True)
        c2 = canonical_form(c1, translations_only=True)
        assert c1 == c2


class TestLoadInvariance:
    def test_emax_invariant_under_translation(self):
        torus = Torus(5, 2)
        p = linear_placement(torus)
        q = translate_placement(p, [2, 3])
        assert odr_edge_loads(p).max() == odr_edge_loads(q).max()

    def test_load_multiset_invariant_under_permutation(self):
        torus = Torus(5, 2)
        p = linear_placement(torus)
        q = permute_dimensions(p, [1, 0])
        assert np.array_equal(
            np.sort(odr_edge_loads(p)), np.sort(odr_edge_loads(q))
        )


class TestAutomorphismGroup:
    @pytest.mark.parametrize("k,d", [(3, 2), (4, 2), (3, 3)])
    def test_group_order(self, k, d):
        group = automorphism_group(Torus(k, d))
        assert group.order == k**d * math.factorial(d) * 2**d

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sorted_images_match_per_element_action(self, seed):
        torus = Torus(4, 2)
        placement = random_placement(torus, 4, seed=seed)
        group = automorphism_group(torus)
        fast = {tuple(row) for row in group.sorted_images(placement.node_ids)}
        slow = set(_brute_force_images(placement))
        assert fast == slow

    def test_translations_only_images(self):
        torus = Torus(3, 2)
        placement = random_placement(torus, 3, seed=7)
        group = automorphism_group(torus)
        fast = {
            tuple(row)
            for row in group.sorted_images(
                placement.node_ids, translations_only=True
            )
        }
        slow = set(_brute_force_images(placement, translations_only=True))
        assert fast == slow

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_orbit_size_matches_distinct_images(self, seed):
        torus = Torus(4, 2)
        placement = random_placement(torus, 4, seed=seed)
        group = automorphism_group(torus)
        distinct = {
            tuple(row) for row in group.sorted_images(placement.node_ids)
        }
        assert group.orbit_size(placement.node_ids) == len(distinct)

    def test_canonicity_agrees_with_canonical_ids(self):
        torus = Torus(3, 2)
        group = automorphism_group(torus)
        import itertools

        for ids in itertools.combinations(range(torus.num_nodes), 3):
            canonical, stab = group.canonicity(ids)
            expected = tuple(group.canonical_ids(ids)) == ids
            assert canonical == expected
            if canonical:
                assert group.order // stab == group.orbit_size(ids)

    def test_group_is_cached(self):
        torus = Torus(4, 2)
        assert automorphism_group(torus) is automorphism_group(Torus(4, 2))


class TestVectorizedCanonicalForm:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_canonical_is_lexmin_image(self, seed):
        torus = Torus(4, 2)
        placement = random_placement(torus, 5, seed=seed)
        canon = canonical_form(placement)
        expected = min(_brute_force_images(placement))
        assert tuple(int(i) for i in canon.node_ids) == expected

    def test_canonical_form_full_group_idempotent(self):
        placement = random_placement(Torus(4, 2), 4, seed=9)
        c1 = canonical_form(placement)
        assert canonical_form(c1) == c1

    def test_equivalent_placements_share_canonical_form(self):
        torus = Torus(5, 2)
        p = linear_placement(torus)
        q = reflect_dimensions(translate_placement(p, [2, 3]), [1])
        assert canonical_form(p) == canonical_form(q)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.placements.linear import linear_placement
from repro.torus.topology import Torus


@pytest.fixture
def torus_4_2() -> Torus:
    """A small even-radix 2-D torus."""
    return Torus(4, 2)


@pytest.fixture
def torus_5_2() -> Torus:
    """A small odd-radix 2-D torus (no half-ring ties)."""
    return Torus(5, 2)


@pytest.fixture
def torus_4_3() -> Torus:
    """A small 3-D torus."""
    return Torus(4, 3)


@pytest.fixture
def torus_6_3() -> Torus:
    """A mid-size 3-D torus for uniformity/bisection checks."""
    return Torus(6, 3)


@pytest.fixture
def linear_4_2(torus_4_2: Torus):
    """Linear placement on T_4^2."""
    return linear_placement(torus_4_2)


@pytest.fixture
def linear_5_2(torus_5_2: Torus):
    """Linear placement on T_5^2."""
    return linear_placement(torus_5_2)


@pytest.fixture
def linear_4_3(torus_4_3: Torus):
    """Linear placement on T_4^3."""
    return linear_placement(torus_4_3)

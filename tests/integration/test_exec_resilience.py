"""End-to-end resilience drills: chaos runs must be bit-identical.

The contract under test is the contrapositive documented in
:mod:`repro.exec.chaos`: fault injection happens only inside pool
workers, retries re-roll the schedule, and the serial fallback is always
fault-free — so a run surviving injected crashes and hangs must produce
*exactly* the fault-free answer, not an approximation of it.  These
drills exercise every wired call site: the parallel load engine, the
exact-search certifier, and the catalog sweep, plus mid-run kill +
resume through the checkpoint journal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import (
    ChaosPolicy,
    ExecPolicy,
    clear_reports,
    recent_reports,
    using_exec_policy,
)
from repro.load.engine import LoadEngine
from repro.load.odr_loads import odr_edge_loads
from repro.placements.catalog import global_minimum_emax
from repro.placements.exact_search import exact_global_minimum
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus

#: the ISSUE acceptance drill: ~20% of worker executions crash.
CRASHY = ExecPolicy(
    retries=3,
    backoff_base=0.001,
    backoff_max=0.01,
    heartbeat=0.02,
    chaos=ChaosPolicy(seed=7, crash_fraction=0.2),
)

#: hang drill: stuck workers reaped by the deadline watchdog.
HANGY = ExecPolicy(
    retries=2,
    task_timeout=0.5,
    backoff_base=0.001,
    backoff_max=0.01,
    heartbeat=0.02,
    chaos=ChaosPolicy(seed=13, hang_fraction=0.3, hang_seconds=60.0),
)


def _certify_key(result):
    """Everything that must be bit-identical across executions."""
    return (
        result.minimum_emax,
        result.num_placements,
        result.num_optimal,
        result.num_orbits,
        sorted(map(tuple, result.example_optimal.coords().tolist())),
    )


class TestParallelEngineUnderChaos:
    def test_crash_chaos_is_bit_identical_on_t8_2(self):
        torus = Torus(8, 2)
        placement = linear_placement(torus)
        routing = OrderedDimensionalRouting(torus.d)
        baseline = LoadEngine("parallel", jobs=1).edge_loads(
            placement, routing
        )
        with using_exec_policy(CRASHY):
            chaotic = LoadEngine("parallel", jobs=2).edge_loads(
                placement, routing
            )
        assert np.array_equal(baseline, chaotic)

    def test_hang_chaos_is_bit_identical_on_t8_2(self):
        torus = Torus(8, 2)
        placement = linear_placement(torus)
        routing = OrderedDimensionalRouting(torus.d)
        baseline = LoadEngine("parallel", jobs=1).edge_loads(
            placement, routing
        )
        clear_reports()
        with using_exec_policy(HANGY):
            chaotic = LoadEngine("parallel", jobs=2).edge_loads(
                placement, routing
            )
        assert np.array_equal(baseline, chaotic)
        report = recent_reports()[-1]
        assert report.label.startswith("parallel-loads")


class TestCertifyUnderChaos:
    def test_crash_chaos_is_bit_identical_on_t5_2(self):
        torus = Torus(5, 2)
        serial = exact_global_minimum(torus, 5, mode="bound")
        clear_reports()
        with using_exec_policy(CRASHY):
            chaotic = exact_global_minimum(torus, 5, mode="bound", processes=2)
        assert _certify_key(chaotic) == _certify_key(serial)
        # the drill must actually have exercised the pool machinery
        report = recent_reports()[-1]
        assert report.label.startswith("exact-search")
        assert report.completed == report.tasks

    def test_full_mode_histogram_survives_chaos_on_t4_2(self):
        torus = Torus(4, 2)
        serial = exact_global_minimum(torus, 4, mode="full")
        with using_exec_policy(CRASHY):
            chaotic = exact_global_minimum(torus, 4, mode="full", processes=2)
        assert _certify_key(chaotic) == _certify_key(serial)
        assert chaotic.emax_histogram == serial.emax_histogram


class TestCatalogUnderChaos:
    def test_catalog_sweep_is_bit_identical_on_t4_2(self):
        torus = Torus(4, 2)
        serial = global_minimum_emax(torus, 4)
        with using_exec_policy(CRASHY):
            chaotic = global_minimum_emax(torus, 4, processes=2)
        assert chaotic.minimum_emax == serial.minimum_emax
        assert chaotic.num_optimal == serial.num_optimal
        assert chaotic.emax_histogram == serial.emax_histogram
        assert np.array_equal(
            chaotic.example_optimal.coords(), serial.example_optimal.coords()
        )

    def test_catalog_checkpoint_resume_matches(self, tmp_path):
        torus = Torus(4, 2)
        serial = global_minimum_emax(torus, 4)
        path = tmp_path / "catalog.jsonl"
        full = global_minimum_emax(torus, 4, processes=2, checkpoint=str(path))
        assert full.emax_histogram == serial.emax_histogram
        # truncate the journal to simulate a mid-run kill (torn last line)
        lines = path.read_text().splitlines()
        keep = 1 + max(1, (len(lines) - 1) // 2)
        path.write_text(
            "\n".join(lines[:keep]) + '\n{"kind": "task", "id": "span-tor'
        )
        clear_reports()
        resumed = global_minimum_emax(
            torus, 4, processes=2, checkpoint=str(path), resume=True
        )
        assert resumed.minimum_emax == serial.minimum_emax
        assert resumed.num_optimal == serial.num_optimal
        assert resumed.emax_histogram == serial.emax_histogram
        report = recent_reports()[-1]
        assert report.resumed == keep - 1
        assert report.resumed + report.completed == report.tasks


class TestCertifyKillResume:
    def test_t6_2_recertifies_after_mid_run_kill(self, tmp_path):
        """The ISSUE acceptance drill: kill mid-run, resume, re-certify.

        T_6^2 at the linear size must come back with the exact certified
        answer (E_max 2, 24 optimal placements) and the resumed run must
        skip every journaled subtree root instead of re-evaluating it.
        """
        torus = Torus(6, 2)
        upper = float(odr_edge_loads(linear_placement(torus)).max())
        path = tmp_path / "certify.jsonl"
        full = exact_global_minimum(
            torus,
            6,
            mode="bound",
            processes=2,
            initial_upper_bound=upper,
            checkpoint=str(path),
        )
        assert full.minimum_emax == 2.0
        assert full.num_optimal == 24
        # simulate a kill partway through: drop the tail of the journal
        # and leave a torn final line exactly as a dying writer would.
        lines = path.read_text().splitlines()
        assert len(lines) > 3  # header + enough completed roots to split
        keep = 1 + (len(lines) - 1) // 2
        path.write_text(
            "\n".join(lines[:keep]) + '\n{"kind": "task", "id": "root-1'
        )
        clear_reports()
        resumed = exact_global_minimum(
            torus,
            6,
            mode="bound",
            processes=2,
            initial_upper_bound=upper,
            checkpoint=str(path),
            resume=True,
        )
        assert resumed.minimum_emax == 2.0
        assert resumed.num_optimal == 24
        assert _certify_key(resumed) == _certify_key(full)
        report = recent_reports()[-1]
        assert report.resumed == keep - 1  # journaled roots were skipped
        assert report.resumed + report.completed == report.tasks

    def test_serial_checkpoint_forces_resumable_decomposition(self, tmp_path):
        # even a serial run decomposes into journaled subtree roots when a
        # checkpoint is requested, so it can be resumed later (possibly in
        # parallel).
        torus = Torus(5, 2)
        path = tmp_path / "serial.jsonl"
        serial = exact_global_minimum(
            torus, 5, mode="bound", checkpoint=str(path)
        )
        plain = exact_global_minimum(torus, 5, mode="bound")
        assert _certify_key(serial) == _certify_key(plain)
        clear_reports()
        resumed = exact_global_minimum(
            torus, 5, mode="bound", checkpoint=str(path), resume=True
        )
        assert _certify_key(resumed) == _certify_key(plain)
        report = recent_reports()[-1]
        assert report.completed == 0  # everything came from the journal
        assert report.resumed == report.tasks


class TestWrappedErrors:
    def test_engine_failure_names_backend_and_workers(self):
        from repro.errors import LoadError
        from repro.load.engine.parallel import parallel_edge_loads

        torus = Torus(8, 2)
        placement = linear_placement(torus)
        routing = OrderedDimensionalRouting(torus.d)
        exhausted = ExecPolicy(
            retries=0,
            backoff_base=0.001,
            heartbeat=0.02,
            fallback_serial=False,
            chaos=ChaosPolicy(seed=7, crash_fraction=1.0),
        )
        with using_exec_policy(exhausted):
            with pytest.raises(LoadError, match=r"backend 'parallel'.*workers"):
                parallel_edge_loads(placement, routing, jobs=2)

    def test_certify_failure_names_roots_and_workers(self):
        from repro.errors import SearchError

        exhausted = ExecPolicy(
            retries=0,
            backoff_base=0.001,
            heartbeat=0.02,
            fallback_serial=False,
            chaos=ChaosPolicy(seed=7, crash_fraction=1.0),
        )
        with using_exec_policy(exhausted):
            with pytest.raises(SearchError, match=r"roots.*workers"):
                exact_global_minimum(Torus(4, 2), 4, processes=2)

"""Cross-process trace stitching, end to end.

The acceptance property of the trace analytics engine: a traced
parallel ``repro certify`` stitches its per-worker JSONL files into
*one* logical trace, and — for a chaos-free run — the stitched trace's
canonical form is identical whatever the worker count.  A ``--jobs 4``
T_4² certification must tell exactly the same structural story as the
serial run, down to the merged search counters, with only volatile
attributes (pids, exec-run ids, jobs) and timings differing.
"""

from __future__ import annotations

from repro.cli import main
from repro.obs import (
    build_forest,
    canonical_form,
    critical_path,
    diff_traces,
    load_stitched,
    read_trace,
    stitch_path,
    worker_trace_dir,
)


def _certify(tmp_path, tag, jobs):
    trace = tmp_path / f"{tag}.jsonl"
    checkpoint = tmp_path / f"{tag}.ck.jsonl"
    argv = [
        "certify",
        "--k", "4", "--d", "2",
        "--jobs", str(jobs),
        # a checkpoint forces the subtree decomposition through the
        # executor even serially, so both runs produce exec.task spans
        "--checkpoint", str(checkpoint),
        "--trace", str(trace),
    ]
    assert main(argv) == 0
    return trace


def _counters(records):
    snapshots = [r for r in records if r.get("kind") == "metrics"]
    return snapshots[-1]["values"]["counters"]


class TestStitchedCertify:
    def test_parallel_run_stitches_into_one_logical_trace(
        self, tmp_path, capsys
    ):
        trace = _certify(tmp_path, "par", jobs=4)
        capsys.readouterr()

        workers = worker_trace_dir(trace)
        worker_files = sorted(workers.glob("*.jsonl"))
        assert worker_files, "parallel run must mirror worker traces"

        stitched = stitch_path(trace)
        header = stitched[0]
        assert header["stitched"] is True
        assert header["worker_files"] == len(worker_files)

        # single logical trace: exactly one header, no span left dangling
        assert sum(1 for r in stitched if r.get("kind") == "header") == 1
        roots = build_forest(stitched)
        assert all(not root.orphan for root in roots)

        # the worker files recorded the task bodies...
        body_spans = [
            r
            for path in worker_files
            for r in read_trace(path)
            if r.get("kind") == "span"
        ]
        assert body_spans
        assert {r["name"] for r in body_spans} == {"exec.task.body"}
        # ...and stitching splices every body into its dispatching
        # exec.task, so none survive in the merged trace
        names = {r["name"] for r in stitched if r.get("kind") == "span"}
        assert "exec.task.body" not in names
        assert "exec.task" in names

        # one merged final snapshot carrying the whole run's ledger
        counters = _counters(stitched)
        assert counters["exec.tasks"] > 0
        assert counters["search.pair_updates"] > 0

    def test_stitched_trace_identical_across_worker_counts(
        self, tmp_path, capsys
    ):
        serial = _certify(tmp_path, "serial", jobs=1)
        serial_out = capsys.readouterr().out
        parallel = _certify(tmp_path, "parallel", jobs=4)
        parallel_out = capsys.readouterr().out
        # same certified answer printed for both runs
        assert serial_out == parallel_out

        serial_records = load_stitched(serial)
        parallel_records = load_stitched(parallel)

        assert canonical_form(serial_records) == canonical_form(
            parallel_records
        )

        # the merged deterministic counters agree exactly
        serial_counters = _counters(serial_records)
        parallel_counters = _counters(parallel_records)
        for name in serial_counters:
            if name.startswith("search."):
                assert serial_counters[name] == parallel_counters[name], name

    def test_analytics_run_on_the_stitched_trace(self, tmp_path, capsys):
        trace = _certify(tmp_path, "analyze", jobs=4)
        capsys.readouterr()
        records = load_stitched(trace)

        path = critical_path(records)
        assert path[0]["name"] == "search.certify"
        assert path[0]["fraction_of_root"] == 1.0

        # a stitched trace diffed against itself is empty at tolerance 0
        assert diff_traces(records, records, tolerance=0.0) == []

    def test_trace_cli_subcommands_on_stitched_run(self, tmp_path, capsys):
        trace = _certify(tmp_path, "cli", jobs=4)
        capsys.readouterr()

        assert main(["trace", "critical-path", str(trace)]) == 0
        assert "search.certify" in capsys.readouterr().out

        assert main(["trace", "waterfall", str(trace)]) == 0
        assert "exec.task" in capsys.readouterr().out

        assert main(["trace", "diff", str(trace), str(trace)]) == 0
        assert "equivalent" in capsys.readouterr().out

        assert main(["trace", "export", str(trace)]) == 0
        assert "repro_exec_tasks_total" in capsys.readouterr().out

    def test_serial_run_with_no_workers_loads_unstitched(
        self, tmp_path, capsys
    ):
        trace = _certify(tmp_path, "plain", jobs=1)
        capsys.readouterr()
        assert not worker_trace_dir(trace).exists()
        records = load_stitched(trace)
        assert records[0].get("stitched") is None
        assert read_trace(trace)[0]["kind"] == "header"

"""End-to-end observability drills.

Two contracts from the telemetry layer's charter are exercised here:

* **Tracing is an observer, not a participant** — certifying with a
  tracer installed must produce bit-identical results to certifying
  without one (the disabled path is a strict no-op, and the enabled
  path only reads).
* **Traces of deterministic runs are deterministic** — a chaos-enabled
  ``repro certify`` on :math:`T_5^2` writes a parseable JSONL trace
  whose search/prune counters and chaos retry counters repeat exactly
  across same-seed reruns, even though wall-clock timings differ.

What "deterministic" pins: the search accounting (``search.*``) and
the task ledger (``exec.tasks``/``completed``/``resumed``) repeat
exactly, as does the certified stdout.  The *incident* counters
(retries, timeouts, fallbacks) are asserted present but not equal:
chaos decisions are seeded, but charging is wall-clock-coupled — the
deadline watchdog ages tasks from submission and a broken pool charges
whatever happens to be in flight, both of which legitimately vary with
pool scheduling.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import JsonlTraceSink, Tracer, read_trace, using_tracer
from repro.placements.exact_search import exact_global_minimum
from repro.torus.topology import Torus


def _result_key(result):
    """Everything that must be bit-identical with and without tracing."""
    return (
        result.minimum_emax,
        result.num_placements,
        result.num_optimal,
        sorted(map(tuple, result.example_optimal.coords().tolist())),
        result.mode,
        result.group_order,
        result.num_variants,
        result.counters,
    )


class TestTracerIsAPureObserver:
    def test_traced_and_untraced_certify_are_bit_identical(self, tmp_path):
        untraced = exact_global_minimum(Torus(4, 2), 4)

        tracer = Tracer(
            sink=JsonlTraceSink(tmp_path / "t44.jsonl", label="identity"),
            label="identity",
        )
        with using_tracer(tracer):
            traced = exact_global_minimum(Torus(4, 2), 4, progress=False)
        tracer.finish()

        assert _result_key(traced) == _result_key(untraced)
        # and the trace actually observed the search
        records = read_trace(tmp_path / "t44.jsonl")
        names = {r.get("name") for r in records if r.get("kind") == "span"}
        assert "search.certify" in names


#: exec counters that must repeat exactly (the task ledger); the
#: incident counters (retries/timeouts/fallbacks) are wall-clock-coupled.
_LEDGER = ("exec.tasks", "exec.completed", "exec.resumed")


def _final_counters(trace_path):
    records = read_trace(trace_path)
    metrics = [r for r in records if r["kind"] == "metrics"]
    assert metrics, "trace must end with a metrics snapshot"
    return metrics[-1]["values"]["counters"]


def _deterministic_counters(counters):
    """The counters the acceptance criterion pins across same-seed runs."""
    return {
        name: value
        for name, value in counters.items()
        if name.startswith("search.") or name in _LEDGER
    }


def _certify_argv(path, *, hang=False):
    chaos = (
        ["--chaos-seed", "13", "--chaos-crash", "0",
         "--chaos-hang", "0.3", "--task-timeout", "0.4"]
        if hang
        else ["--chaos-seed", "7"]
    )
    return [
        "certify",
        "--k", "5", "--d", "2",
        "--jobs", "2",
        *chaos,
        "--trace", str(path),
    ]


class TestChaosCertifyTraceDeterminism:
    def test_same_seed_reruns_repeat_counters(self, tmp_path, capsys):
        outputs = []
        counters = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            assert main(_certify_argv(path, hang=True)) == 0
            outputs.append(capsys.readouterr().out)
            # the trace parses end-to-end, header first
            records = read_trace(path)
            assert records[0]["kind"] == "header"
            assert json.dumps(records[-1])  # JSON-compatible throughout
            counters.append(_final_counters(path))

        # chaos with the same seed certifies the same answer...
        assert outputs[0] == outputs[1]
        # ...the search/prune accounting and task ledger repeat exactly...
        assert _deterministic_counters(counters[0]) == _deterministic_counters(
            counters[1]
        )
        assert counters[0]["search.subtrees_pruned_emax"] > 0
        # ...and both runs recorded the injected hangs (exact charge counts
        # are wall-clock-coupled, see the module docstring).
        for run in counters:
            assert run["exec.retries"] > 0
            assert run["exec.timeouts"] > 0

    def test_trace_records_executor_chaos_events(self, tmp_path, capsys):
        path = tmp_path / "chaos.jsonl"
        assert main(_certify_argv(path)) == 0
        capsys.readouterr()
        records = read_trace(path)
        events = {r["name"] for r in records if r["kind"] == "event"}
        assert "exec.retry" in events

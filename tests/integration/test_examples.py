"""Integration: every example script runs to completion.

The examples are the public face of the library — each must execute
end-to-end on a clean environment and produce its headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

EXPECTED_SNIPPETS = {
    "quickstart.py": "all bounds hold.",
    "figure1.py": "[P]",
    "fault_tolerant_routing.py": "simulated complete exchange",
    "capacity_planning.py": "growth exponents",
    "simulator_demo.py": "ODR is deterministic",
    "placement_search.py": "empirical floor",
    "mixed_radix_machine.py": "takeaway",
}


class TestExamples:
    def test_every_example_has_an_expectation(self):
        assert set(EXAMPLES) == set(EXPECTED_SNIPPETS)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert EXPECTED_SNIPPETS[name] in proc.stdout

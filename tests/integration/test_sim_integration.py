"""Integration: simulator vs analysis across placements and routings."""

import numpy as np
import pytest

from repro.core.analysis import compute_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.fully import fully_populated_placement
from repro.placements.linear import linear_placement
from repro.placements.multiple import multiple_linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.fault_injection import random_link_failures
from repro.sim.network import SimNetwork
from repro.sim.validate import compare_sim_to_analytic
from repro.sim.workloads import complete_exchange_packets
from repro.torus.topology import Torus


class TestSimMatchesAnalysis:
    @pytest.mark.parametrize(
        "placement_factory",
        [
            lambda: linear_placement(Torus(5, 2)),
            lambda: multiple_linear_placement(Torus(4, 2), 2),
            lambda: fully_populated_placement(Torus(3, 2)),
        ],
    )
    def test_odr_exact(self, placement_factory):
        placement = placement_factory()
        routing = OrderedDimensionalRouting(placement.torus.d)
        rep = compare_sim_to_analytic(
            placement, routing, compute_loads(placement, routing), seed=1
        )
        assert rep.exact_match

    def test_udr_statistical(self):
        placement = linear_placement(Torus(4, 2))
        rep = compare_sim_to_analytic(
            placement,
            UnorderedDimensionalRouting(),
            udr_edge_loads(placement),
            rounds=200,
            seed=2,
        )
        assert rep.total_sim == pytest.approx(rep.total_analytic)
        assert rep.max_abs_error < 0.2


class TestFaultedSimulation:
    def test_runs_on_faulted_network_with_masked_routing(self):
        from repro.routing.faults import FaultMaskedRouting

        torus = Torus(5, 2)
        placement = linear_placement(torus)
        udr = UnorderedDimensionalRouting()
        failures = random_link_failures(torus, 6, seed=3)
        masked = FaultMaskedRouting(udr, failures)
        coords = placement.coords()
        # only simulate pairs the masked relation still connects
        pairs = [
            (i, j)
            for i in range(len(placement))
            for j in range(len(placement))
            if i != j and masked.is_connected(torus, coords[i], coords[j])
        ]
        from repro.sim.workloads import build_packets

        packets = build_packets(placement, masked, pairs, seed=4)
        net = SimNetwork(torus, failed_edge_ids=failures)
        result = CycleEngine(net).run(packets)
        assert result.delivered == len(packets)
        assert np.all(net.link_counts[failures] == 0)


class TestContention:
    def test_full_torus_slower_than_linear(self):
        # per-processor completion time is worse when fully populated
        torus = Torus(4, 2)
        lin = linear_placement(torus)
        full = fully_populated_placement(torus)
        odr = OrderedDimensionalRouting(2)
        res_lin = CycleEngine(SimNetwork(torus)).run(
            complete_exchange_packets(lin, odr, seed=5)
        )
        res_full = CycleEngine(SimNetwork(torus)).run(
            complete_exchange_packets(full, odr, seed=5)
        )
        assert res_full.cycles > res_lin.cycles
        assert res_full.max_queue_length >= res_lin.max_queue_length

"""Integration: the whole experiment suite passes in quick mode."""

import pytest

from repro.experiments import experiment_ids, get_experiment, render_all, run_all


class TestSuite:
    def test_all_ids_present(self):
        assert experiment_ids() == [f"EXP-{i}" for i in range(1, 24)]

    @pytest.mark.parametrize("exp_id", [f"EXP-{i}" for i in range(1, 24)])
    def test_each_experiment_passes_quick(self, exp_id):
        result = get_experiment(exp_id).run(quick=True)
        failures = [f for f in result.findings if f.startswith("[FAIL]")]
        assert result.passed, f"{exp_id} failed: {failures}"

    def test_run_all_returns_everything(self):
        results = run_all(quick=True)
        assert set(results) == set(experiment_ids())
        assert all(r.passed for r in results.values())

    def test_render_all_is_markdown(self):
        text = render_all(quick=True)
        assert text.startswith("# Reproduction experiment report")
        assert "23/23 experiments passed" in text
        assert "EXP-7" in text

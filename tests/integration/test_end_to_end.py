"""End-to-end integration: designer → analysis → every paper bound holds."""

import pytest

from repro import analyze, design_placement
from repro.load import formulas
from repro.placements.analysis import is_uniform


CONFIGS = [
    (4, 2, 1, "odr"),
    (6, 2, 1, "udr"),
    (6, 2, 2, "odr"),
    (4, 3, 1, "odr"),
    (4, 3, 1, "udr"),
    (6, 3, 2, "udr"),
    (3, 4, 1, "odr"),
]


class TestDesignAnalyzeLoop:
    @pytest.mark.parametrize("k,d,t,routing", CONFIGS)
    def test_full_pipeline(self, k, d, t, routing):
        design = design_placement(k, d, t=t, routing=routing)
        assert design.size == t * k ** (d - 1)
        assert is_uniform(design.placement)

        an = analyze(design.placement, design.routing)
        # the design's predicted upper bound holds
        assert an.emax <= design.predicted_emax_upper + 1e-9
        # every lower bound in the report holds
        assert an.emax >= an.bounds.best - 1e-9
        # Theorem 1's bisection is stated (and proved) for even k: layer
        # granularity k^(d-2) cannot split an odd placement within one
        if k % 2 == 0:
            assert an.dimension_cut_balanced
        assert an.dimension_cut_width == formulas.theorem1_bisection_width(k, d)
        # the Appendix cut respects Corollary 1
        assert an.hyperplane_cut_width <= formulas.corollary1_bisection_bound(k, d)

    @pytest.mark.parametrize("k,d,t,routing", CONFIGS)
    def test_optimality_ratio_bounded(self, k, d, t, routing):
        design = design_placement(k, d, t=t, routing=routing)
        an = analyze(design.placement, design.routing)
        # measured maximum within a small constant of the best lower bound
        assert 1.0 - 1e-9 <= an.optimality_ratio <= 16.0


class TestCrossRoutingConsistency:
    @pytest.mark.parametrize("k,d", [(4, 2), (5, 2), (4, 3)])
    def test_udr_never_worse_than_odr(self, k, d):
        odr_design = design_placement(k, d, routing="odr")
        udr_design = design_placement(k, d, routing="udr")
        odr_an = analyze(odr_design.placement, odr_design.routing)
        udr_an = analyze(udr_design.placement, udr_design.routing)
        assert udr_an.emax <= odr_an.emax + 1e-9

    def test_same_placement_under_both(self):
        odr_design = design_placement(6, 2, routing="odr")
        udr_design = design_placement(6, 2, routing="udr")
        assert odr_design.placement == udr_design.placement

#!/usr/bin/env python3
"""Reproduce Fig. 1 of the paper: three processors on T_3^2.

Renders the diagonal placement {(0,0), (1,2), (2,1)} — the linear
placement p1 + p2 ≡ 0 (mod 3) — with every link on a specified shortest
path highlighted, and lists the routes pair by pair.

Run:  python examples/figure1.py
"""

from repro.placements.linear import linear_placement
from repro.routing.minimal import AllMinimalPaths
from repro.torus.topology import Torus
from repro.viz.ascii_art import render_figure1


def main() -> None:
    print(render_figure1())
    print()

    torus = Torus(3, 2)
    placement = linear_placement(torus)
    routing = AllMinimalPaths()
    coords = [tuple(int(x) for x in c) for c in placement.coords()]

    print("specified shortest paths (all minimal paths per ordered pair):")
    for p in coords:
        for q in coords:
            if p == q:
                continue
            paths = routing.paths(torus, p, q)
            for i, path in enumerate(paths):
                route = " -> ".join(str(torus.coord(n)) for n in path.nodes)
                print(f"  {p} => {q}  [{i + 1}/{len(paths)}]  {route}")


if __name__ == "__main__":
    main()

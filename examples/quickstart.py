#!/usr/bin/env python3
"""Quickstart: design an optimal placement and verify the paper's claims.

Builds the paper's optimal construction for a 3-dimensional 8-torus —
a linear placement of k^(d-1) = 64 processors with ODR routing — then
measures the exact communication load under complete exchange and checks
it against every bound the paper states.

Run:  python examples/quickstart.py
"""

from repro import analyze, design_placement
from repro.load import formulas

K, D = 8, 3


def main() -> None:
    design = design_placement(k=K, d=D, t=1, routing="odr")
    print(f"torus: T_{K}^{D} ({design.torus.num_nodes} nodes, "
          f"{design.torus.num_edges} directed links)")
    print(f"placement: {design.placement.name} with |P| = {design.size} "
          f"processors (size law k^(d-1) = {K ** (D - 1)})")
    print(f"routing: {design.routing.name}")
    print()

    report = analyze(design.placement, design.routing)
    print("measured under complete exchange:")
    print(f"  E_max                = {report.emax:g}")
    print(f"  E_max / |P|          = {report.linearity_ratio:g}   (linear load!)")
    print(f"  busiest link         = {report.load.argmax_edge.tail} -> "
          f"{report.load.argmax_edge.head}")
    print()
    print("the paper's bounds:")
    print(f"  Eq. 6  (Blaum et al.)      >= {report.bounds.eq6:g}")
    print(f"  Sec. 4 (dimension-free)    >= {report.bounds.section4:g}")
    if report.bounds.eq8 is not None:
        print(f"  Eq. 8  (measured bisection) >= {report.bounds.eq8:g}")
    print(f"  Theorem 3 upper bound      <= {design.predicted_emax_upper:g}")
    print()
    print("bisection certificates:")
    print(f"  Theorem 1 two-cut width    = {report.dimension_cut_width} "
          f"(paper: {formulas.theorem1_bisection_width(K, D)})")
    print(f"  Appendix sweep torus cut   = {report.hyperplane_cut_width} "
          f"(Corollary 1 cap: {formulas.corollary1_bisection_bound(K, D)})")
    print()
    print(f"optimality ratio (E_max / best lower bound) = "
          f"{report.optimality_ratio:.3f}")
    assert report.emax >= report.bounds.best
    assert report.emax <= design.predicted_emax_upper
    print("all bounds hold.")


if __name__ == "__main__":
    main()

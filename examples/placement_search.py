#!/usr/bin/env python3
"""Empirical optimality: search for a better placement — and fail.

The paper proves linear placements optimal via lower bounds.  This example
attacks from above: starting from random placements of the same size, a
steepest-descent search over single-processor relocations minimizes the
exact ODR E_max.  Every run plateaus at the linear placement's value —
and the greedy phase scheduler shows that value is operational: the
complete exchange packs into exactly ceil(E_max) link-disjoint phases.

Run:  python examples/placement_search.py
"""

from repro.placements.linear import linear_placement
from repro.placements.random_placement import random_placement
from repro.placements.search import local_search_placement, placement_objective
from repro.routing.odr import OrderedDimensionalRouting
from repro.schedule.greedy import greedy_phase_schedule
from repro.torus.topology import Torus
from repro.util.tables import Table

K, D, TRIALS = 6, 2, 4


def main() -> None:
    torus = Torus(K, D)
    linear = linear_placement(torus)
    target = placement_objective(linear)
    print(f"T_{K}^{D}: linear placement of {len(linear)} processors has "
          f"E_max = {target:g} under ODR")
    print()

    table = Table(
        ["trial", "random start", "after search", "accepted moves",
         "evaluations"],
        title="steepest-descent search over equal-size placements",
    )
    for trial in range(TRIALS):
        start = random_placement(torus, len(linear), seed=100 + trial)
        res = local_search_placement(
            start, max_moves=40, candidates_per_move=16, seed=trial
        )
        table.add_row(
            [trial, res.initial_emax, res.best_emax,
             len(res.trajectory) - 1, res.evaluations]
        )
        assert res.best_emax >= target - 1e-9
    print(table.render())
    print()
    print(f"no run beats the linear placement's E_max = {target:g} — the "
          "construction sits on the empirical floor.")
    print()

    sched = greedy_phase_schedule(linear, OrderedDimensionalRouting(D), seed=0)
    print(f"greedy phase schedule of the complete exchange: "
          f"{sched.num_phases} phases vs bandwidth bound "
          f"ceil(E_max) = {sched.lower_bound} "
          f"(ratio {sched.optimality_ratio:.2f}, valid: {sched.validate()})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Placing processors in a real-machine-shaped torus (4 x 8 x 16).

Production torus interconnects rarely have equal radii.  This example
applies the paper's construction — generalized to mixed radii per its
Section 8 outlook — to a 4x8x16 machine:

* the naive gcd-modulus linear placement over-populates relative to the
  thinnest bisection and its busiest link saturates;
* the lcm construction sizes the placement to the thin-cut budget and
  keeps the busiest link at |P|/2 messages, matching the square-torus
  story exactly.

Run:  python examples/mixed_radix_machine.py
"""

import math

from repro.mixedradix import (
    MixedTorus,
    lcm_linear_placement,
    mixed_dimension_cut,
    mixed_linear_placement,
    mixed_odr_edge_loads,
)
from repro.util.tables import Table

SHAPE = (4, 8, 16)


def main() -> None:
    torus = MixedTorus(SHAPE)
    print(f"machine: {torus} — {torus.num_nodes} nodes, "
          f"{torus.num_edges} directed links")
    kmax = max(SHAPE)
    thin_cut = 4 * torus.num_nodes // kmax
    print(f"thinnest two-cut bisection: {thin_cut} directed links "
          f"(across the radix-{kmax} dimension)")
    print()

    table = Table(
        ["placement", "|P|", "E_max", "E_max/|P|", "thin-cut bound on E_max"],
        title="complete exchange under ODR",
    )
    for placement in (
        mixed_linear_placement(torus),   # modulus gcd = 4
        lcm_linear_placement(torus),     # modulus lcm = 16
    ):
        loads = mixed_odr_edge_loads(placement)
        emax = float(loads.max())
        m = len(placement)
        # Lemma 1 with the thin cut: E_max >= 2 (|P|/2)^2 / thin_cut
        bound = 2 * (m // 2) * (m - m // 2) / thin_cut
        table.add_row([placement.name, m, emax, emax / m, bound])
    print(table.render())
    print()

    lcm_p = lcm_linear_placement(torus)
    cut = mixed_dimension_cut(lcm_p)
    print(f"best two-cut bisection of the lcm placement: dimension {cut.dim} "
          f"at boundaries {cut.boundaries}, {cut.cut_size} links, "
          f"split {cut.processors_a}/{cut.processors_b}")
    print()
    print("takeaway: in a mixed-radix torus the linear-load placement size "
          "is governed by the thinnest bisection (Π k_i / k_max), and the "
          "lcm-modulus linear placement achieves E_max = |P|/2 — the same "
          "constant the square-torus construction achieves.")


if __name__ == "__main__":
    main()

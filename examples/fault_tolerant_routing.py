#!/usr/bin/env python3
"""Fault tolerance: why the paper introduces UDR (Section 7).

Injects growing numbers of random link failures into T_5^3 and measures,
for the linear placement, how many processor pairs each routing relation
can still serve: ODR gives every pair exactly one path (fragile), UDR
gives s! paths for pairs differing in s dimensions (robust).  Finally a
faulted complete exchange is *simulated* end-to-end with UDR routing
around the failures.

Run:  python examples/fault_tolerant_routing.py
"""

from repro.placements.linear import linear_placement
from repro.routing.faults import FaultMaskedRouting
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.fault_injection import (
    pair_connectivity_under_faults,
    random_link_failures,
)
from repro.sim.network import SimNetwork
from repro.sim.workloads import build_packets
from repro.torus.topology import Torus
from repro.util.tables import Table

K, D, SEED = 5, 3, 42


def main() -> None:
    torus = Torus(K, D)
    placement = linear_placement(torus)
    odr = OrderedDimensionalRouting(D)
    udr = UnorderedDimensionalRouting()
    print(f"T_{K}^{D}, linear placement of {len(placement)} processors, "
          f"{torus.num_edges} directed links")
    print()

    table = Table(
        ["failed links", "ODR pairs lost", "UDR pairs lost",
         "ODR surviving paths", "UDR surviving paths"],
        title="routing-relation connectivity under random link failures",
    )
    for f in (5, 20, 60, 120):
        failures = random_link_failures(torus, f, seed=SEED + f)
        s_odr = pair_connectivity_under_faults(placement, odr, failures)
        s_udr = pair_connectivity_under_faults(placement, udr, failures)
        table.add_row([
            f,
            f"{s_odr.disconnected_pairs}/{s_odr.total_pairs}",
            f"{s_udr.disconnected_pairs}/{s_udr.total_pairs}",
            f"{s_odr.surviving_path_fraction:.1%}",
            f"{s_udr.surviving_path_fraction:.1%}",
        ])
    print(table.render())
    print()

    # simulate a complete exchange on the faulted network, routing around
    # failures with UDR
    failures = random_link_failures(torus, 30, seed=SEED)
    masked = FaultMaskedRouting(udr, failures)
    coords = placement.coords()
    pairs, lost = [], 0
    for i in range(len(placement)):
        for j in range(len(placement)):
            if i == j:
                continue
            if masked.is_connected(torus, coords[i], coords[j]):
                pairs.append((i, j))
            else:
                lost += 1
    packets = build_packets(placement, masked, pairs, seed=SEED)
    result = CycleEngine(SimNetwork(torus, failed_edge_ids=failures)).run(packets)
    print(f"simulated complete exchange with 30 failed links (UDR rerouting):")
    print(f"  deliverable pairs : {len(pairs)} (lost {lost})")
    print(f"  delivered packets : {result.delivered}")
    print(f"  completion time   : {result.cycles} cycles")
    print(f"  mean latency      : {result.mean_latency:.2f} cycles")
    print(f"  busiest link      : {result.max_link_count} traversals")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Capacity planning: how many processors can a torus support?

The paper's headline: a fully populated k-torus saturates — its busiest
link carries Θ(|P|^(1+1/d)) messages under complete exchange — while a
linear placement of k^(d-1) processors keeps the busiest link at Θ(|P|).
This example sweeps k for both families, fits the growth exponents, and
evaluates Eq. 9's ceiling on optimal placement size.

Run:  python examples/capacity_planning.py
"""

from repro.core.scaling import fit_power_law, scaling_rows
from repro.core.verify import verify_linear_load
from repro.load import formulas
from repro.placements.fully import FullyPopulatedFamily
from repro.placements.linear import LinearPlacementFamily
from repro.routing.odr import OrderedDimensionalRouting
from repro.util.tables import Table

D = 2
KS_LINEAR = [4, 6, 8, 12, 16, 20]
KS_FULL = [4, 6, 8, 10, 12]


def main() -> None:
    table = Table(
        ["k", "family", "|P|", "E_max", "E_max/|P|"],
        title=f"busiest-link load under complete exchange (d={D}, ODR)",
    )
    rows_lin = scaling_rows(
        LinearPlacementFamily(), OrderedDimensionalRouting, D, KS_LINEAR
    )
    rows_full = scaling_rows(
        FullyPopulatedFamily(), OrderedDimensionalRouting, D, KS_FULL
    )
    for k, size, emax, ratio in rows_lin:
        table.add_row([k, "linear", size, emax, ratio])
    for k, size, emax, ratio in rows_full:
        table.add_row([k, "fully populated", size, emax, ratio])
    print(table.render())
    print()

    fit_lin = fit_power_law([r[1] for r in rows_lin], [r[2] for r in rows_lin])
    fit_full = fit_power_law([r[1] for r in rows_full], [r[2] for r in rows_full])
    print(f"growth exponents (E_max ~ C * |P|^alpha):")
    print(f"  linear placement : alpha = {fit_lin.exponent:.3f}  (paper: 1)")
    print(f"  fully populated  : alpha = {fit_full.exponent:.3f}  "
          f"(paper: 1 + 1/d = {1 + 1 / D:.3f} asymptotically)")
    print()

    cert = verify_linear_load(
        LinearPlacementFamily(), OrderedDimensionalRouting, D, KS_LINEAR
    )
    print(f"linear-load certificate: is_linear={cert.is_linear}, "
          f"slope={cert.slope:.3f}, R^2={cert.r_squared:.5f}")
    print()

    print("Eq. 9 capacity ceiling (|P| <= 12*d*c1*k^(d-1), with the measured "
          "c1 = E_max/|P|):")
    c1 = rows_lin[-1][3]
    for k in KS_LINEAR:
        ceiling = formulas.max_placement_size_bound(c1, k, D)
        print(f"  k={k:3d}: linear placement uses {k ** (D - 1):4d} of "
              f"<= {ceiling:g} admissible processors")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Drive the packet simulator and validate it against the analysis.

Runs complete exchanges on T_6^2 through the cycle-accurate
store-and-forward simulator for three configurations — linear + ODR,
linear + UDR, fully populated + ODR — and compares the simulated per-link
traffic to the analytic Definition-4 loads.

Run:  python examples/simulator_demo.py
"""

from repro.core.analysis import compute_loads
from repro.placements.fully import fully_populated_placement
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.metrics import summarize_link_counts
from repro.sim.network import SimNetwork
from repro.sim.validate import compare_sim_to_analytic
from repro.sim.workloads import complete_exchange_packets
from repro.util.tables import Table

K = 6


def main() -> None:
    torus_cfg = [
        ("linear + ODR", linear_placement, lambda d: OrderedDimensionalRouting(d), 1),
        ("linear + UDR", linear_placement, lambda d: UnorderedDimensionalRouting(), 40),
        ("full + ODR", fully_populated_placement,
         lambda d: OrderedDimensionalRouting(d), 1),
    ]
    table = Table(
        ["configuration", "|P|", "packets", "cycles", "mean latency",
         "busiest link", "analytic E_max", "max |err|"],
        title=f"simulated complete exchange on T_{K}^2",
    )
    for name, make_placement, make_routing, rounds in torus_cfg:
        from repro.torus.topology import Torus

        torus = Torus(K, 2)
        placement = make_placement(torus)
        routing = make_routing(2)
        packets = complete_exchange_packets(placement, routing, seed=0, rounds=rounds)
        result = CycleEngine(SimNetwork(torus)).run(packets)
        summary = summarize_link_counts(result.link_counts).normalized(rounds)

        analytic = compute_loads(placement, routing)
        rep = compare_sim_to_analytic(placement, routing, analytic,
                                      rounds=rounds, seed=0)
        table.add_row([
            name,
            len(placement),
            len(packets),
            result.cycles,
            f"{result.mean_latency:.2f}",
            summary.max_count,
            f"{analytic.max():.3f}",
            f"{rep.max_abs_error:.3f}",
        ])
    print(table.render())
    print()
    print("notes:")
    print("- ODR is deterministic: simulated counters equal the analytic "
          "loads exactly (max |err| = 0).")
    print("- UDR samples one of s! paths per message: counters converge to "
          "the fractional loads as rounds grow.")
    print("- the fully populated torus needs far more cycles per exchange — "
          "the congestion the paper's partial placements eliminate.")


if __name__ == "__main__":
    main()

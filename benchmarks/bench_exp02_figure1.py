"""Benchmark EXP-2: Fig. 1 — three processors on T_3^2.

Regenerates the EXP-2 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-2")
def test_EXP_2(run_experiment):
    run_experiment("EXP-2", quick=False, rounds=3)

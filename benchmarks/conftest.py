"""Shared helper for the experiment benchmarks.

Each ``bench_expNN_*.py`` runs one registered experiment under
pytest-benchmark, asserts its paper-vs-measured checks pass, and prints the
result tables (the same rows recorded in EXPERIMENTS.md).

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import get_experiment


def run_experiment_benchmark(
    benchmark, capsys, exp_id: str, quick: bool = False, rounds: int = 1
):
    """Benchmark one experiment and print its report."""
    exp = get_experiment(exp_id)
    result = benchmark.pedantic(
        lambda: exp.run(quick=quick), rounds=rounds, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, [
        f for f in result.findings if f.startswith("[FAIL]")
    ]
    return result


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Fixture binding the helper to this test's benchmark/capsys."""

    def _run(exp_id: str, quick: bool = False, rounds: int = 1):
        return run_experiment_benchmark(
            benchmark, capsys, exp_id, quick=quick, rounds=rounds
        )

    return _run

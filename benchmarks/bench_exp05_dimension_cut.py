"""Benchmark EXP-5: Theorem 1 two-cut bisection.

Regenerates the EXP-5 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-5")
def test_EXP_5(run_experiment):
    run_experiment("EXP-5", quick=False, rounds=2)

"""Benchmark EXP-23: Mixed-radix tori generalization.

Regenerates the EXP-23 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-23")
def test_EXP_23(run_experiment):
    run_experiment("EXP-23", quick=False, rounds=2)

"""Benchmark EXP-20: Greedy phase schedules vs the bandwidth bound.

Regenerates the EXP-20 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-20")
def test_EXP_20(run_experiment):
    run_experiment("EXP-20", quick=False, rounds=1)

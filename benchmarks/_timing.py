"""Shared wall-clock helpers for the benchmark suite.

One copy of the warm-up/min-of-N timing conventions that
``bench_fft.py``, ``bench_engines.py``, ``bench_exec.py``, and
``bench_batch.py`` all rely on.  Timing on shared CI hardware is noisy
in one direction only (preemption makes runs *slower*), so every helper
reports the **minimum** over repeats — the best observation is the
closest to the true cost of the code path.
"""

import time


def elapsed_seconds(fn):
    """One timed call: ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def best_of(fn, rounds: int = 3):
    """Min-of-N wall time of ``fn``: ``(best_seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def warm_seconds(engine, placement, routing, repeats: int = 15) -> float:
    """Warm min-of-N wall time of one ``edge_loads`` call.

    The first (untimed) call builds the backend's caches and spectral
    plans, so the measured repeats see steady-state cost only.
    """
    engine.edge_loads(placement, routing)  # build caches / plans
    best, _ = best_of(
        lambda: engine.edge_loads(placement, routing), rounds=repeats
    )
    return best

"""Benchmark the observability layer's overhead on a certify workload.

The telemetry charter (`docs/OBSERVABILITY.md`) promises that tracing is
free when nobody asked for it and cheap when they did.  This suite pins
both halves on the EXP-22-style workload — a full serial certification
of all ``C(16, 4)`` placements on ``T_4^2``:

* **disabled** — with no tracer installed every instrumentation site
  dispatches to ``NULL_TRACER``/``_NULL_SPAN``; a micro-benchmark of
  the null path proves the workload's handful of tracer touches cost
  under 2% of its wall-clock;
* **enabled** — a real ``Tracer`` writing JSONL must stay within 10%
  of the disabled run (plus an absolute floor so single-core CI
  scheduler jitter cannot flake the suite).

Both traced and untraced runs must certify bit-identical results — the
tracer is an observer, never a participant.
"""

from __future__ import annotations

import pytest
from _timing import best_of as _best_of

from repro.obs import JsonlTraceSink, Tracer, current_tracer, using_tracer
from repro.placements.exact_search import exact_global_minimum
from repro.torus.topology import Torus

K, D, SIZE = 4, 2, 4

#: enabled / disabled wall-clock ratio pin.
MAX_ENABLED_RATIO = 1.10
#: the disabled (null) path must cost < 2% of the workload.
MAX_DISABLED_FRACTION = 0.02
#: absolute jitter floor (seconds) so sub-second CI noise cannot flake.
NOISE_FLOOR = 0.25
#: null-path micro-benchmark iterations — a serial certify performs a
#: couple of dozen tracer touches, so 1000 bounds it from far above.
NULL_OPS = 1_000


def _certify():
    return exact_global_minimum(Torus(K, D), SIZE, progress=False)


def _result_key(result):
    return (
        result.minimum_emax,
        result.num_placements,
        result.num_optimal,
        result.counters,
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_certify_untraced(benchmark):
    result = benchmark(_certify)
    assert result.minimum_emax == 2.0


@pytest.mark.benchmark(group="obs-overhead")
def test_certify_traced(benchmark, tmp_path):
    def _traced():
        tracer = Tracer(
            sink=JsonlTraceSink(tmp_path / "bench.jsonl", label="bench"),
            label="bench",
        )
        with using_tracer(tracer):
            result = _certify()
        tracer.finish()
        return result

    result = benchmark(_traced)
    assert result.minimum_emax == 2.0


def test_disabled_path_costs_under_two_percent(capsys):
    """1k null-tracer touches cost < 2% of one certify wall-clock.

    The workload itself performs far fewer tracer touches than this, so
    bounding the micro-cost bounds the real disabled overhead from above.
    """
    workload_time, _ = _best_of(_certify)

    tracer = current_tracer()
    assert not tracer.enabled

    def _null_touches():
        for _ in range(NULL_OPS):
            with tracer.span("bench.noop", k=K):
                pass
            tracer.event("bench.noop")
            tracer.metrics.counter("bench.noop").add(1)

    null_time, _ = _best_of(_null_touches)
    fraction = null_time / workload_time
    with capsys.disabled():
        print(
            f"\nobs disabled: workload={workload_time:.3f}s "
            f"{NULL_OPS} null ops={null_time * 1e3:.2f}ms "
            f"fraction={fraction:.4f}"
        )
    assert null_time <= workload_time * MAX_DISABLED_FRACTION, (
        f"null tracer path costs {fraction:.2%} of the certify workload, "
        f"over the {MAX_DISABLED_FRACTION:.0%} pin"
    )


def test_enabled_overhead_pinned(tmp_path, capsys):
    """Traced certify within 10% of untraced (min of 3 runs each)."""
    untraced_time, untraced = _best_of(_certify)

    def _traced():
        tracer = Tracer(
            sink=JsonlTraceSink(tmp_path / "pin.jsonl", label="bench"),
            label="bench",
        )
        with using_tracer(tracer):
            result = _certify()
        tracer.finish()
        return result

    traced_time, traced = _best_of(_traced)
    assert _result_key(traced) == _result_key(untraced)
    ratio = traced_time / untraced_time
    with capsys.disabled():
        print(
            f"\nobs enabled: untraced={untraced_time:.3f}s "
            f"traced={traced_time:.3f}s ratio={ratio:.3f}"
        )
    assert traced_time <= untraced_time * MAX_ENABLED_RATIO + NOISE_FLOOR, (
        f"enabled tracer overhead {ratio:.3f}x exceeds the "
        f"{MAX_ENABLED_RATIO}x pin (untraced {untraced_time:.3f}s, "
        f"traced {traced_time:.3f}s)"
    )

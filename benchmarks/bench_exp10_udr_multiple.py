"""Benchmark EXP-10: Theorem 5 multiple linear placements under UDR.

Regenerates the EXP-10 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-10")
def test_EXP_10(run_experiment):
    run_experiment("EXP-10", quick=False, rounds=2)

"""Benchmark EXP-3: Lemma 1 / Eq. 6 separator lower bounds.

Regenerates the EXP-3 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-3")
def test_EXP_3(run_experiment):
    run_experiment("EXP-3", quick=False, rounds=2)

"""Benchmark EXP-22: Exhaustive global-optimality certification.

Regenerates the EXP-22 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-22")
def test_EXP_22(run_experiment):
    run_experiment("EXP-22", quick=False, rounds=1)

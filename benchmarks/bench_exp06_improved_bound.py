"""Benchmark EXP-6: Section 4 dimension-independent bound and crossover.

Regenerates the EXP-6 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-6")
def test_EXP_6(run_experiment):
    run_experiment("EXP-6", quick=False, rounds=3)

"""Benchmark EXP-9: Theorem 4 UDR loads and path multiplicity.

Regenerates the EXP-9 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-9")
def test_EXP_9(run_experiment):
    run_experiment("EXP-9", quick=False, rounds=2)

"""Benchmark EXP-8: Theorem 3 multiple linear placements under ODR.

Regenerates the EXP-8 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-8")
def test_EXP_8(run_experiment):
    run_experiment("EXP-8", quick=False, rounds=2)

"""Benchmark the resilient executor's overhead against a bare pool.

The resilience layer wraps every pool fan-out in the repo
(`docs/ROBUSTNESS.md`), so its bookkeeping — task states, heartbeat
waits, report events — must be cheap.  This suite runs the EXP-22-style
catalog workload (all ``C(16, 4)`` placements on ``T_4^2``, sharded into
combination spans exactly as ``repro.placements.catalog`` shards them)
three ways:

* serially, as the ground truth the other two must match bit-for-bit;
* through a bare ``ProcessPoolExecutor.map`` (the pre-resilience code
  shape);
* through ``ResilientExecutor.run`` with the default fault-free policy.

The overhead pin asserts the resilient wall-clock stays within 5% of
the bare pool (plus a small absolute floor so single-core CI scheduler
jitter cannot flake the suite) — timings vary by machine, the *ratio*
must not drift.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor

import pytest
from _timing import best_of

from repro.exec import ExecPolicy, ExecTask, ResilientExecutor
from repro.placements.catalog import (
    _evaluate_chunk,
    _evaluate_span,
    _init_span_worker,
)
from repro.torus.topology import Torus

K, D, SIZE = 4, 2, 4
JOBS = 2
N_SPANS = 16

#: wall-clock ratio pin: resilient / bare must stay under this.
MAX_OVERHEAD_RATIO = 1.05
#: absolute jitter floor (seconds) so sub-second CI noise cannot flake.
NOISE_FLOOR = 0.25


def _spans():
    stream = itertools.combinations(range(K**D), SIZE)
    total = 1820  # C(16, 4)
    chunk = -(-total // N_SPANS)
    spans = []
    while True:
        block = list(itertools.islice(stream, chunk))
        if not block:
            return spans
        spans.append((block[0], len(block)))


SPANS = _spans()


def _merge(partials):
    """Histogram + minimum merged exactly as the catalog merges them."""
    histogram: dict[float, int] = {}
    best = None
    for p_best, _ids, _count, p_hist in partials:
        for value, count in p_hist.items():
            histogram[value] = histogram.get(value, 0) + count
        if p_best is not None and (best is None or p_best < best):
            best = p_best
    return best, histogram


def _run_bare_pool():
    with ProcessPoolExecutor(
        max_workers=JOBS, initializer=_init_span_worker, initargs=(K, D)
    ) as pool:
        return list(pool.map(_evaluate_span, SPANS))


def _run_resilient():
    tasks = [
        ExecTask(f"span-{index:05d}", span)
        for index, span in enumerate(SPANS)
    ]
    executor = ResilientExecutor(
        _evaluate_span,
        jobs=JOBS,
        initializer=_init_span_worker,
        initargs=(K, D),
        policy=ExecPolicy(),
        label="bench-exec",
    )
    return executor.run(tasks).in_task_order(tasks)


def _serial_reference():
    torus = Torus(K, D)
    all_ids = itertools.combinations(range(torus.num_nodes), SIZE)
    return _merge([_evaluate_chunk((K, D, all_ids))])


@pytest.mark.benchmark(group="exec-overhead")
def test_bare_pool_catalog_spans(benchmark):
    partials = benchmark(_run_bare_pool)
    assert _merge(partials) == _serial_reference()


@pytest.mark.benchmark(group="exec-overhead")
def test_resilient_executor_catalog_spans(benchmark):
    partials = benchmark(_run_resilient)
    assert _merge(partials) == _serial_reference()


def test_overhead_ratio_pinned(capsys):
    """Resilient wall-clock within 5% of the bare pool (min of 3 runs)."""

    bare_time, bare = best_of(_run_bare_pool)
    resilient_time, resilient = best_of(_run_resilient)
    assert _merge(resilient) == _merge(bare) == _serial_reference()
    ratio = resilient_time / bare_time
    with capsys.disabled():
        print(
            f"\nexec overhead: bare={bare_time:.3f}s "
            f"resilient={resilient_time:.3f}s ratio={ratio:.3f}"
        )
    assert resilient_time <= bare_time * MAX_OVERHEAD_RATIO + NOISE_FLOOR, (
        f"resilient executor overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD_RATIO}x pin (bare {bare_time:.3f}s, "
        f"resilient {resilient_time:.3f}s)"
    )

"""Benchmark EXP-21: Restricted vs unrestricted ODR tie handling.

Regenerates the EXP-21 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-21")
def test_EXP_21(run_experiment):
    run_experiment("EXP-21", quick=False, rounds=2)

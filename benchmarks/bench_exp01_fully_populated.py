"""Benchmark EXP-1: Section 1 motivation — superlinear load on fully populated tori.

Regenerates the EXP-1 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-1")
def test_EXP_1(run_experiment):
    run_experiment("EXP-1", quick=False, rounds=3)

"""Benchmark EXP-7: Theorem 2 + Section 6.1 ODR closed forms.

Regenerates the EXP-7 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-7")
def test_EXP_7(run_experiment):
    run_experiment("EXP-7", quick=False, rounds=2)

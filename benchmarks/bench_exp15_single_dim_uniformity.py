"""Benchmark EXP-15: Single-dimension uniformity suffices for Theorem 1.

Regenerates the EXP-15 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-15")
def test_EXP_15(run_experiment):
    run_experiment("EXP-15", quick=False, rounds=2)

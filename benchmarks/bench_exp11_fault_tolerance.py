"""Benchmark EXP-11: Section 7 fault tolerance, ODR vs UDR.

Regenerates the EXP-11 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-11")
def test_EXP_11(run_experiment):
    run_experiment("EXP-11", quick=False, rounds=1)

"""Benchmark EXP-19: Local placement search never beats the linear placement.

Regenerates the EXP-19 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-19")
def test_EXP_19(run_experiment):
    run_experiment("EXP-19", quick=False, rounds=1)

"""Benchmark EXP-14: Offset and coefficient symmetry of linear placements.

Regenerates the EXP-14 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-14")
def test_EXP_14(run_experiment):
    run_experiment("EXP-14", quick=False, rounds=2)

"""Pin the bench observatory itself: trajectory coverage and gating.

The performance-regression observatory (`repro bench report`,
:mod:`repro.devtools.benchreport`) aggregates every committed
``BENCH_*.json`` baseline into one schema-versioned trajectory and gates
CI on the pinned metrics.  This suite asserts the observatory's own
invariants against the *committed* baselines:

* every committed ``BENCH_*.json`` appears as a trajectory source and
  contributes at least one metric;
* the freshly rebuilt trajectory passes its own ``--check`` (the repo
  is never committed in a state where the gate would fail);
* rebuilding on top of an existing trajectory is idempotent — unchanged
  values append no points, so regeneration never churns the file;
* the committed ``benchmarks/BENCH_trajectory.json`` carries the
  current schema version and covers the same sources.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.devtools.benchreport import (
    TRAJECTORY_SCHEMA_VERSION,
    build_trajectory,
    check_trajectory,
    extract_metrics,
)

BENCH_DIR = pathlib.Path(__file__).resolve().parent
COMMITTED = BENCH_DIR / "BENCH_trajectory.json"


@pytest.fixture(scope="module")
def baseline_files() -> list[pathlib.Path]:
    files = sorted(
        p
        for p in BENCH_DIR.glob("BENCH_*.json")
        if p.name != COMMITTED.name
    )
    assert files, "no committed BENCH_*.json baselines found"
    return files


@pytest.fixture(scope="module")
def trajectory(baseline_files) -> dict:
    return build_trajectory(BENCH_DIR, previous=None, now=0.0)


def test_every_baseline_is_a_source(trajectory, baseline_files):
    assert trajectory["sources"] == [p.name for p in baseline_files]


def test_every_baseline_contributes_metrics(trajectory, baseline_files):
    by_source = {m["source"] for m in trajectory["metrics"].values()}
    for path in baseline_files:
        assert path.name in by_source, f"{path.name} contributed no metrics"


def test_schema_version_stamped(trajectory):
    assert trajectory["schema_version"] == TRAJECTORY_SCHEMA_VERSION


def test_fresh_trajectory_passes_its_own_check(trajectory):
    violations = check_trajectory(trajectory, BENCH_DIR)
    assert violations == []


def test_rebuild_is_idempotent(trajectory):
    again = build_trajectory(BENCH_DIR, previous=trajectory, now=1.0)
    assert again == trajectory


def test_extractors_cover_known_baselines(baseline_files):
    # curated extractors must keep up with new baselines: every file
    # yields metrics, and gated (thresholded or exact) metrics exist.
    gated = 0
    for path in baseline_files:
        data = json.loads(path.read_text(encoding="utf-8"))
        metrics = extract_metrics(path.name, data)
        assert metrics, f"extract_metrics({path.name}) returned nothing"
        gated += sum(
            1
            for _name, _value, direction, threshold in metrics
            if direction == "exact" or threshold is not None
        )
    assert gated > 0


@pytest.mark.skipif(
    not COMMITTED.exists(), reason="trajectory not yet committed"
)
def test_committed_trajectory_current(trajectory):
    committed = json.loads(COMMITTED.read_text(encoding="utf-8"))
    assert committed["schema_version"] == TRAJECTORY_SCHEMA_VERSION
    assert committed["sources"] == trajectory["sources"]
    assert set(committed["metrics"]) == set(trajectory["metrics"])
    assert check_trajectory(committed, BENCH_DIR) == []

"""Benchmark batched multi-placement evaluation and the spectral plan cache.

The ISSUE-8 acceptance criteria, asserted live on every run:

* batched FFT evaluation of 64 placements on ``T_16^2`` is at least
  **5x** faster than 64 sequential warm ``edge_loads`` calls;
* warm same-plan calls show a plan-cache hit rate of at least **90%**
  in the obs metrics snapshot;
* the batched load matrix is **bit-identical** to the sequential rows
  after the integer snap-back.

The 64-placement workload is 4 linear coefficient families x 16 offsets
— 4 distinct difference sets, so the batch exercises the grouped path
(one stacked transform per family against its shared cached spectrum).
Committed machine-recorded numbers live in ``benchmarks/BENCH_batch.json``;
timings there are informational, the pins above must hold everywhere.

Run with::

    pytest benchmarks/bench_batch.py --benchmark-only
"""

import json
import pathlib

import numpy as np
import pytest
from _timing import best_of

from repro.load.engine import LoadEngine
from repro.load.plancache import PlanCache, using_plan_cache
from repro.obs import Tracer, using_tracer
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.torus.topology import Torus

BASELINE = pathlib.Path(__file__).with_name("BENCH_batch.json")

K, D = 16, 2

#: 4 coefficient families x 16 offsets = 64 distinct coset placements
#: sharing 4 difference sets (all coefficients coprime to k=16).
COEFFICIENT_SETS = ((1, 1), (1, 3), (1, 5), (1, 7))
BATCH = 64

#: live pins (machine-independent ratios, not absolute timings).
MIN_SPEEDUP = 5.0
MIN_HIT_RATE = 0.90


def _placements(torus=None):
    torus = torus if torus is not None else Torus(K, D)
    return [
        linear_placement(torus, coefficients=coeffs, offset=offset)
        for coeffs in COEFFICIENT_SETS
        for offset in range(torus.k)
    ]


def test_batch_bit_identical_to_sequential():
    placements = _placements()
    routing = OrderedDimensionalRouting(D)
    with using_plan_cache(PlanCache()):
        engine = LoadEngine("fft")
        batched = engine.edge_loads_many(placements, routing)
        sequential = np.stack(
            [engine.edge_loads(p, routing) for p in placements]
        )
    assert batched.shape == (BATCH, Torus(K, D).num_edges)
    assert np.array_equal(batched, sequential)


@pytest.mark.benchmark(group="engine-batch")
def test_batched_speedup_and_hit_rate(benchmark, capsys):
    """The ISSUE-8 acceptance check, measured on a warm plan cache."""
    placements = _placements()
    routing = OrderedDimensionalRouting(D)
    tracer = Tracer(label="bench-batch")
    with using_tracer(tracer), using_plan_cache(PlanCache()):
        engine = LoadEngine("fft")
        # warm: builds the plan, class tables, and all 4 family spectra
        engine.edge_loads_many(placements, routing)

        sequential_seconds, sequential = best_of(
            lambda: [engine.edge_loads(p, routing) for p in placements]
        )
        batched = benchmark(engine.edge_loads_many, placements, routing)
        batched_seconds = benchmark.stats.stats.min
        snapshot = tracer.metrics.snapshot()

    assert np.array_equal(batched, np.stack(sequential))

    speedup = sequential_seconds / batched_seconds
    hits = snapshot["counters"]["plancache.hits"]
    misses = snapshot["counters"]["plancache.misses"]
    hit_rate = hits / (hits + misses)
    with capsys.disabled():
        print(
            f"\nbatch: sequential={sequential_seconds * 1e3:.2f}ms "
            f"batched={batched_seconds * 1e3:.2f}ms "
            f"speedup={speedup:.1f}x hit_rate={hit_rate:.3f}"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"batched evaluation only {speedup:.1f}x faster than {BATCH} "
        f"sequential warm edge_loads calls on T_{K}^{D} "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert hit_rate >= MIN_HIT_RATE, (
        f"plan-cache hit rate {hit_rate:.3f} below the "
        f"{MIN_HIT_RATE} pin ({hits} hits / {misses} misses)"
    )
    # the whole warm session needed exactly one plan build
    assert misses == 1


def test_batch_size_chunking_is_observable():
    """Realized batch sizes land on the engine.batch_size histogram."""
    placements = _placements()
    routing = OrderedDimensionalRouting(D)
    tracer = Tracer(label="bench-batch-chunks")
    with using_tracer(tracer), using_plan_cache(PlanCache()):
        LoadEngine("fft").edge_loads_many(
            placements, routing, batch_size=24
        )
    hist = tracer.metrics.snapshot()["histograms"]["engine.batch_size"]
    # 64 placements in blocks of 24 -> 24 + 24 + 16
    assert hist["count"] == 3
    assert hist["total"] == BATCH


def test_baseline_pins():
    """The committed baseline's machine-independent facts must hold."""
    recorded = json.loads(BASELINE.read_text())
    assert recorded["k"] == K and recorded["d"] == D
    assert recorded["batch"] == BATCH
    assert recorded["families"] == [list(c) for c in COEFFICIENT_SETS]
    assert recorded["min_speedup"] == MIN_SPEEDUP
    assert recorded["min_hit_rate"] == MIN_HIT_RATE
    placements = _placements()
    assert len(placements) == BATCH
    emaxes = LoadEngine("fft").emax_many(
        placements, OrderedDimensionalRouting(D)
    )
    assert sorted({float(v) for v in emaxes}) == recorded["emax_values"]


def write_baseline() -> dict:
    """Measure and record the committed batched-evaluation baseline."""
    placements = _placements()
    routing = OrderedDimensionalRouting(D)
    tracer = Tracer(label="bench-batch-baseline")
    with using_tracer(tracer), using_plan_cache(PlanCache()):
        engine = LoadEngine("fft")
        engine.edge_loads_many(placements, routing)  # warm
        sequential_seconds, _ = best_of(
            lambda: [engine.edge_loads(p, routing) for p in placements]
        )
        batched_seconds, _ = best_of(
            lambda: engine.edge_loads_many(placements, routing),
            rounds=15,
        )
        snapshot = tracer.metrics.snapshot()
        emaxes = engine.emax_many(placements, routing)
    hits = snapshot["counters"]["plancache.hits"]
    misses = snapshot["counters"]["plancache.misses"]
    baseline = {
        "description": (
            "Batched edge_loads_many vs sequential warm edge_loads on "
            "T_16^2 (4 linear coefficient families x 16 offsets). "
            "Timings are informational (machine-dependent); the "
            ">= 5x speedup, >= 90% plan-cache hit rate, and batched == "
            "sequential bit-identity are asserted live by "
            "bench_batch.py on every run."
        ),
        "k": K,
        "d": D,
        "batch": BATCH,
        "families": [list(c) for c in COEFFICIENT_SETS],
        "emax_values": sorted({float(v) for v in emaxes}),
        "min_speedup": MIN_SPEEDUP,
        "min_hit_rate": MIN_HIT_RATE,
        "measured": {
            "sequential_ms": round(sequential_seconds * 1e3, 3),
            "batched_ms": round(batched_seconds * 1e3, 3),
            "speedup": round(sequential_seconds / batched_seconds, 1),
            "hit_rate": round(hits / (hits + misses), 4),
        },
    }
    BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


if __name__ == "__main__":
    print(json.dumps(write_baseline(), indent=2))

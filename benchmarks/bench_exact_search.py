"""Benchmark the exact-search engine against the brute-force catalog.

Three runs of the same certification problem (all ``C(16, 4)`` placements
on ``T_4^2``) trace the ISSUE-3 speed-up story:

* **brute force** — ``catalog.global_minimum_emax``: one full
  ``O(|P|^2)`` evaluation per candidate, 1820 total;
* **symmetry only** — ``exact_global_minimum(mode="full")``: canonical
  orbit enumeration with incremental loads, zero full evaluations, exact
  histogram;
* **symmetry + B&B** — ``exact_global_minimum(mode="bound")``: adds
  monotone-``E_max``/Lemma-1 pruning, exact minimum and count.

All three must agree bit-for-bit; the engines must perform at least 20x
fewer full placement evaluations than the brute force (they perform
none).  The deterministic work counts are pinned in
``benchmarks/BENCH_exp22.json`` — timings vary by machine, counts must
not.
"""

import json
from pathlib import Path

import pytest

from repro.load.odr_loads import odr_edge_loads
from repro.placements.catalog import global_minimum_emax
from repro.placements.exact_search import exact_global_minimum
from repro.placements.linear import linear_placement
from repro.torus.topology import Torus

BASELINE_PATH = Path(__file__).parent / "BENCH_exp22.json"


def _counts(result) -> dict:
    counters = result.counters
    return {
        "minimum_emax": result.minimum_emax,
        "num_placements": result.num_placements,
        "num_optimal": result.num_optimal,
        "full_evaluations": counters.full_evaluations,
        "leaf_orbits": counters.leaf_orbits,
        "variant_evaluations": counters.variant_evaluations,
        "pair_updates": counters.pair_updates,
        "subtrees_pruned_emax": counters.subtrees_pruned_emax,
        "subtrees_pruned_separator": counters.subtrees_pruned_separator,
        "variants_dropped": counters.variants_dropped,
    }


@pytest.mark.benchmark(group="exact-search-T4")
def test_brute_force_catalog(benchmark):
    catalog = benchmark(global_minimum_emax, Torus(4, 2), 4)
    assert catalog.minimum_emax == 2.0
    assert catalog.num_optimal == 292


@pytest.mark.benchmark(group="exact-search-T4")
def test_symmetry_only(benchmark, capsys):
    torus = Torus(4, 2)
    catalog = global_minimum_emax(torus, 4)
    result = benchmark(exact_global_minimum, torus, 4, mode="full")
    assert result.minimum_emax == catalog.minimum_emax
    assert result.num_optimal == catalog.num_optimal
    assert result.emax_histogram == catalog.emax_histogram
    brute_evals = catalog.num_placements
    assert result.counters.full_evaluations * 20 <= brute_evals
    with capsys.disabled():
        print(
            f"\nsymmetry-only: {brute_evals} brute-force full evaluations -> "
            f"{result.counters.full_evaluations} "
            f"({result.counters.leaf_orbits} orbits, "
            f"{result.counters.variant_evaluations} incremental leaf variants)"
        )


@pytest.mark.benchmark(group="exact-search-T4")
def test_symmetry_and_branch_and_bound(benchmark, capsys):
    torus = Torus(4, 2)
    catalog = global_minimum_emax(torus, 4)
    ub = float(odr_edge_loads(linear_placement(torus)).max())

    result = benchmark(
        exact_global_minimum, torus, 4, mode="bound", initial_upper_bound=ub
    )
    assert result.minimum_emax == catalog.minimum_emax
    assert result.num_optimal == catalog.num_optimal
    # the acceptance ratio: >= 20x fewer full placement evaluations
    assert result.counters.full_evaluations * 20 <= catalog.num_placements
    with capsys.disabled():
        print(
            f"\nsymmetry+B&B: {catalog.num_placements} brute-force full "
            f"evaluations -> {result.counters.full_evaluations} "
            f"({result.counters.leaf_orbits} surviving orbits, "
            f"{result.counters.subtrees_pruned_emax} subtrees pruned, "
            f"{result.counters.variants_dropped} variants dropped)"
        )


@pytest.mark.benchmark(group="exact-search-T5")
def test_t5_certification(benchmark):
    torus = Torus(5, 2)
    ub = float(odr_edge_loads(linear_placement(torus)).max())
    result = benchmark(
        exact_global_minimum, torus, 5, mode="bound", initial_upper_bound=ub
    )
    assert result.minimum_emax == 2.0
    assert result.num_optimal == 1545


@pytest.mark.benchmark(group="exact-search-T6")
def test_t6_certification(benchmark):
    # the k = 6 discovery: 24 even-sublattice placements beat the linear one
    torus = Torus(6, 2)
    ub = float(odr_edge_loads(linear_placement(torus)).max())
    result = benchmark.pedantic(
        lambda: exact_global_minimum(
            torus, 6, mode="bound", initial_upper_bound=ub
        ),
        rounds=1,
        iterations=1,
    )
    assert result.minimum_emax == 2.0
    assert result.num_optimal == 24


def test_counts_match_committed_baseline(capsys):
    """The deterministic work counts pinned in BENCH_exp22.json."""
    measured = {
        "brute_force_T4": {"full_evaluations": 1820},
        "symmetry_only_T4": _counts(
            exact_global_minimum(Torus(4, 2), 4, mode="full")
        ),
    }
    for k in (4, 5, 6):
        torus = Torus(k, 2)
        ub = float(odr_edge_loads(linear_placement(torus)).max())
        measured[f"symmetry_bnb_T{k}"] = _counts(
            exact_global_minimum(
                torus, k, mode="bound", initial_upper_bound=ub
            )
        )
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert measured == baseline["counts"], (
        "deterministic search counts drifted from benchmarks/BENCH_exp22.json"
        " — regenerate the baseline if the change is intended"
    )
    with capsys.disabled():
        print("\n" + json.dumps(measured, indent=2))

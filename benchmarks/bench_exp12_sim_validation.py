"""Benchmark EXP-12: Simulator validation + linear-vs-superlinear headline.

Regenerates the EXP-12 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-12")
def test_EXP_12(run_experiment):
    run_experiment("EXP-12", quick=False, rounds=1)

"""Benchmark EXP-4: Proposition 1 / Corollary 1 / Appendix hyperplane sweep.

Regenerates the EXP-4 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-4")
def test_EXP_4(run_experiment):
    run_experiment("EXP-4", quick=False, rounds=2)

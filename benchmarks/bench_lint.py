"""Benchmark the semantic lint engine and pin its deterministic facts.

Two kinds of checks, mirroring ``bench_engines.py``'s split:

* **throughput** (informational, machine-dependent) — wall-clock of a
  whole-``src`` lint run and of a synthetic corpus; recorded in
  ``benchmarks/BENCH_lint.json`` as ``files_per_sec`` for trend-spotting
  but never asserted;
* **exactness pins** (asserted live against the committed baseline) —
  the rule catalogue, the self-lint cleanliness of ``src``, and the
  exact per-code finding counts on a deterministic synthetic corpus.
  The corpus exercises the resolver (aliased imports), the taint pass
  (RL012/RL013 flows), and the scope analysis (RL014), so a regression
  in any semantic layer shifts a pinned count.

CI runs this file as part of the bench-smoke job with one quick round:
the pins always execute, the timing stats are not interpreted.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.devtools.lint import all_rules, lint_paths
from repro.devtools.lint.autofix import fix_paths

BASELINE = pathlib.Path(__file__).with_name("BENCH_lint.json")
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: synthetic corpus size — large enough that per-file noise averages
#: out, small enough that the smoke run stays in single-digit seconds.
CORPUS_FILES = 24

#: one synthetic module; every violation below is pinned in the
#: baseline's ``per_file`` map (the linter must find exactly these).
_CORPUS_TEMPLATE = '''\
"""Synthetic lint workload #{index}."""

import os
import sys
import numpy as np
from collections import deque


def my_edge_loads(pairs, paths):
    loads = {{}}
    for pair in pairs:
        loads[pair] = 1.0 / len(paths)
    return loads


def shuffle_candidates(items, seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(items)
    return items


def record_listing(journal, task_id, root):
    acc = []
    for name in set(os.listdir(root)):
        acc.append(name)
    journal.record(task_id, acc)


def open_span(tracer, n):
    span = tracer.span("work_{index}", n=n)
    return span


def stage(queue=deque()):
    return queue
'''


def _expected_per_file() -> dict[str, int]:
    """Per-code findings each synthetic module must produce."""
    return {
        "RL002": 1,  # unguarded 1.0/len division inside repro.load
        "RL006": 1,  # `sys` unused
        "RL007": 1,  # deque() default
        "RL011": 1,  # default_rng (rng.shuffle's receiver is a call
        #              result, deliberately beyond the resolver)
        "RL012": 1,  # set(os.listdir) -> journal.record
        "RL013": 1,  # unsnapped 1.0/len reaching the return
        "RL015": 1,  # span stored, never entered
        "RL017": 1,  # f-string-derived span name "work_{index}"
    }


def _write_corpus(root: pathlib.Path) -> pathlib.Path:
    pkg = root / "repro" / "load"
    pkg.mkdir(parents=True, exist_ok=True)
    for index in range(CORPUS_FILES):
        target = pkg / f"synthetic_{index:03d}.py"
        target.write_text(
            _CORPUS_TEMPLATE.format(index=index), encoding="utf-8"
        )
    return root


@pytest.fixture(scope="module")
def baseline() -> dict:
    return json.loads(BASELINE.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def corpus(tmp_path_factory) -> pathlib.Path:
    return _write_corpus(tmp_path_factory.mktemp("lint_corpus"))


# ---------------------------------------------------------------- pins


def test_rule_catalogue_pinned(baseline):
    codes = [rule.code for rule in all_rules()]
    assert codes == baseline["rules"]


def test_self_lint_is_clean(baseline):
    report = lint_paths([SRC])
    assert len(report.findings) == 0
    assert report.files_scanned >= baseline["self_lint"]["min_files"]


def test_corpus_counts_pinned(baseline, corpus):
    report = lint_paths([corpus])
    assert report.files_scanned == CORPUS_FILES
    expected_total = {
        code: count * CORPUS_FILES
        for code, count in baseline["corpus"]["per_file"].items()
    }
    assert report.counts == expected_total


def test_corpus_matches_inline_expectation(baseline):
    # the committed baseline and this file must agree — a drift in either
    # is a review-visible diff, not a silent re-pin.
    assert baseline["corpus"]["per_file"] == {
        code: count
        for code, count in _expected_per_file().items()
    }
    assert baseline["corpus"]["files"] == CORPUS_FILES


def test_autofix_pinned(baseline, tmp_path):
    root = _write_corpus(tmp_path / "fix_corpus")
    result = fix_paths([root], write=True)
    per_file = baseline["corpus"]["per_file"]
    assert result.total_fixes == (
        (per_file["RL006"] + per_file["RL007"]) * CORPUS_FILES
    )
    # idempotence: a second pass finds nothing left to fix
    again = fix_paths([root], write=True)
    assert again.total_fixes == 0
    # and the fixable codes are gone while semantic findings remain
    report = lint_paths([root])
    assert "RL006" not in report.counts
    assert "RL007" not in report.counts
    assert report.counts["RL013"] == CORPUS_FILES


# ---------------------------------------------------------- throughput


@pytest.mark.benchmark(group="lint")
def test_lint_src_throughput(benchmark):
    report = benchmark(lambda: lint_paths([SRC]))
    assert len(report.findings) == 0


@pytest.mark.benchmark(group="lint")
def test_lint_corpus_throughput(benchmark, corpus):
    report = benchmark(lambda: lint_paths([corpus]))
    assert report.files_scanned == CORPUS_FILES

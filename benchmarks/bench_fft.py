"""Micro-benchmarks of the FFT load backend vs the other engines.

The acceptance criterion behind these numbers: on a ``T_32^2`` linear
placement under ODR, a warm ``fft`` ``edge_loads`` call must be at least
**10x** faster than a warm ``displacement`` call.  The committed
machine-recorded throughputs live in ``benchmarks/BENCH_engines.json``;
timings there are informational (machines differ), while the exactness
pins (``emax`` per configuration) and the live speedup ratio asserted
here must hold everywhere.

Run with::

    pytest benchmarks/bench_fft.py --benchmark-only
"""

import json
import pathlib

import numpy as np
import pytest
from _timing import warm_seconds

from repro.load.engine import LoadEngine
from repro.load.odr_loads import odr_edge_loads
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.routing.udr import UnorderedDimensionalRouting
from repro.torus.topology import Torus

BASELINE = pathlib.Path(__file__).with_name("BENCH_engines.json")

#: the tori the throughput comparison sweeps.
CONFIGS = [(16, 2), (32, 2)]

#: backends compared in the committed pairs/sec table.
BACKENDS = ("reference", "vectorized", "fft", "displacement")


def _pairs(placement) -> int:
    m = len(placement)
    return m * (m - 1)


@pytest.mark.benchmark(group="engine-fft")
@pytest.mark.parametrize("k,d", CONFIGS)
def test_fft_loads(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    routing = OrderedDimensionalRouting(d)
    engine = LoadEngine("fft")
    engine.edge_loads(placement, routing)  # warm template + plan caches
    loads = benchmark(engine.edge_loads, placement, routing)
    assert np.array_equal(loads, odr_edge_loads(placement))


@pytest.mark.benchmark(group="engine-fft")
def test_fft_udr_loads(benchmark):
    placement = linear_placement(Torus(16, 2))
    routing = UnorderedDimensionalRouting()
    engine = LoadEngine("fft")
    engine.edge_loads(placement, routing)
    loads = benchmark(engine.edge_loads, placement, routing)
    disp = LoadEngine("displacement").edge_loads(placement, routing)
    assert np.abs(loads - disp).max(initial=0.0) <= 1e-9


@pytest.mark.benchmark(group="engine-fft")
def test_fft_speedup_over_displacement(benchmark):
    """The PR-6 acceptance check: warm fft >= 10x warm displacement.

    Measured on ``T_32^2`` with a linear placement under ODR — the
    sweep/search workload the spectral backend exists for.
    """
    placement = linear_placement(Torus(32, 2))
    routing = OrderedDimensionalRouting(2)

    fft = LoadEngine("fft")
    displacement = LoadEngine("displacement")
    displacement_seconds = warm_seconds(displacement, placement, routing)

    fft.edge_loads(placement, routing)  # warm before benchmarking
    loads = benchmark(fft.edge_loads, placement, routing)
    assert np.array_equal(
        loads, displacement.edge_loads(placement, routing)
    )
    fft_seconds = benchmark.stats.stats.min
    assert displacement_seconds >= 10 * fft_seconds, (
        f"fft backend only {displacement_seconds / fft_seconds:.1f}x "
        "faster than the displacement cache on T_32^2 (need >= 10x)"
    )


def test_baseline_exactness_pins():
    """The committed baseline's machine-independent facts must hold."""
    recorded = json.loads(BASELINE.read_text())
    for entry in recorded["configs"]:
        k, d = entry["k"], entry["d"]
        placement = linear_placement(Torus(k, d))
        routing = OrderedDimensionalRouting(d)
        assert entry["pairs"] == _pairs(placement)
        for name in BACKENDS:
            engine = LoadEngine(name)
            assert engine.emax(placement, routing) == entry["emax"], name


def write_baseline() -> dict:
    """Measure and record the committed pairs/sec-per-backend baseline."""
    configs = []
    for k, d in CONFIGS:
        placement = linear_placement(Torus(k, d))
        routing = OrderedDimensionalRouting(d)
        pairs = _pairs(placement)
        entry = {
            "torus": f"T_{k}^{d}",
            "k": k,
            "d": d,
            "placement": "linear",
            "routing": "ODR",
            "pairs": pairs,
            "emax": LoadEngine("reference").emax(placement, routing),
            "pairs_per_sec": {},
        }
        for name in BACKENDS:
            # the reference oracle is too slow for T_32^2's 1M+ pairs;
            # record it only on the small torus.
            if name == "reference" and k > 16:
                continue
            seconds = warm_seconds(
                LoadEngine(name),
                placement,
                routing,
                repeats=3 if name == "reference" else 15,
            )
            entry["pairs_per_sec"][name] = round(pairs / seconds)
        configs.append(entry)
    baseline = {
        "description": (
            "Warm min-of-N edge_loads throughput per backend on linear "
            "placements under ODR. pairs_per_sec is informational "
            "(machine-dependent); pairs and emax are exactness pins "
            "checked by bench_fft.py. The >= 10x fft-vs-displacement "
            "ratio on T_32^2 is asserted live by "
            "test_fft_speedup_over_displacement."
        ),
        "configs": configs,
    }
    BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


if __name__ == "__main__":
    print(json.dumps(write_baseline(), indent=2))

"""Benchmark EXP-16: Perfect Lee-code resource placements vs load-optimal placements.

Regenerates the EXP-16 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-16")
def test_EXP_16(run_experiment):
    run_experiment("EXP-16", quick=False, rounds=2)

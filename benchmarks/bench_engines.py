"""Micro-benchmarks of the core computational engines.

Not tied to a paper table — these track the throughput of the vectorized
load analyses, the bisection constructions, and the packet simulator, so
performance regressions in the machinery behind the experiments are
visible.
"""

import numpy as np
import pytest
from _timing import elapsed_seconds

from repro.bisection.dimension_cut import best_dimension_cut
from repro.bisection.hyperplane import hyperplane_bisection
from repro.load.edge_loads import edge_loads_reference
from repro.load.engine import LoadEngine
from repro.load.odr_loads import odr_edge_loads
from repro.load.udr_loads import udr_edge_loads
from repro.placements.linear import linear_placement
from repro.routing.odr import OrderedDimensionalRouting
from repro.sim.engine import CycleEngine
from repro.sim.network import SimNetwork
from repro.sim.workloads import complete_exchange_packets
from repro.torus.topology import Torus


@pytest.mark.benchmark(group="engine-odr")
@pytest.mark.parametrize("k,d", [(16, 2), (12, 3), (6, 4)])
def test_odr_loads(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    loads = benchmark(odr_edge_loads, placement)
    assert loads.max() > 0


@pytest.mark.benchmark(group="engine-udr")
@pytest.mark.parametrize("k,d", [(10, 2), (8, 3)])
def test_udr_loads(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    loads = benchmark(udr_edge_loads, placement)
    assert loads.max() > 0


@pytest.mark.benchmark(group="engine-displacement")
@pytest.mark.parametrize("k,d", [(16, 2), (12, 3)])
def test_displacement_loads(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    routing = OrderedDimensionalRouting(d)
    engine = LoadEngine("displacement")
    engine.edge_loads(placement, routing)  # warm the template cache
    loads = benchmark(engine.edge_loads, placement, routing)
    assert loads.max() > 0


@pytest.mark.benchmark(group="engine-parallel")
@pytest.mark.parametrize("k,d,jobs", [(16, 2, 2), (12, 3, 4)])
def test_parallel_loads(benchmark, k, d, jobs):
    placement = linear_placement(Torus(k, d))
    routing = OrderedDimensionalRouting(d)
    engine = LoadEngine("parallel", jobs=jobs, chunk_pairs=1024)
    loads = benchmark(engine.edge_loads, placement, routing)
    assert np.abs(loads - odr_edge_loads(placement)).max() <= 1e-9


@pytest.mark.benchmark(group="engine-displacement")
def test_displacement_cache_speedup(benchmark):
    """The ISSUE-1 acceptance check: displacement-cache >= 5x the oracle.

    Measured on ``T_16^2`` with a linear placement; the cache is timed
    cold (template construction included).
    """
    torus = Torus(16, 2)
    placement = linear_placement(torus)
    routing = OrderedDimensionalRouting(2)

    oracle_seconds, oracle = elapsed_seconds(
        lambda: edge_loads_reference(placement, routing)
    )

    def cold_displacement():
        return LoadEngine("displacement").edge_loads(placement, routing)

    loads = benchmark(cold_displacement)
    assert np.abs(loads - oracle).max() <= 1e-9
    cached_seconds = benchmark.stats.stats.min
    assert oracle_seconds >= 5 * cached_seconds, (
        f"displacement cache only {oracle_seconds / cached_seconds:.1f}x "
        "faster than the oracle (need >= 5x)"
    )


@pytest.mark.benchmark(group="engine-bisection")
@pytest.mark.parametrize("k,d", [(16, 2), (8, 3)])
def test_hyperplane_bisection(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    sweep = benchmark(hyperplane_bisection, placement)
    assert sweep.is_balanced


@pytest.mark.benchmark(group="engine-bisection")
@pytest.mark.parametrize("k,d", [(16, 2), (8, 3)])
def test_dimension_cut(benchmark, k, d):
    placement = linear_placement(Torus(k, d))
    cut = benchmark(best_dimension_cut, placement)
    assert cut.cut_size == 4 * k ** (d - 1)


@pytest.mark.benchmark(group="engine-simulator")
def test_simulator_complete_exchange(benchmark):
    torus = Torus(8, 2)
    placement = linear_placement(torus)
    routing = OrderedDimensionalRouting(2)

    def run():
        packets = complete_exchange_packets(placement, routing, seed=0)
        return CycleEngine(SimNetwork(torus)).run(packets)

    result = benchmark(run)
    assert result.delivered == len(placement) * (len(placement) - 1)

"""Benchmark EXP-13: Optimality of the constructions.

Regenerates the EXP-13 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-13")
def test_EXP_13(run_experiment):
    run_experiment("EXP-13", quick=False, rounds=2)

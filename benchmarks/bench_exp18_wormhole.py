"""Benchmark EXP-18: Wormhole flow control vs static loads.

Regenerates the EXP-18 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-18")
def test_EXP_18(run_experiment):
    run_experiment("EXP-18", quick=False, rounds=1)

"""Benchmark EXP-17: Permutation and hotspot traffic loads.

Regenerates the EXP-17 paper-vs-measured table (see EXPERIMENTS.md) and
times the full reproduction sweep.
"""

import pytest


@pytest.mark.benchmark(group="EXP-17")
def test_EXP_17(run_experiment):
    run_experiment("EXP-17", quick=False, rounds=2)

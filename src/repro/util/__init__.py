"""Shared utilities: modular arithmetic, validation, tables, RNG helpers."""

from repro.util.modular import (
    cyclic_distance,
    cyclic_distance_array,
    lee_distance,
    lee_distance_array,
    minimal_correction,
    minimal_correction_array,
)
from repro.util.validation import (
    check_dimension,
    check_radix,
    check_torus_params,
    check_probability,
    check_positive,
    check_nonnegative,
)
from repro.util.tables import Table, format_table
from repro.util.rng import resolve_rng

__all__ = [
    "cyclic_distance",
    "cyclic_distance_array",
    "lee_distance",
    "lee_distance_array",
    "minimal_correction",
    "minimal_correction_array",
    "check_dimension",
    "check_radix",
    "check_torus_params",
    "check_probability",
    "check_positive",
    "check_nonnegative",
    "Table",
    "format_table",
    "resolve_rng",
]

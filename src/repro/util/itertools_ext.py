"""Iteration helpers used across the package."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["chunked", "pairs_ordered", "pairs_unordered", "product_coords"]


def chunked(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive slices of ``seq`` of length ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def pairs_ordered(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """All ordered pairs ``(a, b)`` with ``a != b`` (the complete-exchange set)."""
    items = list(items)
    for a in items:
        for b in items:
            if a is not b and a != b:
                yield (a, b)


def pairs_unordered(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """All unordered pairs ``{a, b}`` with ``a != b``."""
    return itertools.combinations(list(items), 2)


def product_coords(k: int, d: int) -> Iterator[tuple[int, ...]]:
    """Iterate all ``k**d`` coordinate tuples of ``T_k^d`` in C order."""
    return itertools.product(range(k), repeat=d)

"""Iteration helpers used across the package."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = [
    "chunked",
    "combinations_from",
    "ordered_pair_index_arrays",
    "pairs_ordered",
    "pairs_unordered",
    "product_coords",
]


def ordered_pair_index_arrays(m: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays ``(pi, qi)`` of all ordered distinct pairs of ``range(m)``.

    Row ``r`` is the ``r``-th pair in the row-major order ``(0,1), (0,2),
    …, (0,m-1), (1,0), (1,2), …`` — the same order a masked
    ``meshgrid(indexing="ij")`` produces, but built by direct index
    arithmetic in :math:`O(m(m-1))` memory instead of materializing (and
    then masking) two full ``m×m`` matrices.
    """
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if m < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    flat = np.arange(m * (m - 1), dtype=np.int64)
    pi = flat // (m - 1)
    qi = flat - pi * (m - 1)
    qi += qi >= pi
    return pi, qi


def chunked(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive slices of ``seq`` of length ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def combinations_from(
    n: int, start: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Lexicographic ``r``-combinations of ``range(n)`` from ``start`` on.

    Equivalent to fast-forwarding ``itertools.combinations(range(n), r)``
    to ``start`` (inclusive) — but in :math:`O(1)` instead of iterating
    the prefix.  This is what lets a restartable worker re-generate its
    slice of a combination stream from a ``(start, count)`` payload
    instead of shipping (or re-enumerating) the combinations themselves.
    """
    r = len(start)
    current = [int(x) for x in start]
    if r == 0:
        yield ()
        return
    if not all(
        0 <= current[i] < n and (i == 0 or current[i] > current[i - 1])
        for i in range(r)
    ):
        raise ValueError(
            f"start {tuple(start)} is not a strictly increasing "
            f"combination of range({n})"
        )
    while True:
        yield tuple(current)
        # odometer step: bump the rightmost index that can still move.
        i = r - 1
        while i >= 0 and current[i] == n - r + i:
            i -= 1
        if i < 0:
            return
        current[i] += 1
        for j in range(i + 1, r):
            current[j] = current[j - 1] + 1


def pairs_ordered(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """All ordered pairs ``(a, b)`` with ``a != b`` (the complete-exchange set)."""
    items = list(items)
    for a in items:
        for b in items:
            if a is not b and a != b:
                yield (a, b)


def pairs_unordered(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """All unordered pairs ``{a, b}`` with ``a != b``."""
    return itertools.combinations(list(items), 2)


def product_coords(k: int, d: int) -> Iterator[tuple[int, ...]]:
    """Iterate all ``k**d`` coordinate tuples of ``T_k^d`` in C order."""
    return itertools.product(range(k), repeat=d)

"""Argument validation helpers.

Centralizing the checks keeps error messages consistent across the package
and gives tests a single behaviour to pin down.
"""

from __future__ import annotations

from typing import Collection, Iterable, TypeVar

from repro.errors import InvalidParameterError

#: numeric type preserved through a check (int stays int, float stays float).
_NumT = TypeVar("_NumT", bound=float)

__all__ = [
    "check_dimension",
    "check_radix",
    "check_torus_params",
    "check_shape",
    "check_node_ids",
    "check_probability",
    "check_positive",
    "check_nonnegative",
]


def check_dimension(d: int) -> int:
    """Validate a torus dimension count ``d >= 1`` and return it as int."""
    if not isinstance(d, (int,)) or isinstance(d, bool):
        raise InvalidParameterError(f"dimension d must be an int, got {d!r}")
    if d < 1:
        raise InvalidParameterError(f"dimension d must be >= 1, got {d}")
    return int(d)


def check_radix(k: int) -> int:
    """Validate a torus radix (ring size) ``k >= 2`` and return it as int.

    ``k = 2`` is the degenerate torus where the two ring directions coincide
    as undirected edges but remain distinct directed links; ``k = 1`` would
    collapse every ring to a self-loop, which the paper's model excludes.
    """
    if not isinstance(k, (int,)) or isinstance(k, bool):
        raise InvalidParameterError(f"radix k must be an int, got {k!r}")
    if k < 2:
        raise InvalidParameterError(f"radix k must be >= 2, got {k}")
    return int(k)


def check_torus_params(k: int, d: int) -> tuple[int, int]:
    """Validate a ``(k, d)`` pair, returning it normalized to ints."""
    return check_radix(k), check_dimension(d)


def check_shape(shape: Iterable[int]) -> tuple[int, ...]:
    """Validate a mixed-radix shape ``(k_1, …, k_d)``: ``d >= 1``, each
    radix ``>= 2``.  Returns the shape normalized to a tuple of ints."""
    normalized = tuple(int(k) for k in shape)
    check_dimension(len(normalized))
    for k in normalized:
        check_radix(k)
    return normalized


def check_node_ids(node_ids: Collection[int], num_nodes: int) -> None:
    """Validate a non-empty node-id collection within ``[0, num_nodes)``."""
    if len(node_ids) == 0:
        raise InvalidParameterError("a placement must be non-empty")
    if int(min(node_ids)) < 0 or int(max(node_ids)) >= num_nodes:
        raise InvalidParameterError(
            f"node ids must lie in [0, {num_nodes})"
        )


def check_probability(p: float, name: str = "p") -> float:
    """Validate that ``p`` lies in ``[0, 1]``."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {p}")
    return p


def check_positive(x: _NumT, name: str = "value") -> _NumT:
    """Validate that ``x > 0``."""
    if x <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {x}")
    return x


def check_nonnegative(x: _NumT, name: str = "value") -> _NumT:
    """Validate that ``x >= 0``."""
    if x < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {x}")
    return x

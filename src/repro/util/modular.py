"""Modular (cyclic) arithmetic on ring coordinates.

The torus :math:`T_k^d` has :math:`\\mathbb{Z}_k` coordinates in every
dimension, so every distance notion in the paper reduces to *cyclic
distance* (Definition 6):

.. math::

    \\mathrm{cd}_k(i, j) = \\min\\{(i - j) \\bmod k,\\; (j - i) \\bmod k\\}

and *Lee distance*, the sum of per-coordinate cyclic distances, which is
exactly the shortest-path length between two torus nodes.

Everything here comes in a scalar flavour (readable, used in tests and
tight inner loops over tiny inputs) and a vectorized numpy flavour (used by
the load analyses, which process all :math:`|P|^2` pairs at once).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cyclic_distance",
    "cyclic_distance_array",
    "lee_distance",
    "lee_distance_array",
    "minimal_correction",
    "minimal_correction_array",
    "TIE_PLUS",
    "TIE_BOTH",
]

#: Tie-break policy: on an exact half-ring tie (k even, offset k/2), route in
#: the ``+`` direction.  This is the paper's *restricted* ODR convention
#: ("Pick the path that corrects p_i in the (+) direction (mod k)").
TIE_PLUS = "plus"

#: Tie-break policy marker for callers that want both directions reported.
TIE_BOTH = "both"


def cyclic_distance(i: int, j: int, k: int) -> int:
    """Cyclic distance between residues ``i`` and ``j`` modulo ``k``.

    Parameters
    ----------
    i, j:
        Coordinates; they are reduced modulo ``k`` internally, so any
        integers are accepted.
    k:
        Ring size, ``k >= 1``.

    Returns
    -------
    int
        ``min((i - j) % k, (j - i) % k)`` — the minimal number of ring hops
        between the two residues.
    """
    if k < 1:
        raise ValueError(f"ring size k must be >= 1, got {k}")
    a = (i - j) % k
    b = (j - i) % k
    return a if a < b else b


def cyclic_distance_array(i, j, k: int) -> np.ndarray:
    """Vectorized :func:`cyclic_distance` over numpy broadcastable inputs."""
    if k < 1:
        raise ValueError(f"ring size k must be >= 1, got {k}")
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    a = np.mod(i - j, k)
    return np.minimum(a, k - a) if k > 1 else np.zeros_like(a)


def lee_distance(p, q, k: int) -> int:
    """Lee distance between coordinate tuples ``p`` and ``q`` on ``T_k^d``.

    The Lee distance is the length of a shortest path on the torus
    (Definition 6 of the paper; see also Bose et al., "Lee Distance and
    Topological Properties of k-ary n-cubes").
    """
    if len(p) != len(q):
        raise ValueError(f"dimension mismatch: |p|={len(p)} |q|={len(q)}")
    return sum(cyclic_distance(a, b, k) for a, b in zip(p, q))


def lee_distance_array(p, q, k: int) -> np.ndarray:
    """Vectorized Lee distance.

    Parameters
    ----------
    p, q:
        Arrays of shape ``(..., d)`` holding torus coordinates.
    k:
        Ring size.

    Returns
    -------
    numpy.ndarray
        Shape ``(...,)`` array of Lee distances.
    """
    return cyclic_distance_array(p, q, k).sum(axis=-1)


def minimal_correction(p_i: int, q_i: int, k: int, tie: str = TIE_PLUS):
    """Signed minimal correction(s) taking residue ``p_i`` to ``q_i`` mod ``k``.

    Returns a tuple ``(delta, tied)`` where ``delta`` is the signed step
    count (positive means travel in the ``+`` ring direction) chosen by the
    shortest-cyclic-distance rule, and ``tied`` says whether the two
    directions were equidistant (only possible when ``k`` is even and the
    offset is exactly ``k/2``).

    With ``tie=TIE_PLUS`` (the paper's canonical restricted ODR) the tied
    case resolves to the ``+`` direction.  With ``tie=TIE_BOTH`` the caller
    receives the positive delta and must treat ``tied=True`` as "both
    directions are minimal".
    """
    if tie not in (TIE_PLUS, TIE_BOTH):
        raise ValueError(f"unknown tie policy {tie!r}")
    fwd = (q_i - p_i) % k
    bwd = (p_i - q_i) % k
    if fwd < bwd:
        return fwd, False
    if bwd < fwd:
        return -bwd, False
    # fwd == bwd: either zero offset or the half-ring tie.
    if fwd == 0:
        return 0, False
    return fwd, True


def minimal_correction_array(p, q, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`minimal_correction` with the ``+`` tie-break.

    Parameters
    ----------
    p, q:
        Broadcastable integer arrays of residues modulo ``k``.
    k:
        Ring size.

    Returns
    -------
    (delta, tied):
        ``delta`` is the signed minimal step count with ties resolved to
        ``+`` (so ``delta`` is ``+k/2`` on ties); ``tied`` is a boolean
        array flagging the half-ring ties.
    """
    p = np.asarray(p, dtype=np.int64)
    q = np.asarray(q, dtype=np.int64)
    fwd = np.mod(q - p, k)
    bwd = np.mod(p - q, k)
    delta = np.where(fwd <= bwd, fwd, -bwd)
    tied = (fwd == bwd) & (fwd != 0)
    return delta, tied

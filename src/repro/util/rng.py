"""Seeded random-number-generator plumbing.

Every stochastic component in the package (random placements, UDR path
sampling, the packet simulator, fault injection) accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``; this module
normalizes all three to a ``Generator`` so results are reproducible when a
seed is supplied.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng", "spawn_rngs"]


def resolve_rng(seed_or_rng=None) -> np.random.Generator:
    """Normalize ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    * ``None`` → a fresh OS-seeded generator,
    * ``int`` → ``np.random.default_rng(int)``,
    * ``Generator`` → returned unchanged.
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        f"expected None, int, or numpy Generator, got {type(seed_or_rng).__name__}"
    )


def spawn_rngs(seed_or_rng, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Useful when an experiment fans out Monte-Carlo repetitions and each
    repetition must be reproducible in isolation.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = resolve_rng(seed_or_rng)
    return list(root.spawn(n))

"""Plain-text table rendering for experiment and benchmark output.

The experiment harness reports paper-vs-measured rows; this module renders
them as aligned monospace tables (GitHub-flavoured markdown compatible, so
the same text drops straight into ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_table", "format_value"]


def format_value(v: Any, float_fmt: str = "{:.6g}") -> str:
    """Render a cell value: floats via ``float_fmt``, everything else via str."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return float_fmt.format(v)
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = "{:.6g}",
) -> str:
    """Format ``rows`` under ``headers`` as a markdown-style aligned table."""
    str_rows = [[format_value(v, float_fmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [fmt_row(list(headers))]
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


@dataclass
class Table:
    """An incrementally built results table.

    Example
    -------
    >>> t = Table(["k", "measured", "paper"])
    >>> t.add_row([4, 0.75, 0.75])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    title: str = ""
    float_fmt: str = "{:.6g}"

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one row; its length must match the headers."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        """Render the table (with its title, when set) as text."""
        body = format_table(self.headers, self.rows, self.float_fmt)
        if self.title:
            return f"### {self.title}\n\n{body}"
        return body

    def column(self, name: str) -> list[Any]:
        """Return all values of the named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

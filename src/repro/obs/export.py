"""Metrics export: Prometheus text exposition, snapshot journal, sampler.

Long certify/sweep/experiment runs accumulate their registry inside the
process; this module gets those numbers *out* while the run is still
going:

* :func:`prometheus_text` renders a :meth:`Metrics.snapshot
  <repro.obs.metrics.Metrics.snapshot>` in the Prometheus text
  exposition format (version 0.0.4) — counters as ``_total``, gauges
  verbatim, base-2 histograms expanded into cumulative ``le`` buckets —
  so a scrape-file exporter or pushgateway can ingest it unchanged.
* :class:`MetricsSnapshotWriter` appends timestamped snapshots to a
  JSONL journal with the same crash semantics as the trace sink (a kill
  costs at most the final torn line), rate-limited by a minimum
  interval so hot loops can call :meth:`MetricsSnapshotWriter.maybe`
  unconditionally.
* :class:`ResourceSampler` reads ``/proc/self`` (no dependencies) and
  feeds ``proc.rss_bytes`` / ``proc.cpu_seconds`` / ``proc.num_threads``
  gauges — opt-in, and a silent no-op on hosts without procfs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.obs.console import wall_clock
from repro.obs.metrics import Metrics

__all__ = [
    "prometheus_text",
    "MetricsSnapshotWriter",
    "ResourceSampler",
    "set_pump",
    "pump",
]


def _sanitize(name: str) -> str:
    """Map a dotted instrument name onto the Prometheus grammar.

    Dots become underscores (``exec.task_seconds`` →
    ``exec_task_seconds``); any other character outside
    ``[a-zA-Z0-9_:]`` is folded to ``_`` too.  RL017 keeps instrument
    names dotted-lowercase at the call sites, so this mapping is
    collision-free in practice.
    """
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _fmt(value: float) -> str:
    """Prometheus float formatting (integers without the trailing .0)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(snapshot: dict[str, Any], prefix: str = "repro") -> str:
    """Render one metrics snapshot in Prometheus text exposition format.

    ``prefix`` namespaces every family (``repro_exec_tasks_total``).
    Counters gain the ``_total`` suffix; histograms expand their base-2
    buckets into cumulative ``le`` series plus ``_sum``/``_count``, with
    upper bounds ``2**e`` (the ``"zero"`` bucket becomes ``le="0"``) and
    the mandatory ``le="+Inf"`` terminator.  Output ends with a newline,
    as scrapers expect.
    """
    lines: list[str] = []
    base = _sanitize(prefix) + "_" if prefix else ""

    for name, value in snapshot.get("counters", {}).items():
        family = f"{base}{_sanitize(name)}_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        family = f"{base}{_sanitize(name)}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(value)}")

    for name, data in snapshot.get("histograms", {}).items():
        family = f"{base}{_sanitize(name)}"
        lines.append(f"# TYPE {family} histogram")
        bounds: list[tuple[float, int]] = []
        for key, count in data.get("buckets", {}).items():
            bound = 0.0 if key == "zero" else float(2.0 ** int(key))
            bounds.append((bound, int(count)))
        bounds.sort()
        cumulative = 0
        for bound, count in bounds:
            cumulative += count
            lines.append(
                f'{family}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {int(data["count"])}')
        lines.append(f"{family}_sum {_fmt(data['total'])}")
        lines.append(f"{family}_count {int(data['count'])}")

    return "\n".join(lines) + "\n"


class MetricsSnapshotWriter:
    """Periodic JSONL journal of metrics snapshots.

    Each line is ``{"kind": "metrics", "recorded_unix": ..., "values":
    <snapshot>}`` with sorted keys, appended and flushed — the same
    journal semantics as :class:`~repro.obs.sink.JsonlTraceSink`, so a
    killed run leaves at most one torn final line and every earlier
    snapshot intact.  :meth:`maybe` rate-limits to ``interval_seconds``
    and is safe to call from a hot loop; :meth:`write` is unconditional.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        metrics: Metrics,
        interval_seconds: float = 10.0,
    ):
        import json

        self._json = json
        self.path = Path(path)
        self.metrics = metrics
        self.interval_seconds = float(interval_seconds)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._last = float("-inf")
        self.written = 0

    def maybe(self) -> bool:
        """Write a snapshot iff the interval elapsed; report whether."""
        now = wall_clock()
        if now - self._last < self.interval_seconds:
            return False
        self.write(now)
        return True

    def write(self, now: float | None = None) -> None:
        """Append one snapshot line unconditionally."""
        if self._handle is None:
            return
        now = wall_clock() if now is None else now
        record = {
            "kind": "metrics",
            "recorded_unix": now,
            "values": self.metrics.snapshot(),
        }
        self._handle.write(self._json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._last = now
        self.written += 1

    def close(self) -> None:
        """Write a final snapshot and close the journal (idempotent)."""
        if self._handle is not None:
            self.write()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsSnapshotWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ResourceSampler:
    """Opt-in ``/proc``-based process resource gauges.

    Reads ``/proc/self/statm`` (resident pages) and ``/proc/self/stat``
    (utime+stime jiffies, thread count) and sets the ``proc.rss_bytes``,
    ``proc.cpu_seconds``, and ``proc.num_threads`` gauges on the given
    registry.  Construction probes procfs once: on hosts without it
    (macOS, containers with hidden /proc) :attr:`available` is False and
    :meth:`sample` is a no-op, so callers never need to guard.
    """

    def __init__(self, metrics: Metrics):
        self.metrics = metrics
        self.samples = 0
        self._page_size = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
        try:
            self._ticks = os.sysconf("SC_CLK_TCK")
        except (AttributeError, ValueError, OSError):
            self._ticks = 100
        self.available = (
            Path("/proc/self/statm").exists()
            and Path("/proc/self/stat").exists()
        )

    def sample(self) -> dict[str, float] | None:
        """Take one sample; returns the readings, or ``None`` if unavailable."""
        if not self.available:
            return None
        try:
            statm = Path("/proc/self/statm").read_text().split()
            stat = Path("/proc/self/stat").read_text()
        except OSError:
            return None
        rss_bytes = float(int(statm[1]) * self._page_size)
        # /proc/self/stat field 2 is `(comm)` and may contain spaces —
        # everything after the closing paren is fixed-position.
        fields = stat.rsplit(")", 1)[-1].split()
        utime, stime = float(fields[11]), float(fields[12])
        cpu_seconds = (utime + stime) / float(self._ticks)
        num_threads = float(fields[17])
        self.metrics.gauge("proc.rss_bytes").set(rss_bytes)
        self.metrics.gauge("proc.cpu_seconds").set(cpu_seconds)
        self.metrics.gauge("proc.num_threads").set(num_threads)
        self.samples += 1
        return {
            "rss_bytes": rss_bytes,
            "cpu_seconds": cpu_seconds,
            "num_threads": num_threads,
        }


# ------------------------------------------------------------ ambient pump
#
# Long-running loops (executor completions, the experiments runner) call
# `pump()` unconditionally; it is a None-check no-op unless the CLI's
# --metrics-out flag installed a writer.  The sampler, if any, runs just
# before each snapshot so the exported gauges are fresh.

_PUMP: MetricsSnapshotWriter | None = None
_SAMPLER: ResourceSampler | None = None


def set_pump(
    writer: MetricsSnapshotWriter | None,
    sampler: ResourceSampler | None = None,
) -> None:
    """Install (or clear, with ``None``) the ambient snapshot pump."""
    global _PUMP, _SAMPLER
    _PUMP = writer
    _SAMPLER = sampler


def pump() -> bool:
    """Emit a periodic snapshot if one is due; report whether it was.

    Safe (and near-free) to call from hot loops: without an installed
    writer this is a single ``None`` check, and with one it defers to
    the writer's minimum interval.
    """
    writer = _PUMP
    if writer is None:
        return False
    now = wall_clock()
    if now - writer._last < writer.interval_seconds:
        return False
    if _SAMPLER is not None:
        _SAMPLER.sample()
    writer.write(now)
    return True

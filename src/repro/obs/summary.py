"""Render a JSONL trace into human-readable summary tables.

``repro trace summarize out.jsonl`` turns the raw record stream into:

* a **span table** — per span name: count, total/mean/max duration,
  and the share of the root span's wall time;
* an **event table** — incident counts per event name (the executor's
  retries/timeouts/rebuilds/fallbacks show up here);
* **metric tables** — counters, gauges, and histogram summaries from
  the final metrics snapshot.

Aggregation is deliberately name-based rather than tree-based: a
T_6² certification emits thousands of ``exec.task`` spans, and the
question a human asks is "where did the time go *per phase*", not "show
me every span".
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.sink import read_trace
from repro.util.tables import Table

__all__ = ["summarize_trace", "summarize_path"]


def _span_table(spans: list[dict[str, Any]]) -> Table:
    by_name: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for span in spans:
        name = str(span.get("name", "?"))
        by_name.setdefault(name, []).append(
            float(span.get("duration_seconds", 0.0))
        )
        if span.get("status") == "error":
            errors[name] = errors.get(name, 0) + 1
    total_all = sum(sum(durations) for durations in by_name.values())
    # root spans (no parent) define the wall-clock denominator when present
    roots = [
        float(span.get("duration_seconds", 0.0))
        for span in spans
        if span.get("parent") is None
    ]
    denominator = max(sum(roots), 0.0) or total_all
    table = Table(
        ["span", "count", "total s", "mean s", "max s", "% of run", "errors"],
        title="Spans",
    )
    ranked = sorted(
        by_name.items(), key=lambda item: (-sum(item[1]), item[0])
    )
    for name, durations in ranked:
        total = sum(durations)
        share = 100.0 * total / denominator if denominator > 0 else 0.0
        table.add_row(
            [
                name,
                len(durations),
                f"{total:.4f}",
                f"{total / len(durations):.4f}",
                f"{max(durations):.4f}",
                f"{share:.1f}",
                errors.get(name, 0),
            ]
        )
    return table


def _event_table(events: list[dict[str, Any]]) -> Table:
    counts: dict[str, int] = {}
    for event in events:
        name = str(event.get("name", "?"))
        counts[name] = counts.get(name, 0) + 1
    table = Table(["event", "count"], title="Events")
    for name in sorted(counts):
        table.add_row([name, counts[name]])
    return table


def _metric_tables(values: dict[str, Any]) -> list[Table]:
    tables: list[Table] = []
    counters = values.get("counters", {})
    if counters:
        table = Table(["counter", "value"], title="Counters")
        for name in sorted(counters):
            table.add_row([name, f"{float(counters[name]):g}"])
        tables.append(table)
    gauges = values.get("gauges", {})
    if gauges:
        table = Table(["gauge", "last value"], title="Gauges")
        for name in sorted(gauges):
            table.add_row([name, f"{float(gauges[name]):g}"])
        tables.append(table)
    histograms = values.get("histograms", {})
    if histograms:
        table = Table(
            ["histogram", "count", "total", "mean", "min", "max"],
            title="Histograms",
        )
        for name in sorted(histograms):
            hist = histograms[name]
            count = int(hist.get("count", 0))
            total = float(hist.get("total", 0.0))
            mean = total / count if count else 0.0
            table.add_row(
                [
                    name,
                    count,
                    f"{total:.4f}",
                    f"{mean:.4f}",
                    "-" if hist.get("min") is None else f"{hist['min']:.4g}",
                    "-" if hist.get("max") is None else f"{hist['max']:.4g}",
                ]
            )
        tables.append(table)
    return tables


def _open_span_ids(
    spans: list[dict[str, Any]], events: list[dict[str, Any]]
) -> list[str]:
    """Span ids referenced in the trace but never closed.

    Spans are journaled on *exit*, so a run that crashed (or is still in
    flight) leaves its open spans with no ``span`` record — they are only
    visible as the ``parent`` of a closed child or the ``span`` of an
    event.  Those dangling ids are exactly the spans that never finished.
    """
    recorded = {span.get("id") for span in spans}
    referenced: set[str] = set()
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            referenced.add(str(parent))
    for event in events:
        owner = event.get("span")
        if owner is not None:
            referenced.add(str(owner))
    return sorted(referenced - recorded)


def summarize_trace(records: list[dict[str, Any]]) -> str:
    """One markdown-compatible text report for a loaded trace.

    Degrades gracefully on partial traces: a header-only file (a run
    that crashed before any span closed) still renders, with a note, and
    spans that never closed are reported instead of silently vanishing.
    """
    header = records[0] if records and records[0].get("kind") == "header" else {}
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    metrics = [r for r in records if r.get("kind") == "metrics"]
    parts = [
        f"# Trace summary — {header.get('label', 'trace')}",
        "",
        f"{len(spans)} spans, {len(events)} events, "
        f"{len(records)} records (format v{header.get('version', '?')}, "
        f"pid {header.get('pid', '?')}).",
        "",
    ]
    if not spans and not events and not metrics:
        parts.append(
            "No spans, events, or metrics were recorded — the traced run "
            "may have crashed (or been killed) before any span closed."
        )
        parts.append("")
    open_ids = _open_span_ids(spans, events)
    if open_ids:
        shown = ", ".join(open_ids[:8])
        suffix = ", ..." if len(open_ids) > 8 else ""
        parts.append(
            f"{len(open_ids)} span(s) opened but never closed "
            f"(crashed or interrupted run): {shown}{suffix}"
        )
        parts.append("")
    if spans:
        parts.append(_span_table(spans).render())
        parts.append("")
    if events:
        parts.append(_event_table(events).render())
        parts.append("")
    # the *last* metrics record is the final snapshot of the run
    if metrics:
        for table in _metric_tables(metrics[-1].get("values", {})):
            parts.append(table.render())
            parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def summarize_path(path: str | os.PathLike[str]) -> str:
    """Read ``path`` (torn-final-line tolerant) and summarize it."""
    return summarize_trace(read_trace(path))

"""The metrics registry: counters, gauges, and histograms.

A :class:`Metrics` registry is a process-local bag of named instruments.
Instrumented code asks the ambient tracer for its registry
(``current_tracer().metrics``) and bumps instruments by name; when
tracing is disabled the registry is the shared no-op
(:data:`NULL_METRICS`), so the hot-path cost of an un-traced run is one
attribute read and one no-op call.

Cross-process semantics are by *snapshot merge*, not shared memory:
pool workers (or any partial producer) return a
:meth:`Metrics.snapshot` alongside their results, and the parent folds
the snapshots in **task order** via :meth:`Metrics.merge` — counters
and histograms are commutative sums, gauges are last-write-wins, so a
fixed merge order makes the merged registry deterministic no matter how
the pool scheduled the work (the same discipline the load engine uses
for its floating-point shard sums).

Histograms use base-2 exponential buckets: an observation ``v`` lands
in the bucket whose upper bound is the smallest power of two ``>= v``.
That keeps the registry dependency-free, merge-friendly (bucket counts
add), and good enough to see whether per-shard latencies are uniform or
heavy-tailed.
"""

from __future__ import annotations

import math
from typing import Any, Dict

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the tally (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (add {amount})"
            )
        self.value += amount


class Gauge:
    """A last-write-wins reading (a rate, a queue depth, an incumbent)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self.updates: int = 0

    def set(self, value: float) -> None:
        """Record the latest reading."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """A base-2 exponential histogram of non-negative observations."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: ``{upper_bound_exponent: count}`` — bucket ``e`` holds
        #: observations in ``(2**(e-1), 2**e]`` (``v <= 0`` lands in the
        #: dedicated ``"zero"`` bucket).
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = "zero" if value <= 0.0 else str(math.ceil(math.log2(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observations (``None`` when empty)."""
        return self.total / self.count if self.count else None


class Metrics:
    """A named registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------ access

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def clear(self) -> None:
        """Drop every instrument (tests and long-lived drivers)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # --------------------------------------------------------- snapshots

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible, sorted view of every instrument.

        The snapshot is the cross-process interchange format: picklable,
        journal-able, and accepted back by :meth:`merge`.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
                if self._gauges[name].value is not None
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "buckets": dict(sorted(hist.buckets.items())),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value (last write wins).  Merging worker snapshots **in task
        order** therefore yields a deterministic registry regardless of
        pool completion order.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += float(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += int(data["count"])
            hist.total += float(data["total"])
            for bound in ("min", "max"):
                theirs = data.get(bound)
                if theirs is None:
                    continue
                ours = getattr(hist, bound)
                pick = min if bound == "min" else max
                setattr(
                    hist,
                    bound,
                    float(theirs) if ours is None else pick(ours, float(theirs)),
                )
            for key, count in data.get("buckets", {}).items():
                hist.buckets[key] = hist.buckets.get(key, 0) + int(count)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled tracing."""

    __slots__ = ()

    def add(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics(Metrics):
    """A registry that records nothing — the disabled-tracing fast path."""

    def counter(self, name: str) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def merge(self, snapshot: dict[str, Any]) -> None:
        pass


#: the shared no-op registry used by the disabled tracer.
NULL_METRICS: Metrics = _NullMetrics()

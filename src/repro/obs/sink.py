"""JSONL trace persistence: the sink, and the torn-line-tolerant reader.

The on-disk format deliberately mirrors
:class:`repro.exec.journal.CheckpointJournal`: line one is a header
(kind, format version, pid, label, informational wall-clock timestamp),
every further line is one span/event/metrics record, and crash-safety
comes from the format rather than fsync heroics — a process killed
mid-write leaves at most one truncated final line, which
:func:`read_trace` detects and drops.  A corrupt *interior* line means
the file was edited or mixed between runs, and raises
:class:`~repro.errors.TraceError` instead of silently summarizing a
half-trusted trace.

Records are JSON objects with sorted keys, one per line::

    {"kind": "header", "version": 1, "label": "certify", ...}
    {"kind": "span", "name": "exec.run", "duration_seconds": ..., ...}
    {"kind": "event", "name": "exec.retry", ...}
    {"kind": "metrics", "values": {"counters": {...}, ...}}
"""

from __future__ import annotations

import glob as _glob
import json
import os
from pathlib import Path
from typing import Any, TextIO

from repro.errors import TraceError
from repro.obs.console import wall_clock

__all__ = [
    "TRACE_VERSION",
    "JsonlTraceSink",
    "read_trace",
    "worker_trace_dir",
]

#: bump when the record format changes incompatibly.
TRACE_VERSION = 1


def worker_trace_dir(path: str | os.PathLike[str]) -> Path:
    """The worker-trace directory convention for a parent trace file.

    A traced ``ResilientExecutor`` run mirrors its pool workers into
    per-worker JSONL files under ``<trace>.workers/`` next to the parent
    trace — the directory :func:`repro.obs.stitch.stitch_path` (and
    ``repro trace critical-path``/``waterfall``) discovers automatically.
    """
    parent = Path(path)
    return parent.with_name(parent.name + ".workers")


class JsonlTraceSink:
    """Append-only JSONL destination for one trace.

    Parameters
    ----------
    path:
        Output file (parent directories are created; an existing file is
        truncated — each run is one trace).
    label:
        Human-readable trace name stored in the header.
    extra:
        Additional JSON-compatible header fields (worker sinks record
        their parent run id and dispatching exec-run id here).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        label: str = "trace",
        extra: dict[str, Any] | None = None,
    ):
        self.path = Path(path)
        self.label = label
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: TextIO | None = self.path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "version": TRACE_VERSION,
            "label": label,
            "pid": os.getpid(),
            "run": f"{os.getpid():08x}",
            "started_unix": wall_clock(),
        }
        if extra:
            header.update(extra)
        self.emit(header)

    def emit(self, record: dict[str, Any]) -> None:
        """Write one record as a JSON line (sorted keys, flushed)."""
        if self._handle is None:
            raise TraceError(f"trace sink {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JsonlTraceSink(path={str(self.path)!r})"


def _parse_line(line: str) -> dict[str, Any] | None:
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def read_trace(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Load every record of one or more JSONL traces (headers first).

    ``path`` may be a single trace file, a **directory** of trace files
    (every ``*.jsonl`` inside, in sorted-name order — the natural input
    for stitching a worker-trace directory), or a **glob pattern**
    (expanded and read in sorted order).  Multi-file reads concatenate
    the per-file records; each file keeps its own header record, so
    :func:`repro.obs.stitch.split_segments` can regroup them.

    Tolerates exactly the :class:`~repro.exec.journal.CheckpointJournal`
    kill artifact — one truncated *final* line per file, which is
    dropped; any corrupt interior line raises
    :class:`~repro.errors.TraceError`, as does a missing/invalid header
    or an unsupported format version.
    """
    trace_path = Path(path)
    if trace_path.is_dir():
        files = sorted(trace_path.glob("*.jsonl"))
        if not files:
            raise TraceError(
                f"trace directory {trace_path} contains no .jsonl files"
            )
        return [record for file in files for record in _read_trace_file(file)]
    if not trace_path.exists():
        pattern = os.fspath(path)
        if _glob.has_magic(pattern):
            matches = sorted(_glob.glob(pattern))
            if not matches:
                raise TraceError(
                    f"trace glob {pattern!r} matched no files"
                )
            return [
                record
                for file in matches
                for record in _read_trace_file(Path(file))
            ]
        raise TraceError(f"trace file {trace_path} does not exist")
    return _read_trace_file(trace_path)


def _read_trace_file(trace_path: Path) -> list[dict[str, Any]]:
    """Load one JSONL trace file (torn-final-line tolerant)."""
    lines = trace_path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise TraceError(f"trace file {trace_path} is empty")
    header = _parse_line(lines[0])
    if header is None or header.get("kind") != "header":
        raise TraceError(
            f"{trace_path} does not start with a trace header line"
        )
    if header.get("version") != TRACE_VERSION:
        raise TraceError(
            f"trace version {header.get('version')!r} != supported "
            f"version {TRACE_VERSION}"
        )
    records = [header]
    for lineno, line in enumerate(lines[1:], start=2):
        record = _parse_line(line)
        if record is None:
            if lineno != len(lines):
                raise TraceError(
                    f"{trace_path}:{lineno} is corrupt mid-file — traces "
                    "are append-only; only a truncated final line is a "
                    "legitimate crash artifact"
                )
            continue  # torn final line: the span simply went unrecorded
        records.append(record)
    return records

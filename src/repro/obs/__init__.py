"""Zero-dependency observability: tracing spans, metrics, and profiling.

``repro.obs`` is the package's telemetry layer.  It follows the same
ambient-policy convention as the load engine and the resilient
executor: instrumented code calls :func:`current_tracer` and opens
spans on whatever tracer the caller installed with
:func:`using_tracer`; the default is the :data:`NULL_TRACER`, whose
every operation is a cached no-op, so un-traced runs pay near-zero
overhead (pinned by ``benchmarks/bench_obs.py``).

The moving parts:

* :class:`Tracer` / :class:`Span` — nested, monotonic-clock spans with
  process-qualified ids (:mod:`repro.obs.tracer`);
* :class:`Metrics` — counters, gauges, and base-2 exponential
  histograms, with task-order-deterministic snapshot merging
  (:mod:`repro.obs.metrics`);
* :class:`JsonlTraceSink` / :func:`read_trace` — crash-tolerant JSONL
  persistence matching ``CheckpointJournal`` torn-line semantics
  (:mod:`repro.obs.sink`);
* :func:`summarize_trace` — the ``repro trace summarize`` renderer
  (:mod:`repro.obs.summary`);
* :func:`stitch_traces` / :func:`load_stitched` — cross-process trace
  stitching: worker files reparented under their dispatching
  ``exec.task`` spans (:mod:`repro.obs.stitch`);
* :func:`critical_path` / :func:`utilization` / :func:`diff_traces` —
  the trace analytics behind ``repro trace critical-path | waterfall |
  diff`` (:mod:`repro.obs.analyze`);
* :func:`prometheus_text` / :class:`MetricsSnapshotWriter` /
  :class:`ResourceSampler` — metrics export for mid-flight inspection
  (:mod:`repro.obs.export`);
* :func:`profiling` — cProfile-backed ``--profile pstats|flamegraph``
  hooks (:mod:`repro.obs.profiling`);
* :mod:`repro.obs.console` — the single sanctioned stderr/wall-clock
  choke point, so ``--quiet``/``--json`` runs stay machine-clean.
"""

from __future__ import annotations

from repro.obs import console
from repro.obs.analyze import (
    build_forest,
    critical_path,
    diff_traces,
    rollup,
    utilization,
)
from repro.obs.export import (
    MetricsSnapshotWriter,
    ResourceSampler,
    prometheus_text,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
)
from repro.obs.profiling import PROFILE_MODES, profiling, write_collapsed_stacks
from repro.obs.sink import (
    TRACE_VERSION,
    JsonlTraceSink,
    read_trace,
    worker_trace_dir,
)
from repro.obs.stitch import (
    canonical_form,
    load_stitched,
    split_segments,
    stitch_path,
    stitch_traces,
)
from repro.obs.summary import summarize_path, summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    WorkerTraceConfig,
    current_tracer,
    init_worker_tracer,
    set_tracer,
    using_tracer,
    worker_trace_config,
)

__all__ = [
    "console",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "using_tracer",
    "WorkerTraceConfig",
    "worker_trace_config",
    "init_worker_tracer",
    "TRACE_VERSION",
    "JsonlTraceSink",
    "read_trace",
    "worker_trace_dir",
    "summarize_trace",
    "summarize_path",
    "build_forest",
    "critical_path",
    "rollup",
    "utilization",
    "diff_traces",
    "stitch_traces",
    "stitch_path",
    "split_segments",
    "load_stitched",
    "canonical_form",
    "prometheus_text",
    "MetricsSnapshotWriter",
    "ResourceSampler",
    "PROFILE_MODES",
    "profiling",
    "write_collapsed_stacks",
]

"""Trace analytics: critical path, rollups, utilization, and diffs.

This is the analysis half of the observability stack — it consumes the
record lists produced by :func:`repro.obs.sink.read_trace` (or the
stitched output of :func:`repro.obs.stitch.load_stitched`) and answers
the questions a slow parallel certify run raises:

* **Where did the wall-clock go?**  :func:`critical_path` walks the
  span forest root-to-leaf, always descending into the child that
  *finished last* — the chain whose shortening actually shortens the
  run.  Sibling work off the chain is latency-hidden.
* **Which spans are intrinsically expensive?**  :func:`rollup`
  aggregates per span name, splitting *self* time (duration minus
  direct children) from *child* time, so a fat parent that merely waits
  on children is distinguishable from one doing real work.
* **Was the pool starved?**  :func:`utilization` buckets busy
  ``exec.task`` spans over the run's wall-clock extent — a tail of
  one-busy-worker buckets is the straggler-shard signature.
* **What changed between two runs?**  :func:`diff_traces` compares two
  traces name-by-name (counts and durations); a trace diffed against
  itself is empty, which CI uses as the stitch smoke invariant.

Everything returns plain JSON-compatible structures; the ``render_*``
helpers turn them into the fixed-width text the ``repro trace``
subcommands print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import TraceError

__all__ = [
    "SpanNode",
    "build_forest",
    "critical_path",
    "rollup",
    "utilization",
    "diff_traces",
    "render_critical_path",
    "render_waterfall",
    "render_diff",
]


@dataclass
class SpanNode:
    """One span record plus its resolved children, as a tree node."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)
    orphan: bool = False

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def span_id(self) -> str:
        return str(self.record.get("id"))

    @property
    def started(self) -> float:
        return float(self.record.get("started_unix", 0.0))

    @property
    def duration(self) -> float:
        return float(self.record.get("duration_seconds", 0.0))

    @property
    def finished(self) -> float:
        return self.started + self.duration

    @property
    def status(self) -> str:
        return str(self.record.get("status", "ok"))

    @property
    def self_seconds(self) -> float:
        """Duration not accounted for by direct children (floored at 0)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_forest(records: list[dict[str, Any]]) -> list[SpanNode]:
    """Resolve span records into a forest of :class:`SpanNode` trees.

    Spans whose ``parent`` id never appears in the trace (the parent
    span of a crashed run went unrecorded, or a worker file is analyzed
    unstitched) become additional roots with ``orphan=True`` — analytics
    degrade gracefully instead of dropping their subtrees.  Children are
    ordered by start time, ties broken by span id, so the forest is
    deterministic for equal inputs.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    nodes = {str(r.get("id")): SpanNode(record=r) for r in spans}
    roots: list[SpanNode] = []
    for record in spans:
        node = nodes[str(record.get("id"))]
        parent_id = record.get("parent")
        if parent_id is None:
            roots.append(node)
        elif str(parent_id) in nodes:
            nodes[str(parent_id)].children.append(node)
        else:
            node.orphan = True
            roots.append(node)
    order = lambda n: (n.started, n.span_id)  # noqa: E731
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    return roots


def _forest(trace: list[dict[str, Any]] | list[SpanNode]) -> list[SpanNode]:
    if trace and isinstance(trace[0], SpanNode):
        return trace  # type: ignore[return-value]
    return build_forest(trace)  # type: ignore[arg-type]


# ----------------------------------------------------------- critical path


def critical_path(
    trace: list[dict[str, Any]] | list[SpanNode],
) -> list[dict[str, Any]]:
    """The root-to-leaf chain of last-finishing spans.

    Starting from the longest root, descend at each step into the child
    whose *finish* instant is latest — that child gated its parent's
    completion, so the chain is the run's critical path.  Each step
    reports the span's total duration, its self time, and its share of
    the root's duration.  Raises :class:`~repro.errors.TraceError` on a
    trace with no spans at all.
    """
    roots = _forest(trace)
    if not roots:
        raise TraceError("trace has no spans to extract a critical path from")
    root = max(roots, key=lambda n: n.duration)
    path: list[dict[str, Any]] = []
    node: SpanNode | None = root
    depth = 0
    total = root.duration
    while node is not None:
        path.append(
            {
                "name": node.name,
                "id": node.span_id,
                "depth": depth,
                "status": node.status,
                "duration_seconds": node.duration,
                "self_seconds": node.self_seconds,
                "fraction_of_root": (node.duration / total) if total > 0 else 1.0,
                "attributes": dict(node.record.get("attributes", {})),
            }
        )
        node = max(node.children, key=lambda c: c.finished, default=None)
        depth += 1
    return path


# ----------------------------------------------------------------- rollup


def rollup(
    trace: list[dict[str, Any]] | list[SpanNode],
) -> list[dict[str, Any]]:
    """Per-name aggregates: count, total, self-vs-child split, extremes.

    Sorted by descending self time — the order in which optimizing a
    span name actually pays — with the total-duration share relative to
    the forest's summed root durations.
    """
    roots = _forest(trace)
    wall = sum(r.duration for r in roots)
    stats: dict[str, dict[str, Any]] = {}
    for root in roots:
        for node in root.walk():
            row = stats.setdefault(
                node.name,
                {
                    "name": node.name,
                    "count": 0,
                    "errors": 0,
                    "total_seconds": 0.0,
                    "self_seconds": 0.0,
                    "max_seconds": 0.0,
                    "min_seconds": None,
                },
            )
            row["count"] += 1
            row["errors"] += 1 if node.status != "ok" else 0
            row["total_seconds"] += node.duration
            row["self_seconds"] += node.self_seconds
            row["max_seconds"] = max(row["max_seconds"], node.duration)
            row["min_seconds"] = (
                node.duration
                if row["min_seconds"] is None
                else min(row["min_seconds"], node.duration)
            )
    rows = sorted(
        stats.values(), key=lambda r: (-r["self_seconds"], r["name"])
    )
    for row in rows:
        row["fraction_of_wall"] = (
            row["total_seconds"] / wall if wall > 0 else 0.0
        )
    return rows


# ------------------------------------------------------------ utilization


def utilization(
    trace: list[dict[str, Any]] | list[SpanNode],
    span_name: str = "exec.task",
    buckets: int = 60,
) -> dict[str, Any]:
    """Busy-workers-per-interval timeline from dispatch-span records.

    Buckets the run's wall-clock extent (first span start to last span
    finish) into ``buckets`` intervals and counts how many ``span_name``
    spans overlap each one.  An interval's count is the number of
    simultaneously busy workers; trailing buckets stuck at 1 expose
    straggler shards, interior zeros expose pool starvation.

    Returns ``{"span_name", "started_unix", "wall_seconds",
    "bucket_seconds", "busy": [int, ...], "peak", "mean"}`` — with no
    matching spans, ``busy`` is empty.
    """
    roots = _forest(trace)
    tasks = [
        node
        for root in roots
        for node in root.walk()
        if node.name == span_name
    ]
    if not tasks:
        return {
            "span_name": span_name,
            "started_unix": 0.0,
            "wall_seconds": 0.0,
            "bucket_seconds": 0.0,
            "busy": [],
            "peak": 0,
            "mean": 0.0,
        }
    start = min(node.started for node in tasks)
    finish = max(node.finished for node in tasks)
    wall = max(finish - start, 1e-9)
    width = wall / buckets
    busy = [0] * buckets
    for node in tasks:
        first = int((node.started - start) / width)
        last = int((node.finished - start) / width)
        for index in range(max(0, first), min(buckets - 1, last) + 1):
            busy[index] += 1
    return {
        "span_name": span_name,
        "started_unix": start,
        "wall_seconds": wall,
        "bucket_seconds": width,
        "busy": busy,
        "peak": max(busy),
        "mean": sum(busy) / len(busy),
    }


# ------------------------------------------------------------------- diff


def diff_traces(
    before: list[dict[str, Any]],
    after: list[dict[str, Any]],
    tolerance: float = 0.10,
) -> list[dict[str, Any]]:
    """Span-by-span-name comparison of two traces.

    A row appears for every span name whose occurrence *count* changed,
    or whose total duration moved by more than ``tolerance`` (relative,
    against the larger side — so a trace diffed against itself is empty
    at any tolerance).  Rows are sorted by descending absolute duration
    delta.  ``direction`` is ``added``/``removed``/``slower``/``faster``.
    """
    rows: list[dict[str, Any]] = []
    left = {row["name"]: row for row in rollup(before)}
    right = {row["name"]: row for row in rollup(after)}
    for name in sorted(set(left) | set(right)):
        a = left.get(name)
        b = right.get(name)
        count_a = a["count"] if a else 0
        count_b = b["count"] if b else 0
        total_a = a["total_seconds"] if a else 0.0
        total_b = b["total_seconds"] if b else 0.0
        delta = total_b - total_a
        base = max(abs(total_a), abs(total_b))
        relative = abs(delta) / base if base > 0 else 0.0
        if count_a == count_b and relative <= tolerance:
            continue
        if count_a == 0:
            direction = "added"
        elif count_b == 0:
            direction = "removed"
        else:
            direction = "slower" if delta > 0 else "faster"
        rows.append(
            {
                "name": name,
                "direction": direction,
                "count_before": count_a,
                "count_after": count_b,
                "total_before_seconds": total_a,
                "total_after_seconds": total_b,
                "delta_seconds": delta,
                "relative_change": relative,
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta_seconds"]), r["name"]))
    return rows


# ------------------------------------------------------------- rendering


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:8.1f}s"
    if value >= 0.1:
        return f"{value:8.3f}s"
    return f"{value * 1e3:7.2f}ms"


def render_critical_path(path: list[dict[str, Any]]) -> list[str]:
    """Fixed-width text for a :func:`critical_path` result."""
    lines = ["critical path (last-finishing chain):", ""]
    lines.append(f"  {'total':>9}  {'self':>9}  {'%root':>6}  span")
    for step in path:
        indent = "  " * step["depth"]
        marker = "!" if step["status"] != "ok" else " "
        lines.append(
            f"  {_fmt_seconds(step['duration_seconds'])} "
            f" {_fmt_seconds(step['self_seconds'])} "
            f" {step['fraction_of_root'] * 100:5.1f}% "
            f"{marker}{indent}{step['name']}"
        )
    return lines


def render_waterfall(
    trace: list[dict[str, Any]] | list[SpanNode],
    width: int = 48,
    max_spans: int = 200,
) -> list[str]:
    """Start-offset waterfall plus the worker-utilization sparkline.

    Each span renders as a bar positioned by its start offset within the
    forest's wall-clock extent.  Output is capped at ``max_spans`` rows
    (deepest-first truncation is noted), and a busy-workers timeline for
    ``exec.task`` spans is appended when any exist.
    """
    roots = _forest(trace)
    if not roots:
        raise TraceError("trace has no spans to render")
    start = min(r.started for r in roots)
    finish = max(
        node.finished for root in roots for node in root.walk()
    )
    wall = max(finish - start, 1e-9)
    lines = [f"waterfall ({wall:.3f}s wall, {width} cols):", ""]
    rows = 0
    truncated = 0

    def emit(node: SpanNode, depth: int) -> None:
        nonlocal rows, truncated
        if rows >= max_spans:
            truncated += 1 + sum(1 for _ in node.walk()) - 1
            return
        rows += 1
        left = int((node.started - start) / wall * width)
        span_cols = max(1, round(node.duration / wall * width))
        bar = " " * min(left, width - 1) + "#" * min(span_cols, width - min(left, width - 1))
        marker = "!" if node.status != "ok" else " "
        orphan = " (orphan)" if node.orphan else ""
        lines.append(
            f"  [{bar:<{width}}] {_fmt_seconds(node.duration)} "
            f"{marker}{'  ' * depth}{node.name}{orphan}"
        )
        for child in node.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    if truncated:
        lines.append(f"  ... {truncated} more spans (raise max_spans)")

    timeline = utilization(roots, buckets=width)
    if timeline["busy"]:
        peak = max(timeline["peak"], 1)
        glyphs = " .:-=+*#%@"
        spark = "".join(
            glyphs[min(len(glyphs) - 1, round(b / peak * (len(glyphs) - 1)))]
            for b in timeline["busy"]
        )
        lines.append("")
        lines.append(
            f"  busy workers (exec.task, peak {timeline['peak']}, "
            f"mean {timeline['mean']:.2f}):"
        )
        lines.append(f"  [{spark}]")
    return lines


def render_diff(rows: list[dict[str, Any]]) -> list[str]:
    """Fixed-width text for a :func:`diff_traces` result."""
    if not rows:
        return ["traces are equivalent (no span-name deltas beyond tolerance)"]
    lines = [f"{len(rows)} span name(s) changed:", ""]
    lines.append(
        f"  {'before':>9}  {'after':>9}  {'delta':>9}  {'n':>9}  change  span"
    )
    for row in rows:
        counts = f"{row['count_before']}->{row['count_after']}"
        lines.append(
            f"  {_fmt_seconds(row['total_before_seconds'])} "
            f" {_fmt_seconds(row['total_after_seconds'])} "
            f" {_fmt_seconds(row['delta_seconds'])} "
            f" {counts:>9}  {row['direction']:<7} {row['name']}"
        )
    return lines

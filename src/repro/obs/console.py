"""The process-boundary helper: human diagnostics and the wall clock.

Everything the library says to a *human* — resilience degradation
summaries, search progress heartbeats, CLI error lines — goes through
this module instead of ad-hoc ``print(..., file=sys.stderr)`` calls, so
one ``--quiet`` switch (or :func:`set_quiet`) silences the chatter and
``--json``/piped runs stay machine-clean.  Informational *wall-clock*
timestamps are read here too (:func:`wall_clock`): durations everywhere
else in the package come from monotonic clocks, and lint rule RL010
flags any ``time.time()``/bare ``print()`` that tries to bypass this
module.

Routing rules:

* :func:`info` / :func:`progress` / :func:`warn` — stderr, suppressed
  when quiet;
* :func:`error` — stderr, **never** suppressed (a failing run must say
  why even under ``--quiet``);
* stdout is reserved for command *results* and is never written here.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = [
    "set_quiet",
    "is_quiet",
    "info",
    "progress",
    "warn",
    "error",
    "wall_clock",
]

_quiet: bool = False


def set_quiet(quiet: bool) -> bool:
    """Install the quiet flag; returns the previous setting."""
    global _quiet
    previous = _quiet
    _quiet = bool(quiet)
    return previous


def is_quiet() -> bool:
    """Whether suppressible diagnostics are currently silenced."""
    return _quiet


def _emit(message: str, stream: TextIO | None = None) -> None:
    print(message, file=stream if stream is not None else sys.stderr)


def info(message: str) -> None:
    """An informational one-liner (suppressed when quiet)."""
    if not _quiet:
        _emit(message)


def progress(message: str) -> None:
    """A live progress heartbeat (suppressed when quiet)."""
    if not _quiet:
        _emit(message)


def warn(message: str) -> None:
    """A degraded-but-continuing notice (suppressed when quiet)."""
    if not _quiet:
        _emit(message)


def error(message: str) -> None:
    """A failure line; always emitted, even when quiet."""
    _emit(message)


def wall_clock() -> float:
    """The informational Unix timestamp (seconds since the epoch).

    The one sanctioned ``time.time()`` read in the library: wall-clock
    values are *labels* (when did this run happen), never duration
    inputs — durations come from ``time.perf_counter()`` /
    ``time.monotonic()``.
    """
    return time.time()

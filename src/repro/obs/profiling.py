"""Profiling hooks: cProfile dumps and collapsed-stack files.

``repro certify --profile pstats`` / ``--profile flamegraph`` wrap the
whole command in a :mod:`cProfile` session and write either

* a binary ``pstats`` dump (``.prof``) — load with
  ``python -m pstats`` or ``snakeviz``; or
* a collapsed-stack text file (``.folded``) — one
  ``caller;callee microseconds`` line per observed edge, the input
  format of Brendan Gregg's ``flamegraph.pl`` and of
  `speedscope <https://www.speedscope.app>`_.

cProfile records caller→callee edges rather than full stacks, so the
collapsed output is a two-level approximation: each function's *own*
time is attributed under its direct callers.  That is exactly the
"which kernel is hot, who calls it" question the load/search layers
need; for full stacks, sampling profilers remain the right tool.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator

from repro.errors import InvalidParameterError
from repro.obs.console import info

__all__ = ["PROFILE_MODES", "profiling", "write_collapsed_stacks"]

#: supported ``--profile`` modes and their default file suffixes.
PROFILE_MODES: dict[str, str] = {"pstats": ".prof", "flamegraph": ".folded"}


def _frame_name(func: tuple[str, int, str]) -> str:
    """A compact ``module:function`` label for one cProfile frame."""
    filename, lineno, name = func
    if filename == "~":  # C/builtin frames have no file
        return name.strip("<>")
    stem = Path(filename).stem
    return f"{stem}:{name}"


def write_collapsed_stacks(profile: "object", path: Path) -> int:
    """Write a cProfile session as collapsed stacks; returns line count.

    Each line is ``caller;callee value`` (or ``callee value`` for root
    frames), with ``value`` the callee's own time under that caller in
    integer microseconds.  Lines are sorted for deterministic output.
    """
    import pstats

    stats = pstats.Stats(profile).stats  # type: ignore[arg-type, attr-defined]
    lines: list[str] = []
    for func, (_cc, _nc, tt, _ct, callers) in stats.items():
        callee = _frame_name(func)
        if callers:
            for caller_func, (_ccc, _ncc, caller_tt, _cct) in callers.items():
                micros = int(round(caller_tt * 1e6))
                if micros > 0:
                    lines.append(
                        f"{_frame_name(caller_func)};{callee} {micros}"
                    )
        else:
            micros = int(round(tt * 1e6))
            if micros > 0:
                lines.append(f"{callee} {micros}")
    lines.sort()
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return len(lines)


@contextlib.contextmanager
def profiling(
    mode: str | None,
    out: str | os.PathLike[str] | None = None,
    label: str = "repro",
) -> Iterator[object | None]:
    """Profile the enclosed block (``mode=None`` is a transparent no-op).

    Parameters
    ----------
    mode:
        ``"pstats"``, ``"flamegraph"``, or ``None``.
    out:
        Output path; defaults to ``<label>`` plus the mode's suffix in
        the working directory.
    label:
        Basename used when ``out`` is omitted (the CLI passes the
        subcommand name).
    """
    if mode is None:
        yield None
        return
    if mode not in PROFILE_MODES:
        raise InvalidParameterError(
            f"profile mode must be one of {sorted(PROFILE_MODES)}, got {mode!r}"
        )
    import cProfile

    path = Path(out) if out is not None else Path(label + PROFILE_MODES[mode])
    path.parent.mkdir(parents=True, exist_ok=True)
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        if mode == "pstats":
            profile.dump_stats(str(path))
        else:
            write_collapsed_stacks(profile, path)
        info(f"profile ({mode}) written to {path}")

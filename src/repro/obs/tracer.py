"""Nested tracing spans with an ambient, swappable tracer.

The design mirrors the package's other ambient policies
(:func:`repro.load.engine.using_engine`,
:func:`repro.exec.using_exec_policy`): instrumented code asks for the
process-wide tracer via :func:`current_tracer` and opens spans on it —
no tracer argument threads through any signature.  The default tracer
is the :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op
context manager and whose metrics registry drops everything, so
un-traced runs pay a near-zero, allocation-free cost at every
instrumentation site.

Spans measure with monotonic clocks (``time.perf_counter``); the single
wall-clock timestamp on each span is informational only and comes from
:func:`repro.obs.console.wall_clock`.  Span ids embed the producing
process id, so records from pool workers (should a worker ever carry a
real tracer) and from the parent can share one sink without colliding.

A finished span becomes one JSON-compatible record handed to the
tracer's *sink* (any object with ``emit(record)`` — see
:class:`repro.obs.sink.JsonlTraceSink`).  Events are zero-duration
records attributed to the currently open span, which is how the
resilient executor re-emits its retry/timeout/rebuild incidents into
the same stream as the timing spans.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import time
from dataclasses import dataclass
from typing import Any, Iterator, Protocol

from repro.obs.console import wall_clock
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "using_tracer",
    "WorkerTraceConfig",
    "worker_trace_config",
    "init_worker_tracer",
]


class TraceSink(Protocol):
    """Anything that can receive finished span/event/metric records."""

    def emit(self, record: dict[str, Any]) -> None:
        """Accept one JSON-compatible trace record."""
        ...  # pragma: no cover - protocol


class Span:
    """One timed, attributed region of work.

    Use as a context manager (obtained from :meth:`Tracer.span`); the
    span is registered with its parent at ``__enter__`` and emitted to
    the sink at ``__exit__``.  ``duration_seconds`` is valid after exit.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "started_unix",
        "duration_seconds",
        "_tracer",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id: str | None = None
        self.attributes = attributes
        self.status = "ok"
        self.started_unix: float = 0.0
        self.duration_seconds: float = 0.0
        self._tracer = tracer
        self._start: float = 0.0

    def annotate(self, **attributes: Any) -> "Span":
        """Attach or overwrite attributes on the open span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.parent_id = self._tracer._push(self)
        self.started_unix = wall_clock()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.duration_seconds = time.perf_counter() - self._start
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault(
                "error", getattr(exc_type, "__name__", str(exc_type))
            )
        self._tracer._pop(self)
        return False


class _NullSpan:
    """The shared span returned by the disabled tracer."""

    __slots__ = ()

    name = ""
    span_id = ""
    parent_id = None
    status = "ok"
    duration_seconds = 0.0
    started_unix = 0.0
    attributes: dict[str, Any] = {}

    def annotate(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """An enabled tracer: nested spans, events, and a metrics registry.

    Parameters
    ----------
    sink:
        Destination for finished records (``None`` keeps spans in
        :attr:`finished` only — useful for tests).
    metrics:
        The registry instrumented code reaches via ``tracer.metrics``
        (a fresh :class:`~repro.obs.metrics.Metrics` by default).
    label:
        Human-readable name for the whole trace (the CLI passes the
        subcommand name).
    keep_finished:
        Retain finished span objects on the tracer (bounded by
        ``keep_limit``); on by default only when no sink is given.
    """

    enabled = True

    def __init__(
        self,
        sink: TraceSink | None = None,
        metrics: Metrics | None = None,
        label: str = "trace",
        keep_finished: bool | None = None,
        keep_limit: int = 10_000,
    ):
        self.sink = sink
        self.metrics = metrics if metrics is not None else Metrics()
        self.label = label
        self.trace_id = f"{os.getpid():08x}"
        self.finished: list[Span] = []
        self._keep = keep_finished if keep_finished is not None else sink is None
        self._keep_limit = keep_limit
        self._stack: list[Span] = []
        self._counter = itertools.count(1)
        self._closed = False

    # -------------------------------------------------------------- spans

    def _next_id(self) -> str:
        return f"{os.getpid():08x}-{next(self._counter):06x}"

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, parented to the innermost open span on entry."""
        return Span(self, name, attributes)

    def current_span_id(self) -> str | None:
        """Id of the innermost open span (``None`` at the trace root)."""
        return self._stack[-1].span_id if self._stack else None

    def _push(self, span: Span) -> str | None:
        parent = self.current_span_id()
        self._stack.append(span)
        return parent

    def _pop(self, span: Span) -> None:
        # tolerate exotic unwinding orders rather than corrupting state
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        if self._keep and len(self.finished) < self._keep_limit:
            self.finished.append(span)
        self._emit(
            {
                "kind": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "trace": self.trace_id,
                "status": span.status,
                "started_unix": span.started_unix,
                "duration_seconds": span.duration_seconds,
                "attributes": span.attributes,
            }
        )

    def record_span(
        self, name: str, duration_seconds: float, **attributes: Any
    ) -> None:
        """Emit an already-measured span (asynchronous/pool-side work).

        The span never opens on the stack; it is attributed to the
        innermost currently-open span, which is how the executor maps
        pool-task latencies under its ``exec.run`` span.  The recorded
        ``started_unix`` is back-dated by the duration so waterfall and
        utilization renderings place the span where it actually ran,
        not at its completion instant.
        """
        self._emit(
            {
                "kind": "span",
                "name": name,
                "id": self._next_id(),
                "parent": self.current_span_id(),
                "trace": self.trace_id,
                "status": str(attributes.pop("status", "ok")),
                "started_unix": wall_clock() - float(duration_seconds),
                "duration_seconds": float(duration_seconds),
                "attributes": attributes,
            }
        )

    def event(self, name: str, **attributes: Any) -> None:
        """Emit a zero-duration incident attached to the open span."""
        self._emit(
            {
                "kind": "event",
                "name": name,
                "span": self.current_span_id(),
                "trace": self.trace_id,
                "attributes": attributes,
            }
        )

    # ------------------------------------------------------------ lifecycle

    def _emit(self, record: dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.emit(record)

    def flush_metrics(self) -> None:
        """Emit the current (cumulative) metrics snapshot to the sink.

        Pool workers call this after each task so a worker killed later
        still leaves its counters on disk; :func:`repro.obs.stitch`
        folds the *last* snapshot of each worker file into the stitched
        trace's final registry.
        """
        if not self._closed:
            self._emit({"kind": "metrics", "values": self.metrics.snapshot()})

    def finish(self) -> None:
        """Flush the final metrics snapshot and close the sink (idempotent)."""
        if self._closed:
            return
        self._emit({"kind": "metrics", "values": self.metrics.snapshot()})
        self._closed = True
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        return (
            f"Tracer(label={self.label!r}, sink={self.sink!r}, "
            f"open_spans={len(self._stack)})"
        )


class NullTracer:
    """The disabled tracer: every operation is a cached no-op."""

    enabled = False
    metrics: Metrics = NULL_METRICS
    label = "null"
    trace_id = ""

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> str | None:
        return None

    def record_span(
        self, name: str, duration_seconds: float, **attributes: Any
    ) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def flush_metrics(self) -> None:
        pass

    def finish(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


#: the shared disabled tracer (the process-wide default).
NULL_TRACER = NullTracer()

_current: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer instrumented code should open spans on."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install the ambient tracer (``None`` resets to the null tracer)."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


# ------------------------------------------------------- worker plumbing
#
# A `ResilientExecutor` run under an enabled, file-backed tracer mirrors
# itself into pool workers: the pool initializer installs a worker-local
# `Tracer` writing `worker-<exec_run>-<pid>.jsonl` next to the parent's
# trace file, and the per-task shim wraps the user's worker function in
# an `exec.task.body` span stamped with the dispatching (exec_run,
# task_id, attempt).  `repro.obs.stitch` later reparents those worker
# spans under the parent's matching `exec.task` records, so a parallel
# certify renders as one logical tree.


@dataclass(frozen=True)
class WorkerTraceConfig:
    """Everything a pool initializer needs to mirror a tracer in a worker.

    Attributes
    ----------
    directory:
        The worker-trace directory next to the parent's trace file
        (see :func:`repro.obs.sink.worker_trace_dir`).
    run_id:
        The parent tracer's :attr:`Tracer.trace_id`; stitched worker
        files must carry it so traces from different runs never mix.
    exec_run:
        The dispatching executor run's unique id (one per
        ``ResilientExecutor.run`` call in the parent process).
    label:
        Human-readable workload label for the worker trace headers.
    """

    directory: str
    run_id: str
    exec_run: str
    label: str


def worker_trace_config(
    tracer: "Tracer | NullTracer", exec_run: str, label: str = "worker"
) -> WorkerTraceConfig | None:
    """The :class:`WorkerTraceConfig` mirroring ``tracer``, if any.

    Returns ``None`` when the tracer is disabled or its sink has no
    file path (nothing for a worker to write next to).
    """
    if not tracer.enabled:
        return None
    path = getattr(getattr(tracer, "sink", None), "path", None)
    if path is None:
        return None
    from repro.obs.sink import worker_trace_dir

    return WorkerTraceConfig(
        directory=str(worker_trace_dir(path)),
        run_id=tracer.trace_id,
        exec_run=exec_run,
        label=label,
    )


def init_worker_tracer(config: WorkerTraceConfig) -> Tracer:
    """Install a worker-local tracer per ``config`` (pool initializer).

    The worker's JSONL file lives in ``config.directory`` and its header
    carries the parent run id plus the dispatching exec-run id, which is
    what :func:`repro.obs.stitch.stitch_traces` keys the reparenting on.
    Worker processes are torn down without cleanup, so the sink flushes
    every record and :meth:`Tracer.flush_metrics` runs after each task —
    a killed worker loses at most its in-flight span.
    """
    from pathlib import Path

    from repro.obs.sink import JsonlTraceSink

    directory = Path(config.directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"worker-{config.exec_run}-{os.getpid():08x}"
    path = directory / f"{stem}.jsonl"
    suffix = 1
    while path.exists():  # pid reuse across pool rebuilds
        suffix += 1
        path = directory / f"{stem}-{suffix}.jsonl"
    sink = JsonlTraceSink(
        path,
        label=config.label,
        extra={
            "worker": True,
            "run": config.run_id,
            "exec_run": config.exec_run,
        },
    )
    tracer = Tracer(sink=sink, label=config.label)
    set_tracer(tracer)
    return tracer


@contextlib.contextmanager
def using_tracer(
    tracer: "Tracer | NullTracer | None",
) -> Iterator["Tracer | NullTracer"]:
    """Temporarily install ``tracer`` as the ambient tracer.

    ``None`` is a no-op (the current tracer stays in effect), matching
    the ``using_engine(None)`` / ``using_exec_policy(None)`` convention.
    """
    global _current
    if tracer is None:
        yield _current
        return
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous

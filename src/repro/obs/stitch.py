"""Merge per-worker trace files into one logical cross-process trace.

A traced ``repro certify --k 6 --d 2 --jobs 4`` run produces one parent
trace plus one JSONL file per pool worker (written under
``<trace>.workers/`` by :func:`repro.obs.tracer.init_worker_tracer`).
Each file is internally consistent — pid-qualified span ids, its own
header — but the *logical* run is one tree: every worker span belongs
under the ``exec.task`` record of the task that dispatched it.

Stitching performs that reparenting:

* worker ``exec.task.body`` spans (stamped with the dispatching
  ``(exec_run, task_id, attempt)`` by the executor's worker shim) are
  **spliced out** — their children are reparented directly under the
  parent trace's matching ``exec.task`` record, so a stitched pool run
  has the same tree shape as the same workload executed inline;
* worker spans with no dispatching task (pool-initializer work, or a
  body whose parent record was lost to a crash) are attached under the
  owning ``exec.run`` span and flagged ``stitch_orphan``;
* the **last** metrics snapshot of each file merges into one final
  registry in deterministic order (parent first, then workers in
  sorted-name order), so stitched counters match what the same run
  would have accumulated in a single process.

Worker files whose header ``run`` id does not match the parent's are
rejected — stitching never mixes records from different runs.

:func:`canonical_form` is the comparison companion: it projects a
(stitched or single-process) trace onto its timing-free shape — span
names, statuses, stable attributes, and sorted child lists — which is
what "the same run" means across worker counts.  The chaos-free
bit-identity property in ``tests/integration/test_obs_stitch.py`` pins
serial and ``--jobs 4`` certifications to equal canonical forms.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.errors import TraceError
from repro.obs.metrics import Metrics
from repro.obs.sink import read_trace, worker_trace_dir

__all__ = [
    "split_segments",
    "stitch_traces",
    "stitch_path",
    "load_stitched",
    "canonical_form",
]

#: the worker-side wrapper span spliced out during stitching.
BODY_SPAN = "exec.task.body"

#: attributes that vary across equivalent runs (pool layout, ids,
#: human-readable timing text) and are dropped by :func:`canonical_form`.
VOLATILE_ATTRIBUTES = frozenset(
    {"mode", "jobs", "workers", "exec_run", "detail", "pid"}
)


def split_segments(records: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
    """Regroup a concatenated multi-file record list at header records.

    :func:`repro.obs.sink.read_trace` on a directory returns the files'
    records back-to-back, each file starting with its header; this
    splits them apart again.  Raises :class:`~repro.errors.TraceError`
    if the list does not start with a header.
    """
    if records and records[0].get("kind") != "header":
        raise TraceError("record stream does not start with a trace header")
    segments: list[list[dict[str, Any]]] = []
    for record in records:
        if record.get("kind") == "header":
            segments.append([])
        segments[-1].append(record)
    return segments


def _last_metrics(records: list[dict[str, Any]]) -> dict[str, Any] | None:
    """The final (cumulative) metrics snapshot of one trace segment."""
    snapshot = None
    for record in records:
        if record.get("kind") == "metrics":
            snapshot = record.get("values", {})
    return snapshot


def stitch_traces(
    parent: list[dict[str, Any]],
    workers: list[list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Stitch worker trace segments under their dispatching parent trace.

    Parameters
    ----------
    parent:
        The parent process's records (header first), e.g. from
        :func:`~repro.obs.sink.read_trace`.
    workers:
        One record list per worker file, each starting with a worker
        header (``worker: true``, ``run``, ``exec_run``).  Order
        determines the metrics merge order — pass sorted-name order for
        determinism (:func:`stitch_path` does).

    Returns
    -------
    list of records
        One merged trace: a header flagged ``stitched``, the parent's
        span/event records, every worker's records reparented, and a
        single merged final metrics snapshot.
    """
    if not parent or parent[0].get("kind") != "header":
        raise TraceError("parent trace has no header record")
    parent_header = parent[0]
    parent_run = parent_header.get("run", f"{int(parent_header.get('pid', 0)):08x}")

    # dispatch index: (exec_run, task_id, attempt) -> parent exec.task id,
    # plus exec_run -> exec.run span id for orphan attachment.
    task_ids: dict[tuple[str, str, int], str] = {}
    run_ids: dict[str, str] = {}
    for record in parent:
        if record.get("kind") != "span":
            continue
        attrs = record.get("attributes", {})
        exec_run = attrs.get("exec_run")
        if exec_run is None:
            continue
        if record.get("name") == "exec.task":
            key = (str(exec_run), str(attrs.get("task_id")), int(attrs.get("attempt", 0)))
            task_ids[key] = str(record.get("id"))
        elif record.get("name") == "exec.run":
            run_ids[str(exec_run)] = str(record.get("id"))

    stitched: list[dict[str, Any]] = []
    header = dict(parent_header)
    header["stitched"] = True
    header["worker_files"] = len(workers)
    stitched.append(header)
    stitched.extend(
        record for record in parent[1:] if record.get("kind") != "metrics"
    )

    merged = Metrics()
    parent_snapshot = _last_metrics(parent)
    if parent_snapshot is not None:
        merged.merge(parent_snapshot)

    for segment in workers:
        if not segment or segment[0].get("kind") != "header":
            raise TraceError("worker trace segment has no header record")
        worker_header = segment[0]
        worker_run = worker_header.get("run")
        if worker_run != parent_run:
            raise TraceError(
                f"worker trace run id {worker_run!r} does not match the "
                f"parent trace run id {parent_run!r} — refusing to stitch "
                "files from different runs"
            )
        exec_run = str(worker_header.get("exec_run", ""))
        spans = [r for r in segment if r.get("kind") == "span"]
        events = [r for r in segment if r.get("kind") == "event"]

        # body spans are spliced out: their id maps to the dispatching
        # exec.task record; everything else parented to them follows.
        remap: dict[str, str] = {}
        dropped: set[str] = set()
        kept: list[dict[str, Any]] = []
        for span in spans:
            attrs = span.get("attributes", {})
            if span.get("name") == BODY_SPAN:
                key = (
                    exec_run,
                    str(attrs.get("task_id")),
                    int(attrs.get("attempt", 0)),
                )
                target = task_ids.get(key)
                if target is not None:
                    remap[str(span.get("id"))] = target
                    dropped.add(str(span.get("id")))
                    continue
                # body with no recorded dispatch (parent lost the task
                # record, e.g. a crashed run): keep it as an orphan.
            kept.append(span)

        anchor = run_ids.get(exec_run)
        for span in kept:
            out = dict(span)
            parent_id = out.get("parent")
            if parent_id is not None and str(parent_id) in remap:
                out["parent"] = remap[str(parent_id)]
            elif parent_id is None:
                out["parent"] = anchor
                attrs = dict(out.get("attributes", {}))
                attrs["stitch_orphan"] = anchor is None
                out["attributes"] = attrs
            stitched.append(out)
        for event in events:
            out = dict(event)
            span_id = out.get("span")
            if span_id is not None and str(span_id) in remap:
                out["span"] = remap[str(span_id)]
            stitched.append(out)

        snapshot = _last_metrics(segment)
        if snapshot is not None:
            merged.merge(snapshot)

    stitched.append({"kind": "metrics", "values": merged.snapshot()})
    return stitched


def stitch_path(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Read a parent trace and stitch its worker-trace directory, if any.

    The worker directory follows the
    :func:`~repro.obs.sink.worker_trace_dir` convention
    (``<trace>.workers/``); worker files are stitched in sorted-name
    order.  With no worker directory this is :func:`read_trace` plus a
    no-worker stitch (the trace still gains the merged-metrics record),
    so downstream analytics see one uniform shape.
    """
    parent = read_trace(path)
    workers_dir = worker_trace_dir(path)
    workers: list[list[dict[str, Any]]] = []
    if workers_dir.is_dir():
        workers = [
            _worker_segment(file) for file in sorted(workers_dir.glob("*.jsonl"))
        ]
    return stitch_traces(parent, workers)


def _worker_segment(path: Path) -> list[dict[str, Any]]:
    records = read_trace(path)
    if not records or not records[0].get("worker"):
        raise TraceError(
            f"{path} is not a worker trace (missing `worker: true` header)"
        )
    return records


def load_stitched(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Load a trace for analysis, stitching workers when present.

    The convenience entry the ``repro trace`` analytics subcommands use:
    a directory or glob reads as segments and stitches the first
    non-worker segment with the worker segments; a single file stitches
    its ``<trace>.workers/`` directory when one exists, and otherwise
    loads the file as-is (no synthetic metrics record is appended).
    """
    trace_path = Path(path)
    if not trace_path.is_dir() and trace_path.exists():
        if worker_trace_dir(path).is_dir():
            return stitch_path(path)
        return read_trace(path)
    segments = split_segments(read_trace(path))
    parents = [s for s in segments if not s[0].get("worker")]
    workers = [s for s in segments if s[0].get("worker")]
    if not parents:
        raise TraceError(
            f"{path} holds only worker traces — stitching needs the parent "
            "trace file too"
        )
    if len(parents) > 1:
        raise TraceError(
            f"{path} holds {len(parents)} parent traces — stitch one run "
            "at a time"
        )
    if not workers:
        return parents[0]
    return stitch_traces(parents[0], workers)


# ------------------------------------------------------- canonical form


def canonical_form(
    records: list[dict[str, Any]],
    ignore_attributes: frozenset[str] = VOLATILE_ATTRIBUTES,
) -> Any:
    """The timing-free shape of a trace, for cross-run comparison.

    Spans become ``["span", name, status, attributes, children]`` with
    durations, timestamps, ids, and :data:`VOLATILE_ATTRIBUTES` dropped;
    events attach to their span as ``["event", name, attributes]``.
    Sibling order is sorted (pool completion order is nondeterministic),
    so two runs of the same workload — serial, ``--jobs 4``, stitched or
    inline — compare equal exactly when their logical trees agree.
    Metrics records are excluded: counter determinism is a *separate*
    contract (task-order merges), asserted directly by the tests.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    children: dict[Any, list[dict[str, Any]]] = {}
    known = {str(span.get("id")) for span in spans}
    for span in spans:
        parent = span.get("parent")
        key = str(parent) if parent is not None and str(parent) in known else None
        children.setdefault(key, []).append(span)

    def clean(attributes: dict[str, Any]) -> list[list[Any]]:
        return sorted(
            [str(name), repr(value)]
            for name, value in attributes.items()
            if name not in ignore_attributes
        )

    incidents: dict[Any, list[list[Any]]] = {}
    for event in events:
        span_id = event.get("span")
        key = str(span_id) if span_id is not None and str(span_id) in known else None
        incidents.setdefault(key, []).append(
            ["event", str(event.get("name")), clean(event.get("attributes", {}))]
        )

    def node(span: dict[str, Any]) -> list[Any]:
        span_id = str(span.get("id"))
        kids = sorted(
            [node(child) for child in children.get(span_id, [])]
            + incidents.get(span_id, [])
        )
        return [
            "span",
            str(span.get("name")),
            str(span.get("status", "ok")),
            clean(span.get("attributes", {})),
            kids,
        ]

    return sorted(
        [node(root) for root in children.get(None, [])]
        + incidents.get(None, [])
    )

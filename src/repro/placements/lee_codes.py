"""Perfect Lee-code resource placements (Bae & Bose, the paper's ref. [3]).

The *resource placement* line of work the paper situates itself against
asks a different question: place resources so that every node is within
Lee distance ``r`` of exactly one resource — a perfect dominating set
under Lee distance (a perfect Lee code).  For ``d = 2`` the classical
construction places a resource at every ``(i, j)`` with

.. math::

    i + (2r+1)\\,j \\equiv 0 \\pmod{2r^2 + 2r + 1}

which tiles :math:`\\mathbb{Z}_k^2` with radius-``r`` Lee spheres whenever
``k`` is a multiple of the sphere size :math:`2r^2 + 2r + 1`.

These placements let the experiments contrast the two design goals: Lee
codes optimize *coverage distance*, the paper's linear placements optimize
*communication load* — for ``r ≥ 1`` a Lee code is sparser than a linear
placement (:math:`k^2/(2r^2+2r+1)` vs :math:`k` nodes) yet its load under
complete exchange is still linear in its size when it happens to be
lattice-uniform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement
from repro.torus.coords import all_coords, coords_to_ids
from repro.torus.topology import Torus

__all__ = [
    "lee_sphere_size",
    "perfect_lee_placement",
    "is_perfect_dominating",
    "covering_radius",
]


def lee_sphere_size(r: int, d: int = 2) -> int:
    """Number of nodes within Lee distance ``r`` of a point.

    For ``d = 2`` this is the classical :math:`2r^2 + 2r + 1`; the general
    form is computed by dynamic programming over dimensions (valid while
    ``2r < k`` so spheres do not self-wrap).
    """
    if r < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {r}")
    # counts[j] = number of points of Z^dim at L1 distance exactly j
    counts = np.zeros(r + 1, dtype=np.int64)
    counts[0] = 1
    for _dim in range(d):
        new = np.zeros(r + 1, dtype=np.int64)
        for dist in range(r + 1):
            if counts[dist] == 0:
                continue
            new[dist] += counts[dist]  # offset 0 in this dimension
            for step in range(1, r - dist + 1):
                new[dist + step] += 2 * counts[dist]  # ± step
        counts = new
    return int(counts.sum())


def perfect_lee_placement(torus: Torus, r: int) -> Placement:
    """The radius-``r`` perfect Lee-code placement on a 2-D torus.

    Raises
    ------
    InvalidParameterError
        If ``d != 2``, ``r < 1``, or ``k`` is not a multiple of the Lee
        sphere size ``2r^2 + 2r + 1`` (the perfect-tiling condition).
    """
    if torus.d != 2:
        raise InvalidParameterError(
            f"perfect Lee placements implemented for d=2 only; got d={torus.d}"
        )
    if r < 1:
        raise InvalidParameterError(f"radius must be >= 1, got {r}")
    m = 2 * r * r + 2 * r + 1
    if torus.k % m != 0:
        raise InvalidParameterError(
            f"perfect radius-{r} Lee code needs k divisible by {m}; got k={torus.k}"
        )
    coords = all_coords(torus.k, 2)
    member = np.mod(coords[:, 0] + (2 * r + 1) * coords[:, 1], m) == 0
    ids = coords_to_ids(coords[member], torus.k, 2)
    return Placement(torus, ids, name=f"lee-code(r={r})")


def is_perfect_dominating(placement: Placement, r: int) -> bool:
    """Whether every torus node is within Lee distance ``r`` of *exactly*
    one processor — the perfect-code property."""
    torus = placement.torus
    proc_coords = placement.coords()
    all_nodes = torus.all_node_coords()
    covered = np.zeros(torus.num_nodes, dtype=np.int64)
    for pc in proc_coords:
        dists = torus.lee_distances_array(
            all_nodes, np.broadcast_to(pc, all_nodes.shape)
        )
        covered += dists <= r
    return bool(np.all(covered == 1))


def covering_radius(placement: Placement) -> int:
    """Smallest ``r`` such that every node is within Lee distance ``r`` of
    some processor (the placement's worst-case access latency)."""
    torus = placement.torus
    proc_coords = placement.coords()
    all_nodes = torus.all_node_coords()
    best = np.full(torus.num_nodes, torus.diameter + 1, dtype=np.int64)
    for pc in proc_coords:
        dists = torus.lee_distances_array(
            all_nodes, np.broadcast_to(pc, all_nodes.shape)
        )
        np.minimum(best, dists, out=best)
    return int(best.max())

"""Baseline and counterexample placements.

* :func:`fully_populated_placement` — every node hosts a processor.  This
  is the Section 1 motivation: under complete exchange some edge carries
  :math:`> k^{d+1}/8` messages, i.e. superlinear load.
* :func:`block_placement` — a contiguous sub-block (non-uniform): shows
  what linear placements avoid and exercises the general (non-uniform)
  bisection machinery.
* :func:`single_subtorus_placement` — all processors in one principal
  subtorus: the extreme of non-uniformity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement, PlacementFamily
from repro.torus.coords import coords_to_ids
from repro.torus.subtorus import principal_subtorus_nodes
from repro.torus.topology import Torus

__all__ = [
    "fully_populated_placement",
    "block_placement",
    "single_subtorus_placement",
    "FullyPopulatedFamily",
]


def fully_populated_placement(torus: Torus) -> Placement:
    """All :math:`k^d` nodes — the classical fully populated torus."""
    return Placement(
        torus, np.arange(torus.num_nodes, dtype=np.int64), name="fully-populated"
    )


def block_placement(torus: Torus, side: int, name: str | None = None) -> Placement:
    """The contiguous block ``{0, …, side-1}^d`` of :math:`side^d` processors.

    Deliberately *non*-uniform for ``side < k`` — a contrast case for the
    uniformity-based results (Theorem 1 does not apply to it).
    """
    if not 1 <= side <= torus.k:
        raise InvalidParameterError(
            f"block side must satisfy 1 <= side <= k={torus.k}, got {side}"
        )
    ranges = [np.arange(side, dtype=np.int64)] * torus.d
    grids = np.meshgrid(*ranges, indexing="ij")
    coords = np.stack([g.ravel() for g in grids], axis=1)
    ids = coords_to_ids(coords, torus.k, torus.d)
    return Placement(torus, ids, name=name or f"block(side={side})")


def single_subtorus_placement(
    torus: Torus, dim: int = 0, value: int = 0
) -> Placement:
    """All :math:`k^{d-1}` nodes of one principal subtorus.

    Same *size* as a linear placement but maximally non-uniform along
    ``dim`` — the canonical counterexample showing size alone does not
    buy linear load.
    """
    ids = principal_subtorus_nodes(torus, dim, value)
    return Placement(torus, ids, name=f"subtorus(dim={dim}, value={value})")


class FullyPopulatedFamily(PlacementFamily):
    """The family of fully populated tori (size law :math:`k^d`)."""

    name = "fully-populated"

    def build(self, k: int, d: int) -> Placement:
        return fully_populated_placement(Torus(k, d))

    def expected_size(self, k: int, d: int) -> int:
        return k**d

    def is_uniform_by_construction(self) -> bool:
        return True

"""Structural analysis of placements: uniformity and summary statistics.

The paper calls a placement *uniform* when each principal subtorus of
:math:`T_k^d` contains the same number of processors (Sec. 2).  Since there
are ``k`` principal subtori along each of the ``d`` dimensions, uniformity
means ``d`` flat histograms.  Linear placements with all coefficients
coprime to ``k`` put exactly :math:`k^{d-2}` processors in every principal
subtorus (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placements.base import Placement
from repro.torus.subtorus import subtorus_layer_counts

__all__ = [
    "layer_counts",
    "is_uniform",
    "uniform_dimensions",
    "placement_summary",
    "PlacementSummary",
]


def layer_counts(placement: Placement, dim: int) -> np.ndarray:
    """Processors per principal subtorus along ``dim`` (length-``k`` array)."""
    return subtorus_layer_counts(placement.torus, placement.node_ids, dim)


def uniform_dimensions(placement: Placement) -> list[int]:
    """The dimensions along which the placement is uniform."""
    return [
        dim
        for dim in range(placement.torus.d)
        if np.all(layer_counts(placement, dim) == layer_counts(placement, dim)[0])
    ]


def is_uniform(placement: Placement) -> bool:
    """Paper's uniformity: equal processors in *every* principal subtorus."""
    return len(uniform_dimensions(placement)) == placement.torus.d


@dataclass(frozen=True)
class PlacementSummary:
    """Structural facts about a placement, for reports and experiment rows."""

    name: str
    k: int
    d: int
    size: int
    density: float
    uniform: bool
    uniform_dims: tuple[int, ...]
    min_layer_count: int
    max_layer_count: int

    def as_row(self) -> list:
        """Row form for :class:`repro.util.tables.Table`."""
        return [
            self.name,
            self.k,
            self.d,
            self.size,
            self.density,
            self.uniform,
        ]


def placement_summary(placement: Placement) -> PlacementSummary:
    """Compute a :class:`PlacementSummary` for ``placement``."""
    torus = placement.torus
    all_counts = np.concatenate(
        [layer_counts(placement, dim) for dim in range(torus.d)]
    )
    udims = tuple(uniform_dimensions(placement))
    return PlacementSummary(
        name=placement.name,
        k=torus.k,
        d=torus.d,
        size=len(placement),
        density=len(placement) / torus.num_nodes,
        uniform=len(udims) == torus.d,
        uniform_dims=udims,
        min_layer_count=int(all_counts.min()),
        max_layer_count=int(all_counts.max()),
    )

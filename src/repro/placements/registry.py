"""Registry of named placement families.

Experiments and examples reference families by short name; users can
register their own with :func:`register_family`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InvalidParameterError
from repro.placements.base import PlacementFamily
from repro.placements.fully import FullyPopulatedFamily
from repro.placements.linear import LinearPlacementFamily
from repro.placements.multiple import MultipleLinearPlacementFamily

__all__ = ["get_family", "family_names", "register_family"]

_FACTORIES: dict[str, Callable[[], PlacementFamily]] = {
    "linear": lambda: LinearPlacementFamily(offset=0),
    "multilinear-t2": lambda: MultipleLinearPlacementFamily(t=2),
    "multilinear-t3": lambda: MultipleLinearPlacementFamily(t=3),
    "fully-populated": FullyPopulatedFamily,
}


def get_family(name: str) -> PlacementFamily:
    """Instantiate the registered family called ``name``."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown placement family {name!r}; known: {sorted(_FACTORIES)}"
        ) from None


def family_names() -> list[str]:
    """Sorted names of all registered families."""
    return sorted(_FACTORIES)


def register_family(name: str, factory: Callable[[], PlacementFamily]) -> None:
    """Register (or replace) a family factory under ``name``."""
    if not name:
        raise InvalidParameterError("family name must be non-empty")
    _FACTORIES[name] = factory

"""Shifted-diagonal placements — the Blaum et al. constructions.

Blaum, Bruck, Pifarré, and Sanz ("On Optimal Placements of Processors in
Tori Networks", SPDP 1996) proposed placements of size :math:`k` on
:math:`T_k^2` and :math:`k^2` on :math:`T_k^3` built from (shifted)
diagonals.  Section 5 of our paper observes these are special cases of
linear placements; this module provides them under their historical names
so the experiments can reference both framings.
"""

from __future__ import annotations

import numpy as np

from repro.placements.base import Placement
from repro.placements.linear import linear_placement
from repro.torus.coords import coords_to_ids
from repro.torus.topology import Torus

__all__ = ["shifted_diagonal_placement", "antidiagonal_placement_2d"]


def shifted_diagonal_placement(torus: Torus, shift: int = 0) -> Placement:
    """The shifted diagonal: the all-ones linear placement with offset ``shift``.

    On :math:`T_k^2` this is the set ``{(i, (shift - i) mod k)}`` of size
    ``k``; on :math:`T_k^3` it is Blaum et al.'s :math:`k^2`-processor
    shifted-diagonal placement.
    """
    return linear_placement(
        torus, offset=shift, name=f"shifted-diagonal(shift={shift % torus.k})"
    )


def antidiagonal_placement_2d(torus: Torus, shift: int = 0) -> Placement:
    """The 2-D *anti*-diagonal ``{(i, (i + shift) mod k)}``.

    This is the linear placement with coefficient vector ``(1, −1)`` and
    offset ``−shift`` — a coefficient choice other than all-ones, exercising
    the general form of Definition 10 (both coefficients are coprime to
    ``k``, so the placement is still uniform).
    """
    if torus.d != 2:
        raise ValueError(f"antidiagonal placement is 2-D only; torus has d={torus.d}")
    i = np.arange(torus.k, dtype=np.int64)
    coords = np.stack([i, np.mod(i + shift, torus.k)], axis=1)
    ids = coords_to_ids(coords, torus.k, torus.d)
    return Placement(torus, ids, name=f"antidiagonal(shift={shift % torus.k})")

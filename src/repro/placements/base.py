"""Placement container and the parameterized-family protocol.

The paper stresses that a placement is really a *description* — an
algorithm producing :math:`P_{d,k}` for the whole class of tori (Sec. 1).
We model that split explicitly:

* :class:`Placement` is one concrete processor set on one concrete torus;
* :class:`PlacementFamily` is the description: ``build(k, d)`` materializes
  the member for given parameters, and ``expected_size(k, d)`` states the
  family's size law (e.g. :math:`k^{d-1}` for linear placements), which the
  experiments check against reality.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PlacementError
from repro.torus.topology import Torus

__all__ = ["Placement", "PlacementFamily"]


class Placement:
    """A concrete set of processor nodes on a concrete torus.

    Parameters
    ----------
    torus:
        The host :class:`~repro.torus.Torus`.
    node_ids:
        Iterable of dense node ids; duplicates are removed and the result
        is stored sorted.
    name:
        Human-readable label used by reports and experiment tables.

    Raises
    ------
    PlacementError
        If any node id is out of range or the placement is empty.
    """

    def __init__(self, torus: Torus, node_ids, name: str = "placement"):
        self.torus = torus
        ids = np.unique(np.asarray(node_ids, dtype=np.int64))
        if ids.size == 0:
            raise PlacementError("a placement must contain at least one node")
        if ids[0] < 0 or ids[-1] >= torus.num_nodes:
            raise PlacementError(
                f"node ids must lie in [0, {torus.num_nodes}); got range "
                f"[{ids[0]}, {ids[-1]}]"
            )
        self.node_ids: np.ndarray = ids
        self.name = str(name)

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return int(self.node_ids.size)

    @property
    def size(self) -> int:
        """Number of processors, :math:`|P|`."""
        return len(self)

    def coords(self) -> np.ndarray:
        """Coordinates of all processors, shape ``(|P|, d)``, sorted by id."""
        return self.torus.coords(self.node_ids)

    def contains(self, node_id: int) -> bool:
        """Whether the node hosts a processor."""
        idx = np.searchsorted(self.node_ids, node_id)
        return bool(idx < self.node_ids.size and self.node_ids[idx] == node_id)

    def contains_coord(self, coord) -> bool:
        """Whether the node at ``coord`` hosts a processor."""
        return self.contains(self.torus.node_id(coord))

    def mask(self) -> np.ndarray:
        """Boolean membership mask over all torus nodes, shape ``(k^d,)``."""
        m = np.zeros(self.torus.num_nodes, dtype=bool)
        m[self.node_ids] = True
        return m

    def ordered_pairs_count(self) -> int:
        """Number of ordered processor pairs, :math:`|P|(|P|-1)`."""
        return len(self) * (len(self) - 1)

    def complement(self, name: str | None = None) -> "Placement":
        """The placement of all *router-only* nodes (useful in tests)."""
        all_ids = np.arange(self.torus.num_nodes, dtype=np.int64)
        rest = np.setdiff1d(all_ids, self.node_ids, assume_unique=True)
        return Placement(self.torus, rest, name or f"~{self.name}")

    def restrict(self, keep_mask, name: str | None = None) -> "Placement":
        """Sub-placement selected by a boolean mask over ``self.node_ids``."""
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != self.node_ids.shape:
            raise PlacementError(
                f"mask shape {keep_mask.shape} != node_ids shape "
                f"{self.node_ids.shape}"
            )
        return Placement(
            self.torus, self.node_ids[keep_mask], name or f"{self.name}|restricted"
        )

    # ------------------------------------------------------------ equality

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Placement)
            and other.torus == self.torus
            and np.array_equal(other.node_ids, self.node_ids)
        )

    def __hash__(self) -> int:
        return hash((self.torus, self.node_ids.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Placement(name={self.name!r}, k={self.torus.k}, d={self.torus.d}, "
            f"size={len(self)})"
        )


class PlacementFamily(abc.ABC):
    """A placement *description*: an algorithm producing ``P_{d,k}``.

    Subclasses implement :meth:`build` and :meth:`expected_size`; the
    experiment harness sweeps ``(k, d)`` through the family.
    """

    #: short machine name used by the registry and experiment tables.
    name: str = "family"

    @abc.abstractmethod
    def build(self, k: int, d: int) -> Placement:
        """Materialize the family member for torus parameters ``(k, d)``."""

    @abc.abstractmethod
    def expected_size(self, k: int, d: int) -> int:
        """The family's size law — what :math:`|P_{d,k}|` should be."""

    def is_uniform_by_construction(self) -> bool:
        """Whether every member is guaranteed uniform (paper's Def. in Sec. 2).

        Families override this when they can promise uniformity; the default
        is conservative.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(name={self.name!r})"

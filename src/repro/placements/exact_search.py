"""Symmetry-reduced, bound-pruned exact optimality certification.

:func:`repro.placements.catalog.global_minimum_emax` certifies the global
ODR :math:`E_{max}` minimum by brute force — one full :math:`O(|P|^2)`
evaluation per candidate, all :math:`C(k^d, n)` of them.  This module
reaches the same *exact* answers with two classic search-space
reductions, pushing certification from :math:`T_4^2` to :math:`T_6^2`
and beyond:

**Orbit enumeration (orderly generation).**  Placements are grown as
sorted node-id tuples, one processor at a time, and a prefix is expanded
only when it is the lexicographically least member of its orbit under the
full automorphism group (:class:`~repro.placements.symmetry.AutomorphismGroup`,
order :math:`k^d \\cdot d! \\cdot 2^d`).  The Read/Faradžev canonicity
theorem makes this complete: removing the largest element of a canonical
set leaves a canonical set, so every canonical ``n``-set is reached by a
unique chain of canonical prefixes and each orbit is visited exactly once.
Exact per-placement accounting survives the quotient via
orbit–stabilizer counting: an orbit has :math:`|G|/|\\mathrm{Stab}(R)|`
members, so ``num_optimal`` and the :math:`E_{max}` histogram are still
reported over *all* placements, bit-identical to the brute force.

**The ODR variant subtlety.**  Restricted-ODR :math:`E_{max}` is
invariant under translations only: dimension permutations re-order the
correction sequence and reflections flip the even-``k`` tie-break, so
:math:`E_{max}` varies *within* a full-group orbit.  Each canonical
representative ``R`` is therefore evaluated under every point-group
variant ``h`` (all :math:`d!\\cdot 2^d` ``reflect∘permute`` images; only
the :math:`d!` permutations when ``k`` is odd, where minimal corrections
are unique and reflections provably map ODR paths to ODR paths).  The
orbit member :math:`t\\cdot h\\cdot R` has
:math:`E_{max} = E_{max}(h(R))`, and value ``v`` occurs exactly
:math:`k^d \\cdot \\#\\{h : E_{max}(h(R)) = v\\}/|\\mathrm{Stab}(R)|`
times in the orbit — an integer, because the fibers of
:math:`g \\mapsto g(R)` partition evenly.

**Branch and bound.**  Each variant's load vector is maintained
incrementally along the prefix tree via
:func:`repro.load.odr_loads.odr_edge_loads_add_delta` —
:math:`O(|P|)` pair work per grown node instead of :math:`O(|P|^2)` per
leaf; the engine performs *zero* from-scratch placement evaluations.
Because loads only ever increase as processors are added, the partial
:math:`E_{max}` of a prefix lower-bounds every completion, and Lemma 1
gives a second, routing-independent bound
:math:`2|S|(|P|-|S|)/|∂S|` from the prefix's separator.  In ``bound``
mode any subtree (or individual variant) whose bound strictly exceeds
the incumbent is pruned — exact for the minimum and ``num_optimal``
(achievers are never pruned), while the full histogram is only produced
in ``full`` mode, which disables pruning.

Subtree roots can be sharded over a process pool (per-worker group
tables, the :mod:`repro.load.engine.parallel` pattern); per-worker
incumbents keep the search exact without cross-process communication.
The fan-out runs through :class:`repro.exec.ResilientExecutor`, so worker
crashes and hangs are retried (and, past the retry budget, recomputed
serially in-process), and a :class:`repro.exec.CheckpointJournal` of
completed subtree roots makes multi-hour certifications restartable:
``repro certify --checkpoint run.jsonl`` followed by ``--resume`` skips
every journaled root and merges its stored partial accumulators instead
of re-searching the subtree.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bisection.separator import separator_size
from repro.errors import ExecutionError, InvalidParameterError, SearchError
from repro.exec import CheckpointJournal, ExecTask, ResilientExecutor
from repro.load.formulas import separator_lower_bound
from repro.load.odr_loads import odr_edge_loads_add_delta
from repro.obs.console import progress as _progress_line
from repro.obs.tracer import current_tracer
from repro.placements.base import Placement
from repro.placements.symmetry import automorphism_group
from repro.torus.topology import Torus

__all__ = [
    "SearchCounters",
    "ExactSearchResult",
    "exact_global_minimum",
    "screen_initial_upper_bound",
    "MAX_EXACT_SEARCH",
]

#: refuse exact certification beyond this many candidate placements.
MAX_EXACT_SEARCH = 1_000_000_000

#: split depth for process-pool sharding (subtree roots at this prefix size).
_SPLIT_DEPTH = 3

#: minimum seconds between progress heartbeats on stderr.
_HEARTBEAT_SECONDS = 5.0

#: extra linear-coefficient families screened per torus when seeding the
#: bound-mode incumbent (beyond the paper's all-ones default).
_SCREEN_COEFFICIENT_VARIANTS = 4

_TOL = 1e-12


@dataclass(frozen=True)
class SearchCounters:
    """Work accounting for one exact search.

    Attributes
    ----------
    canonicity_checks:
        Candidate prefixes tested for orbit-canonicity.
    canonical_nodes:
        Prefixes that passed (tree nodes actually expanded or recorded).
    leaf_orbits:
        Canonical full-size representatives reached (orbits certified).
    variant_evaluations:
        Leaf :math:`E_{max}` readings — one per surviving point-group
        variant per leaf orbit.  The brute-force equivalent is
        :math:`C(k^d, n)` full placement evaluations.
    pair_updates:
        Ordered pairs pushed through the incremental load kernel.
    full_evaluations:
        From-scratch :math:`O(|P|^2)` placement evaluations performed by
        the engine: always 0 — loads are only ever grown incrementally.
    subtrees_pruned_emax:
        Subtrees cut because every variant's monotone partial
        :math:`E_{max}` exceeded the incumbent.
    subtrees_pruned_separator:
        Subtrees cut by the Lemma 1 separator bound.
    variants_dropped:
        Individual variants retired early (their partial :math:`E_{max}`
        alone exceeded the incumbent).
    """

    canonicity_checks: int
    canonical_nodes: int
    leaf_orbits: int
    variant_evaluations: int
    pair_updates: int
    full_evaluations: int
    subtrees_pruned_emax: int
    subtrees_pruned_separator: int
    variants_dropped: int


@dataclass(frozen=True)
class ExactSearchResult:
    """Outcome of a symmetry-reduced exact optimality sweep.

    Mirrors :class:`repro.placements.catalog.CatalogResult` so the two are
    directly cross-checkable.

    Attributes
    ----------
    minimum_emax:
        The exact global minimum ODR :math:`E_{max}` over all
        :math:`C(k^d, n)` placements.
    num_placements:
        Size of the certified search space, :math:`C(k^d, n)`.
    num_optimal:
        Exactly how many placements achieve the minimum (counted over all
        placements, not orbits).
    example_optimal:
        One placement achieving the minimum (its :math:`E_{max}` is
        independently re-checkable with a full evaluation).
    emax_histogram:
        ``{emax: count}`` over **all** placements — ``full`` mode only
        (``None`` in ``bound`` mode, where pruning truncates the tail).
    num_orbits:
        Total number of automorphism orbits of the space (``full`` mode
        only; ``None`` in ``bound`` mode where pruned orbits are not
        visited).
    mode:
        ``"full"`` or ``"bound"``.
    group_order, num_variants:
        Automorphism group order and per-representative ODR variants
        evaluated.
    counters:
        Work accounting (see :class:`SearchCounters`).
    """

    minimum_emax: float
    num_placements: int
    num_optimal: int
    example_optimal: Placement
    emax_histogram: dict[float, int] | None
    num_orbits: int | None
    mode: str
    group_order: int
    num_variants: int
    counters: SearchCounters


class _SearchContext:
    """Per-process search state: group tables, incumbent, accumulators."""

    def __init__(
        self,
        torus: Torus,
        size: int,
        mode: str,
        upper_bound: float,
        progress: bool = False,
    ):
        self.torus = torus
        self.size = size
        self.mode = mode
        self.progress = progress
        self._last_heartbeat = time.monotonic()
        self.group = automorphism_group(torus)
        self.coords = torus.all_node_coords()
        d = torus.d
        if torus.k % 2 == 1:
            # reflections preserve ODR paths for odd k: keep only the
            # reflection-free point rows, each standing in for 2^d images.
            rows = [
                i
                for i, (_perm, mask) in enumerate(self.group.point_descs)
                if mask == 0
            ]
            self.variant_weight = 1 << d
        else:
            rows = list(range(self.group.point_order))
            self.variant_weight = 1
        self.variant_rows = np.array(rows, dtype=np.int64)
        self.variant_ids = self.group.point_ids[self.variant_rows]
        self.num_variants = len(rows)
        # pruning incumbent: certified upper bound on the global minimum,
        # shared across all roots this context processes.
        self.incumbent = upper_bound
        # lifetime tallies survive take_partial() so heartbeats stay
        # cumulative across the many roots one worker processes.
        self.lifetime = dict.fromkeys(SearchCounters.__dataclass_fields__, 0)
        self._reset_partial()

    # ------------------------------------------------------- partial state

    def _reset_partial(self) -> None:
        self.histogram: dict[float, int] = {}
        self.best_value = math.inf
        self.best_image_ids: np.ndarray | None = None
        self.orbit_total = 0
        self.counters = dict.fromkeys(SearchCounters.__dataclass_fields__, 0)

    def take_partial(self) -> dict:
        """Detach and return the accumulated per-root results."""
        partial = {
            "best_value": self.best_value,
            "best_image_ids": self.best_image_ids,
            "histogram": self.histogram,
            "orbit_total": self.orbit_total,
            "counters": self.counters,
        }
        for key, value in self.counters.items():
            self.lifetime[key] += value
        self._reset_partial()
        return partial

    # ------------------------------------------------------------- search

    def run_root(self, root: tuple[int, ...]) -> dict:
        """Search the subtree under one canonical prefix; return partials."""
        alive = np.arange(self.num_variants)
        loads = np.zeros(
            (self.num_variants, self.torus.num_edges), dtype=np.float64
        )
        # rebuild the prefix's incremental loads (workers receive ids only)
        ids: tuple[int, ...] = ()
        stab = self.group.order
        for node in root:
            alive, loads, stab = self._grow(ids, alive, loads, node)
            ids += (node,)
            if alive.size == 0:
                return self.take_partial()
        self._descend(ids, alive, loads, stab, frontier=None)
        return self.take_partial()

    def collect_frontier(self, depth: int) -> tuple[list[tuple[int, ...]], dict]:
        """Canonical (pruned) prefixes at ``depth``, plus shallow partials."""
        frontier: list[tuple[int, ...]] = []
        alive = np.arange(self.num_variants)
        loads = np.zeros(
            (self.num_variants, self.torus.num_edges), dtype=np.float64
        )
        self._descend(
            (), alive, loads, self.group.order, frontier=(depth, frontier)
        )
        return frontier, self.take_partial()

    def _grow(
        self,
        ids: tuple[int, ...],
        alive: np.ndarray,
        loads: np.ndarray,
        node: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Extend every surviving variant's loads by one grown node.

        Returns the (possibly reduced) alive variant rows, their new load
        vectors, and the stabilizer order of the extended prefix.
        """
        child = np.array(ids + (node,), dtype=np.int64)
        canonical, stab = self.group.canonicity(child)
        if not canonical:  # pragma: no cover - roots are always canonical
            raise SearchError(f"prefix {tuple(child)} is not canonical")
        m = len(ids)
        prefix = np.array(ids, dtype=np.int64)
        new_rows = []
        for row in range(alive.size):
            variant = self.variant_ids[alive[row]]
            new_rows.append(
                odr_edge_loads_add_delta(
                    self.torus,
                    loads[row],
                    self.coords[variant[prefix]],
                    self.coords[variant[node]],
                )
            )
            self.counters["pair_updates"] += 2 * m
        new_loads = np.stack(new_rows) if new_rows else loads[:0]
        if self.mode == "bound" and math.isfinite(self.incumbent):
            emaxes = new_loads.max(axis=1) if new_loads.size else np.empty(0)
            keep = emaxes <= self.incumbent + _TOL
            dropped = int(np.count_nonzero(~keep))
            if dropped:
                self.counters["variants_dropped"] += dropped
                alive = alive[keep]
                new_loads = new_loads[keep]
        return alive, new_loads, stab

    def _descend(
        self,
        ids: tuple[int, ...],
        alive: np.ndarray,
        loads: np.ndarray,
        stab: int,
        frontier: tuple[int, list[tuple[int, ...]]] | None,
    ) -> None:
        m = len(ids)
        if m == self.size:
            self._leaf(ids, alive, loads, stab)
            return
        if frontier is not None and m == frontier[0]:
            frontier[1].append(ids)
            return
        num_nodes = self.torus.num_nodes
        lower = ids[-1] + 1 if ids else 0
        for node in range(lower, num_nodes - (self.size - m) + 1):
            child = np.array(ids + (node,), dtype=np.int64)
            self.counters["canonicity_checks"] += 1
            canonical, child_stab = self.group.canonicity(child)
            if not canonical:
                continue
            self.counters["canonical_nodes"] += 1
            grown = m + 1
            if (
                self.mode == "bound"
                and grown < self.size
                and math.isfinite(self.incumbent)
            ):
                # Lemma 1 on the prefix: every completion still exchanges
                # 2·m·(n-m) messages across the prefix's separator.
                bound = separator_lower_bound(
                    grown, self.size, separator_size(self.torus, child)
                )
                if bound > self.incumbent + _TOL:
                    self.counters["subtrees_pruned_separator"] += 1
                    continue
            child_alive, child_loads, _ = self._grow(ids, alive, loads, node)
            if child_alive.size == 0:
                self.counters["subtrees_pruned_emax"] += 1
                continue
            self._descend(
                ids + (node,), child_alive, child_loads, child_stab, frontier
            )

    def _leaf(
        self,
        ids: tuple[int, ...],
        alive: np.ndarray,
        loads: np.ndarray,
        stab: int,
    ) -> None:
        self.counters["leaf_orbits"] += 1
        self.counters["variant_evaluations"] += int(alive.size)
        if self.progress:
            self._heartbeat()
        self.orbit_total += self.group.order // stab
        emaxes = loads.max(axis=1)
        # exact per-placement weights: value v occurs
        # k^d · #{variants at v} · variant_weight / |Stab| times in the orbit
        per_value: dict[float, int] = {}
        for value in emaxes:
            value = float(value)
            per_value[value] = per_value.get(value, 0) + 1
        for value, count in per_value.items():
            weight, remainder = divmod(
                count * self.variant_weight * self.group.num_translations,
                stab,
            )
            if remainder:  # pragma: no cover - orbit-stabilizer invariant
                raise SearchError(
                    f"orbit weight {count}·{self.variant_weight}·"
                    f"{self.group.num_translations} not divisible by "
                    f"stabilizer {stab} at leaf {ids}"
                )
            self.histogram[value] = self.histogram.get(value, 0) + weight
        smallest = float(emaxes.min())
        if self.best_image_ids is None or smallest < self.best_value - _TOL:
            self.best_value = smallest
            winner = self.variant_ids[alive[int(np.argmin(emaxes))]]
            self.best_image_ids = np.sort(winner[np.array(ids)])
        if smallest < self.incumbent - _TOL:
            self.incumbent = smallest

    def _heartbeat(self) -> None:
        """Throttled progress line to stderr (cumulative tallies)."""
        now = time.monotonic()
        if now - self._last_heartbeat < _HEARTBEAT_SECONDS:
            return
        self._last_heartbeat = now

        def tally(key: str) -> int:
            return self.lifetime[key] + self.counters[key]

        pruned = tally("subtrees_pruned_emax") + tally(
            "subtrees_pruned_separator"
        )
        incumbent = (
            "inf" if math.isinf(self.incumbent) else f"{self.incumbent:g}"
        )
        _progress_line(
            f"exact-search T_{self.torus.k}^{self.torus.d} n={self.size}: "
            f"{tally('leaf_orbits')} leaf orbits, "
            f"{tally('canonical_nodes')} nodes expanded, "
            f"{pruned} subtrees pruned, incumbent E_max {incumbent}"
        )


# --------------------------------------------------------- multiprocessing

_WORKER_CTX: _SearchContext | None = None


def _init_worker(
    k: int,
    d: int,
    size: int,
    mode: str,
    upper_bound: float,
    progress: bool = False,
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = _SearchContext(
        Torus(k, d), size, mode, upper_bound, progress=progress
    )


def _run_subtree(root: tuple[int, ...]) -> dict:
    assert _WORKER_CTX is not None
    return _WORKER_CTX.run_root(tuple(root))


# ------------------------------------------------------------ checkpointing


def _root_task_id(root: tuple[int, ...]) -> str:
    """Stable journal id of one canonical subtree root."""
    return "root-" + ".".join(str(int(node)) for node in root)


def _encode_partial(partial: dict) -> dict[str, Any]:
    """Per-root partial accumulators → JSON-compatible journal record."""
    ids = partial["best_image_ids"]
    return {
        "best_value": partial["best_value"],
        "best_image_ids": None if ids is None else [int(x) for x in ids],
        "histogram": [
            [float(value), int(count)]
            for value, count in sorted(partial["histogram"].items())
        ],
        "orbit_total": int(partial["orbit_total"]),
        "counters": {key: int(val) for key, val in partial["counters"].items()},
    }


def _decode_partial(data: dict) -> dict:
    """Inverse of :func:`_encode_partial`."""
    ids = data["best_image_ids"]
    return {
        "best_value": float(data["best_value"]),
        "best_image_ids": None if ids is None else np.asarray(ids, dtype=np.int64),
        "histogram": {
            float(value): int(count) for value, count in data["histogram"]
        },
        "orbit_total": int(data["orbit_total"]),
        "counters": {
            str(key): int(val) for key, val in data["counters"].items()
        },
    }


# -------------------------------------------------- incumbent screening


def _candidate_leaf_placements(torus: Torus, size: int) -> list[Placement]:
    """Structured size-``size`` placements worth screening as incumbents.

    Only shapes the paper gives closed forms for: the linear families of
    Definition 10 (all ``k`` offsets of all-ones coefficients plus a few
    coefficient variants) when ``size == k^{d-1}``, and the 2-D diagonal
    / antidiagonal shifts (the same size on ``T_k^2``).  Empty when no
    structured family matches — the caller then searches unseeded.
    """
    k, d = torus.k, torus.d
    if size != k ** (d - 1) or size < 2:
        return []
    from repro.placements.diagonal import (
        antidiagonal_placement_2d,
        shifted_diagonal_placement,
    )
    from repro.placements.linear import linear_placement

    coefficient_sets: list[list[int]] = [[1] * d]
    units = [c for c in range(2, k) if math.gcd(c, k) == 1][
        : _SCREEN_COEFFICIENT_VARIANTS
    ]
    coefficient_sets.extend([1] * (d - 1) + [c] for c in units)
    candidates = [
        linear_placement(torus, coefficients=coeffs, offset=offset)
        for coeffs in coefficient_sets
        for offset in range(k)
    ]
    if d == 2:
        candidates.extend(shifted_diagonal_placement(torus, s) for s in range(k))
        candidates.extend(antidiagonal_placement_2d(torus, s) for s in range(k))
    return candidates


def screen_initial_upper_bound(
    torus: Torus,
    size: int,
    batch_size: int | None = None,
) -> tuple[float, Placement] | None:
    """Batched incumbent seed for ``bound``-mode certification.

    Evaluates every structured candidate from
    :func:`_candidate_leaf_placements` in one
    :meth:`~repro.load.engine.LoadEngine.emax_many` block (shared
    spectral plan, one stacked transform per coset family) and returns
    the best ``(E_max, placement)`` — achievable by construction, so
    seeding :func:`exact_global_minimum` with it keeps the search exact
    while pruning at least as hard as the classic linear seed.  Returns
    ``None`` when no structured family matches ``size``.
    """
    candidates = _candidate_leaf_placements(torus, size)
    if not candidates:
        return None
    from repro.load.engine import LoadEngine
    from repro.routing.odr import OrderedDimensionalRouting

    emaxes = LoadEngine("fft").emax_many(
        candidates,
        OrderedDimensionalRouting(torus.d),
        batch_size=batch_size,
    )
    best = int(np.argmin(emaxes))
    return float(emaxes[best]), candidates[best]


# ----------------------------------------------------------------- driver


def _merge_partials(partials, histogram: dict[float, int], counters: dict):
    best = math.inf
    best_ids: np.ndarray | None = None
    orbit_total = 0
    for partial in partials:
        for value, count in partial["histogram"].items():
            histogram[value] = histogram.get(value, 0) + count
        for key, count in partial["counters"].items():
            counters[key] += count
        orbit_total += partial["orbit_total"]
        if partial["best_image_ids"] is not None and (
            best_ids is None or partial["best_value"] < best - _TOL
        ):
            best = partial["best_value"]
            best_ids = partial["best_image_ids"]
    return best, best_ids, orbit_total


def exact_global_minimum(
    torus: Torus,
    size: int,
    mode: str = "bound",
    processes: int | None = None,
    initial_upper_bound: float | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    progress: bool | None = None,
) -> ExactSearchResult:
    """Exactly certify the minimum ODR :math:`E_{max}` over all placements.

    Parameters
    ----------
    torus, size:
        The certified space: all :math:`C(k^d, size)` placements.
    mode:
        ``"bound"`` (default) enables branch-and-bound pruning — exact
        minimum, ``num_optimal`` and witness, no histogram.  ``"full"``
        disables pruning and additionally returns the exact
        :math:`E_{max}` histogram over all placements and the orbit
        count (cross-checkable against
        :func:`repro.placements.catalog.global_minimum_emax`).
    processes:
        ``None`` (default) searches serially; an integer > 1 shards
        canonical subtree roots over a process pool.
    initial_upper_bound:
        Optional incumbent seed for ``bound`` mode — must be an
        :math:`E_{max}` actually achieved by some size-``size`` placement
        (e.g. the linear placement's).  A tighter seed prunes more;
        an unachievable seed below the true minimum raises
        :class:`~repro.errors.SearchError`.  When ``None`` the seed is
        derived automatically via :func:`screen_initial_upper_bound`,
        which batch-evaluates the structured candidate families (linear
        cosets, 2-D diagonals) in one ``emax_many`` block — achievable
        by construction, so the search stays exact.  Ignored in ``full``
        mode.
    checkpoint:
        Optional path to a :class:`repro.exec.CheckpointJournal` (JSONL).
        Completed subtree roots and their partial accumulators are
        persisted as they finish; giving a checkpoint forces the
        subtree-root decomposition even for a serial search so the
        journal has restartable units.
    resume:
        Resume from an existing ``checkpoint`` journal: journaled roots
        are merged from their stored partials without re-searching their
        subtrees.  The journal's fingerprint (torus, size, mode,
        incumbent seed) must match this call.
    progress:
        Emit throttled heartbeat lines to stderr while searching (leaf
        orbits, nodes expanded, prunes, incumbent).  ``None`` (default)
        enables heartbeats exactly when the ambient tracer is enabled.

    Raises
    ------
    InvalidParameterError
        For an invalid size/mode, a search space beyond
        :data:`MAX_EXACT_SEARCH`, or ``resume`` without ``checkpoint``.
    SearchError
        If the orbit accounting fails its :math:`C(k^d, n)` cross-check
        (``full`` mode), no placement beats ``initial_upper_bound``, or
        the resilient fan-out itself fails beyond recovery.
    """
    if mode not in ("full", "bound"):
        raise InvalidParameterError(
            f"mode must be 'full' or 'bound', got {mode!r}"
        )
    if not 1 <= size <= torus.num_nodes:
        raise InvalidParameterError(
            f"size must satisfy 1 <= size <= {torus.num_nodes}, got {size}"
        )
    space = math.comb(torus.num_nodes, size)
    if space > MAX_EXACT_SEARCH:
        raise InvalidParameterError(
            f"C({torus.num_nodes}, {size}) = {space} placements exceeds the "
            f"exact-search limit {MAX_EXACT_SEARCH}"
        )
    if resume and checkpoint is None:
        raise InvalidParameterError("resume=True requires a checkpoint path")
    if mode == "bound" and initial_upper_bound is None:
        screened = screen_initial_upper_bound(torus, size)
        upper = screened[0] if screened is not None else math.inf
    elif mode == "bound":
        upper = float(initial_upper_bound)
    else:
        upper = math.inf

    tracer = current_tracer()
    if progress is None:
        progress = bool(tracer.enabled)
    context = _SearchContext(torus, size, mode, upper, progress=progress)
    histogram: dict[float, int] = {}
    counters = dict.fromkeys(SearchCounters.__dataclass_fields__, 0)

    serial = processes is None or processes <= 1
    with tracer.span(
        "search.certify",
        k=torus.k,
        d=torus.d,
        size=size,
        mode=mode,
        space=space,
    ):
        if (serial and checkpoint is None) or size < 2:
            partials = [context.run_root(())]
        else:
            depth = min(_SPLIT_DEPTH, size - 1)
            frontier, shallow = context.collect_frontier(depth)
            partials = [shallow]
            if frontier:
                workers = 1 if serial else min(processes, len(frontier))
                journal = None
                if checkpoint is not None:
                    journal = CheckpointJournal(
                        checkpoint,
                        fingerprint={
                            "workload": "exact-search",
                            "k": torus.k,
                            "d": torus.d,
                            "size": size,
                            "mode": mode,
                            "upper": upper,
                            "split_depth": depth,
                        },
                        resume=resume,
                        encode=_encode_partial,
                        decode=_decode_partial,
                    )
                tasks = [
                    ExecTask(_root_task_id(root), root) for root in frontier
                ]
                executor = ResilientExecutor(
                    _run_subtree,
                    jobs=workers,
                    initializer=_init_worker,
                    initargs=(torus.k, torus.d, size, mode, upper, progress),
                    journal=journal,
                    label=f"exact-search[T_{torus.k}^{torus.d} n={size} {mode}]",
                )
                try:
                    outcome = executor.run(tasks)
                except ExecutionError as err:
                    raise SearchError(
                        f"exact search fan-out failed: {err} (backend "
                        f"'exact_search', {len(frontier)} subtree roots, "
                        f"{workers} workers)"
                    ) from err
                finally:
                    if journal is not None:
                        journal.close()
                partials.extend(outcome.in_task_order(tasks))

        best, best_ids, orbit_total = _merge_partials(
            partials, histogram, counters
        )

    if tracer.enabled:
        # one literal call per counter (not a dynamic f-string name) so the
        # exported metric namespace is statically enumerable — RL017.
        metrics = tracer.metrics
        metrics.counter("search.canonicity_checks").add(
            counters["canonicity_checks"]
        )
        metrics.counter("search.canonical_nodes").add(
            counters["canonical_nodes"]
        )
        metrics.counter("search.leaf_orbits").add(counters["leaf_orbits"])
        metrics.counter("search.variant_evaluations").add(
            counters["variant_evaluations"]
        )
        metrics.counter("search.pair_updates").add(counters["pair_updates"])
        metrics.counter("search.full_evaluations").add(
            counters["full_evaluations"]
        )
        metrics.counter("search.subtrees_pruned_emax").add(
            counters["subtrees_pruned_emax"]
        )
        metrics.counter("search.subtrees_pruned_separator").add(
            counters["subtrees_pruned_separator"]
        )
        metrics.counter("search.variants_dropped").add(
            counters["variants_dropped"]
        )
        metrics.counter("search.canonical_rejections").add(
            counters["canonicity_checks"] - counters["canonical_nodes"]
        )

    if best_ids is None:
        raise SearchError(
            f"no placement achieved E_max <= {upper:g}; "
            "initial_upper_bound must be achievable (at or above the true "
            "minimum)"
        )
    if mode == "full" and sum(histogram.values()) != space:
        raise SearchError(
            f"orbit accounting mismatch: histogram covers "
            f"{sum(histogram.values())} placements, expected {space}"
        )
    num_optimal = sum(
        count
        for value, count in histogram.items()
        if abs(value - best) <= _TOL
    )
    return ExactSearchResult(
        minimum_emax=best,
        num_placements=space,
        num_optimal=num_optimal,
        example_optimal=Placement(torus, best_ids, name="exact-optimal"),
        emax_histogram=histogram if mode == "full" else None,
        num_orbits=counters["leaf_orbits"] if mode == "full" else None,
        mode=mode,
        group_order=context.group.order,
        num_variants=context.num_variants,
        counters=SearchCounters(**counters),
    )

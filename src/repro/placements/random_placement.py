"""Random placements — stochastic baselines for the experiments.

Two flavours:

* :func:`random_placement` — a uniformly random node subset of a given
  size (in general *not* uniform in the paper's per-subtorus sense);
* :func:`random_uniform_placement` — a random placement that *is* uniform
  along one chosen dimension: each of the ``k`` principal subtori along
  that dimension receives the same number of processors at random
  positions.  This realizes the paper's remark after Theorem 1 that
  uniformity along a *single* dimension already suffices for the
  :math:`4k^{d-1}` bisection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement
from repro.torus.subtorus import principal_subtorus_nodes
from repro.torus.topology import Torus
from repro.util.rng import resolve_rng

__all__ = ["random_placement", "random_uniform_placement"]


def random_placement(
    torus: Torus, size: int, seed=None, name: str | None = None
) -> Placement:
    """A uniformly random subset of ``size`` torus nodes."""
    if not 1 <= size <= torus.num_nodes:
        raise InvalidParameterError(
            f"size must satisfy 1 <= size <= {torus.num_nodes}, got {size}"
        )
    rng = resolve_rng(seed)
    ids = rng.choice(torus.num_nodes, size=size, replace=False)
    return Placement(torus, ids, name=name or f"random(size={size})")


def random_uniform_placement(
    torus: Torus,
    per_layer: int,
    dim: int = 0,
    seed=None,
    name: str | None = None,
) -> Placement:
    """A random placement uniform along ``dim``: ``per_layer`` processors in
    each of the ``k`` principal subtori along that dimension.

    Total size is ``per_layer * k``.
    """
    if not 0 <= dim < torus.d:
        raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
    layer_size = torus.k ** (torus.d - 1)
    if not 1 <= per_layer <= layer_size:
        raise InvalidParameterError(
            f"per_layer must satisfy 1 <= per_layer <= {layer_size}, got {per_layer}"
        )
    rng = resolve_rng(seed)
    chunks = []
    for value in range(torus.k):
        layer = principal_subtorus_nodes(torus, dim, value)
        chunks.append(rng.choice(layer, size=per_layer, replace=False))
    ids = np.concatenate(chunks)
    return Placement(
        torus,
        ids,
        name=name or f"random-uniform(per_layer={per_layer}, dim={dim})",
    )

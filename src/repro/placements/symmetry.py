"""Torus automorphisms and their action on placements.

:math:`T_k^d` has a rich automorphism group: coordinate **translations**
(:math:`\\mathbb{Z}_k^d`), coordinate **permutations** (:math:`S_d`), and
per-coordinate **reflections** (:math:`x_i \\mapsto -x_i`).  Every
automorphism preserves Lee distance, hence maps minimal paths to minimal
paths — so the complete-exchange load profile of a placement is invariant
under all of them (the structural fact behind EXP-14's measurements: all
linear-placement offsets are translates of each other, and coefficient
negations are reflections).

This module implements the group action and an exact isomorphism test for
small tori (canonical form under the full group, or the translation
subgroup only).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement
from repro.torus.coords import coords_to_ids

__all__ = [
    "translate_placement",
    "permute_dimensions",
    "reflect_dimensions",
    "canonical_form",
    "are_equivalent_placements",
]


def translate_placement(placement: Placement, offset) -> Placement:
    """The placement shifted by ``offset`` (a length-``d`` vector, mod k)."""
    torus = placement.torus
    offset = np.asarray(offset, dtype=np.int64)
    if offset.shape != (torus.d,):
        raise InvalidParameterError(
            f"offset must have shape ({torus.d},), got {offset.shape}"
        )
    coords = np.mod(placement.coords() + offset, torus.k)
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}+{offset.tolist()}",
    )


def permute_dimensions(placement: Placement, perm) -> Placement:
    """The placement with coordinates reordered by permutation ``perm``.

    ``perm[i]`` is the source dimension feeding new dimension ``i``.
    """
    torus = placement.torus
    perm = tuple(int(i) for i in perm)
    if sorted(perm) != list(range(torus.d)):
        raise InvalidParameterError(
            f"perm must be a permutation of range({torus.d}), got {perm}"
        )
    coords = placement.coords()[:, perm]
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}|perm{perm}",
    )


def reflect_dimensions(placement: Placement, dims) -> Placement:
    """The placement with coordinates negated (mod k) in the given dims."""
    torus = placement.torus
    coords = placement.coords().copy()
    for dim in dims:
        if not 0 <= dim < torus.d:
            raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
        coords[:, dim] = np.mod(-coords[:, dim], torus.k)
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}|reflect{sorted(dims)}",
    )


def _id_key(placement: Placement) -> bytes:
    return placement.node_ids.tobytes()


def canonical_form(
    placement: Placement, translations_only: bool = False
) -> Placement:
    """The lexicographically smallest image under the automorphism group.

    ``translations_only=True`` restricts to the :math:`k^d` translations —
    enough for comparing linear-placement offsets and much cheaper.  The
    full group enumerates :math:`k^d \\cdot d! \\cdot 2^d` images; use only
    on small tori.
    """
    torus = placement.torus
    best = placement
    best_key = _id_key(placement)

    if translations_only:
        transforms = (
            translate_placement(placement, offset)
            for offset in itertools.product(range(torus.k), repeat=torus.d)
        )
    else:
        def _all_images():
            for perm in itertools.permutations(range(torus.d)):
                permuted = permute_dimensions(placement, perm)
                for refl_mask in range(1 << torus.d):
                    dims = [i for i in range(torus.d) if refl_mask >> i & 1]
                    reflected = reflect_dimensions(permuted, dims)
                    for offset in itertools.product(
                        range(torus.k), repeat=torus.d
                    ):
                        yield translate_placement(reflected, offset)

        transforms = _all_images()

    for image in transforms:
        key = _id_key(image)
        if key < best_key:
            best, best_key = image, key
    return Placement(torus, best.node_ids, name=f"canon({placement.name})")


def are_equivalent_placements(
    a: Placement, b: Placement, translations_only: bool = False
) -> bool:
    """Whether some torus automorphism maps ``a`` onto ``b``.

    Load profiles (and therefore :math:`E_{max}` under any
    automorphism-covariant routing family) agree for equivalent placements.
    """
    if a.torus != b.torus or len(a) != len(b):
        return False
    return _id_key(canonical_form(a, translations_only)) == _id_key(
        canonical_form(b, translations_only)
    )

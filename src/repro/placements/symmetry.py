"""Torus automorphisms and their action on placements.

:math:`T_k^d` has a rich automorphism group: coordinate **translations**
(:math:`\\mathbb{Z}_k^d`), coordinate **permutations** (:math:`S_d`), and
per-coordinate **reflections** (:math:`x_i \\mapsto -x_i`).  Every
automorphism preserves Lee distance, hence maps minimal paths to minimal
paths — so the complete-exchange load profile of a placement is invariant
under all of them (the structural fact behind EXP-14's measurements: all
linear-placement offsets are translates of each other, and coefficient
negations are reflections).

This module implements the group action and an exact isomorphism test for
small tori (canonical form under the full group, or the translation
subgroup only).  :class:`AutomorphismGroup` is the vectorized engine
behind both: the whole group acts on a single ``(n, d)`` coordinate
matrix as array ops, so canonicalizing a placement never materializes a
:class:`Placement` per group element, and orbit sizes come exactly from
stabilizer counting (orbit–stabilizer theorem).

One caution for consumers: only *translations* leave the restricted-ODR
load profile invariant.  Dimension permutations re-order the correction
sequence and reflections flip the even-``k`` tie-break, so :math:`E_{max}`
can differ between placements of the same full-group orbit (see
:mod:`repro.placements.exact_search` for the exact accounting).
"""

from __future__ import annotations

import functools
import itertools

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement
from repro.torus.coords import all_coords, coords_to_ids
from repro.torus.topology import Torus

__all__ = [
    "translate_placement",
    "permute_dimensions",
    "reflect_dimensions",
    "canonical_form",
    "are_equivalent_placements",
    "AutomorphismGroup",
    "automorphism_group",
]


def translate_placement(placement: Placement, offset) -> Placement:
    """The placement shifted by ``offset`` (a length-``d`` vector, mod k)."""
    torus = placement.torus
    offset = np.asarray(offset, dtype=np.int64)
    if offset.shape != (torus.d,):
        raise InvalidParameterError(
            f"offset must have shape ({torus.d},), got {offset.shape}"
        )
    coords = np.mod(placement.coords() + offset, torus.k)
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}+{offset.tolist()}",
    )


def permute_dimensions(placement: Placement, perm) -> Placement:
    """The placement with coordinates reordered by permutation ``perm``.

    ``perm[i]`` is the source dimension feeding new dimension ``i``.
    """
    torus = placement.torus
    perm = tuple(int(i) for i in perm)
    if sorted(perm) != list(range(torus.d)):
        raise InvalidParameterError(
            f"perm must be a permutation of range({torus.d}), got {perm}"
        )
    coords = placement.coords()[:, perm]
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}|perm{perm}",
    )


def reflect_dimensions(placement: Placement, dims) -> Placement:
    """The placement with coordinates negated (mod k) in the given dims."""
    torus = placement.torus
    coords = placement.coords().copy()
    for dim in dims:
        if not 0 <= dim < torus.d:
            raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
        coords[:, dim] = np.mod(-coords[:, dim], torus.k)
    return Placement(
        torus,
        coords_to_ids(coords, torus.k, torus.d),
        name=f"{placement.name}|reflect{sorted(dims)}",
    )


def _id_key(placement: Placement) -> bytes:
    return placement.node_ids.tobytes()


def _lexmin_row(rows: np.ndarray) -> np.ndarray:
    """The lexicographically smallest row of a 2-D int array.

    Works by column-wise filtering (keep only the rows achieving the
    minimum in each successive column), so no packing into scalar keys is
    needed and arbitrarily wide rows cannot overflow.
    """
    alive = rows
    for col in range(rows.shape[1]):
        values = alive[:, col]
        alive = alive[values == values.min()]
        if alive.shape[0] == 1:
            break
    return alive[0]


class AutomorphismGroup:
    """The automorphism group of :math:`T_k^d` acting on node-id sets.

    The group is the semidirect product of the :math:`k^d` translations
    with the *point group* of :math:`d!` dimension permutations and
    :math:`2^d` per-dimension reflections (order
    :math:`k^d \\cdot d! \\cdot 2^d`; for ``k == 2`` some elements coincide
    as node permutations, which the orbit–stabilizer accounting absorbs).

    Every image is computed on coordinate *matrices*: a point-group table
    of shape ``(d!·2^d, k^d, d)`` is built once, and each query broadcasts
    the selected rows against all translation offsets — no per-element
    Python objects.

    Point-group elements are applied as ``reflect(permute(x))`` and are
    indexed by :attr:`point_descs` ``(perm, reflection_mask)`` pairs;
    translations compose on the outside.
    """

    def __init__(self, torus: Torus):
        self.torus = torus
        k, d = torus.k, torus.d
        base = all_coords(k, d)  # (k^d, d); row i == coordinate of node i
        self._strides = np.array(
            [k ** (d - 1 - i) for i in range(d)], dtype=np.int64
        )
        tables: list[np.ndarray] = []
        descs: list[tuple[tuple[int, ...], int]] = []
        for perm in itertools.permutations(range(d)):
            permuted = base[:, perm]
            for mask in range(1 << d):
                image = permuted.copy()
                for dim in range(d):
                    if mask >> dim & 1:
                        image[:, dim] = np.mod(-image[:, dim], k)
                tables.append(image)
                descs.append((perm, mask))
        #: (point_order, k^d, d) — coordinates of every node's image under
        #: each point-group element.
        self.point_coords: np.ndarray = np.stack(tables)
        #: (point_order, k^d) — same images as dense node ids.
        self.point_ids: np.ndarray = self.point_coords @ self._strides
        #: ``(perm, reflection_mask)`` describing each point-group row.
        self.point_descs: tuple[tuple[tuple[int, ...], int], ...] = tuple(descs)
        self.point_order: int = len(descs)
        self.num_translations: int = k**d
        #: full group order :math:`k^d \\cdot d! \\cdot 2^d`.
        self.order: int = self.point_order * self.num_translations
        self._offsets = base  # the k^d translation vectors

    # ----------------------------------------------------------- images

    def sorted_images(
        self, node_ids, translations_only: bool = False
    ) -> np.ndarray:
        """Sorted image id rows of a node set under every group element.

        Returns an ``(order, m)`` array (``(k^d, m)`` when
        ``translations_only``); each row is one image of the set, sorted
        ascending so rows compare as canonical set keys.
        """
        torus = self.torus
        ids = np.asarray(node_ids, dtype=np.int64)
        if translations_only:
            selected = torus.coords(ids)[None, :, :]  # (1, m, d)
        else:
            selected = self.point_coords[:, ids, :]  # (point_order, m, d)
        shifted = np.mod(
            selected[:, None, :, :] + self._offsets[None, :, None, :],
            torus.k,
        )  # (rows, k^d, m, d)
        images = shifted @ self._strides
        return np.sort(images.reshape(-1, ids.size), axis=1)

    def canonical_ids(
        self, node_ids, translations_only: bool = False
    ) -> np.ndarray:
        """The lexicographically smallest sorted image of the node set."""
        return _lexmin_row(self.sorted_images(node_ids, translations_only))

    def canonicity(self, node_ids) -> tuple[bool, int]:
        """Whether the sorted node set is its orbit's canonical (lex-min)
        representative, and the order of its stabilizer.

        Returns ``(False, 0)`` as soon as a strictly smaller image is
        found; otherwise ``(True, |Stab|)`` where ``|Stab|`` counts the
        group elements (with multiplicity in the ``k == 2`` degenerate
        case) that fix the set, so ``order // |Stab|`` is the exact orbit
        size.
        """
        ids = np.sort(np.asarray(node_ids, dtype=np.int64))
        alive = self.sorted_images(ids)
        for col in range(ids.size):
            values = alive[:, col]
            smallest = values.min()
            if smallest < ids[col]:
                return False, 0
            alive = alive[values == smallest]
        return True, int(alive.shape[0])

    def orbit_size(self, node_ids) -> int:
        """Exact orbit size of the node set, via orbit–stabilizer."""
        ids = np.sort(np.asarray(node_ids, dtype=np.int64))
        images = self.sorted_images(ids)
        stabilizer = int(np.count_nonzero(np.all(images == ids, axis=1)))
        return self.order // stabilizer


@functools.lru_cache(maxsize=16)
def automorphism_group(torus: Torus) -> AutomorphismGroup:
    """The (cached) :class:`AutomorphismGroup` of ``torus``."""
    return AutomorphismGroup(torus)


def canonical_form(
    placement: Placement, translations_only: bool = False
) -> Placement:
    """The lexicographically smallest image under the automorphism group.

    ``translations_only=True`` restricts to the :math:`k^d` translations —
    enough for comparing linear-placement offsets and much cheaper.  The
    full group covers all :math:`k^d \\cdot d! \\cdot 2^d` images; both
    paths act on a single coordinate matrix (no per-element
    :class:`Placement` allocation), so canonicalization is one vectorized
    pass even for the full group.
    """
    group = automorphism_group(placement.torus)
    ids = group.canonical_ids(
        placement.node_ids, translations_only=translations_only
    )
    return Placement(placement.torus, ids, name=f"canon({placement.name})")


def are_equivalent_placements(
    a: Placement, b: Placement, translations_only: bool = False
) -> bool:
    """Whether some torus automorphism maps ``a`` onto ``b``.

    Load profiles (and therefore :math:`E_{max}` under any
    automorphism-covariant routing family) agree for equivalent placements.
    """
    if a.torus != b.torus or len(a) != len(b):
        return False
    return _id_key(canonical_form(a, translations_only)) == _id_key(
        canonical_form(b, translations_only)
    )

"""Exhaustive enumeration of placements — global optimality certificates.

EXP-19's local search suggests linear placements sit on the load floor;
this module *proves* it for small tori by brute force: enumerate every
``C(k^d, n)`` placement of ``n`` processors, compute each exact ODR
:math:`E_{max}`, and return the global minimum plus (a sample of) its
achievers.  On :math:`T_4^2` that is 1 820 placements — a second of work —
turning "no counterexample found" into "no counterexample exists".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.torus.topology import Torus

__all__ = ["CatalogResult", "enumerate_placements", "global_minimum_emax"]

#: refuse exhaustive enumeration beyond this many candidate placements.
MAX_CATALOG = 2_000_000


@dataclass(frozen=True)
class CatalogResult:
    """Outcome of an exhaustive placement sweep.

    Attributes
    ----------
    minimum_emax:
        The global minimum :math:`E_{max}` over all placements of the
        requested size.
    num_placements:
        How many placements were evaluated.
    num_optimal:
        How many achieve the minimum.
    example_optimal:
        One placement achieving it.
    emax_histogram:
        ``{emax_value: count}`` over all evaluated placements.
    """

    minimum_emax: float
    num_placements: int
    num_optimal: int
    example_optimal: Placement
    emax_histogram: dict[float, int]


def enumerate_placements(torus: Torus, size: int):
    """Yield every placement of ``size`` processors on ``torus``."""
    if not 1 <= size <= torus.num_nodes:
        raise InvalidParameterError(
            f"size must satisfy 1 <= size <= {torus.num_nodes}, got {size}"
        )
    for ids in itertools.combinations(range(torus.num_nodes), size):
        yield Placement(torus, list(ids), name="catalog")


def _evaluate_chunk(args) -> tuple[float, tuple[int, ...], int, dict[float, int]]:
    """Worker: evaluate a chunk of id-tuples; returns (min, argmin ids,
    count at min, emax histogram).  Top-level so it pickles for
    multiprocessing."""
    k, d, chunk = args
    torus = Torus(k, d)
    best: float | None = None
    best_ids: tuple[int, ...] | None = None
    num_optimal = 0
    histogram: dict[float, int] = {}
    for ids in chunk:
        emax = float(
            odr_edge_loads(  # repro: noqa(RL008) - this IS the brute-force oracle
                Placement(torus, list(ids))
            ).max()
        )
        histogram[emax] = histogram.get(emax, 0) + 1
        if best is None or emax < best - 1e-12:
            best, best_ids, num_optimal = emax, ids, 1
        elif abs(emax - best) <= 1e-12:
            num_optimal += 1
            if ids < best_ids:  # type: ignore[operator]
                best_ids = ids
    return best, best_ids, num_optimal, histogram


def global_minimum_emax(
    torus: Torus, size: int, processes: int | None = None
) -> CatalogResult:
    """Exhaustively find the minimum ODR :math:`E_{max}` over all placements.

    Parameters
    ----------
    torus, size:
        The search space: all ``C(k^d, size)`` placements.
    processes:
        ``None`` (default) evaluates serially; an integer > 1 fans the
        sweep out over a :mod:`multiprocessing` pool (each worker gets a
        contiguous chunk of the combination stream).

    Raises
    ------
    InvalidParameterError
        If the candidate count exceeds :data:`MAX_CATALOG`.
    """
    import math

    count = math.comb(torus.num_nodes, size)
    if count > MAX_CATALOG:
        raise InvalidParameterError(
            f"C({torus.num_nodes}, {size}) = {count} placements exceeds the "
            f"exhaustive limit {MAX_CATALOG}"
        )
    all_ids = itertools.combinations(range(torus.num_nodes), size)

    if processes is None or processes <= 1:
        # the combination stream is consumed lazily — never materialized
        partials = iter([_evaluate_chunk((torus.k, torus.d, all_ids))])
    else:
        import multiprocessing as mp

        chunk_size = max(1, count // (processes * 4))
        # a generator of chunk args: only ~one chunk per in-flight worker
        # task is ever resident, instead of the whole candidate stream
        chunk_args = (
            (torus.k, torus.d, chunk)
            for chunk in iter(
                lambda: list(itertools.islice(all_ids, chunk_size)), []
            )
        )
        pool = mp.Pool(processes)
        try:
            partials = list(pool.imap_unordered(_evaluate_chunk, chunk_args))
        finally:
            pool.close()
            pool.join()

    best: float | None = None
    best_ids: tuple[int, ...] | None = None
    num_optimal = 0
    histogram: dict[float, int] = {}
    for p_best, p_ids, p_count, p_hist in partials:
        for value, n in p_hist.items():
            histogram[value] = histogram.get(value, 0) + n
        if p_best is None:
            continue
        if best is None or p_best < best - 1e-12:
            best, best_ids, num_optimal = p_best, p_ids, p_count
        elif abs(p_best - best) <= 1e-12:
            num_optimal += p_count
            # deterministic witness: lex-smallest among equal minima, so
            # the unordered parallel merge matches the serial sweep exactly
            if p_ids < best_ids:  # type: ignore[operator]
                best_ids = p_ids
    return CatalogResult(
        minimum_emax=float(best),
        num_placements=count,
        num_optimal=num_optimal,
        example_optimal=Placement(torus, list(best_ids), name="catalog-optimal"),
        emax_histogram=histogram,
    )

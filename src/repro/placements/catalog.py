"""Exhaustive enumeration of placements — global optimality certificates.

EXP-19's local search suggests linear placements sit on the load floor;
this module *proves* it for small tori by brute force: enumerate every
``C(k^d, n)`` placement of ``n`` processors, compute each exact ODR
:math:`E_{max}`, and return the global minimum plus (a sample of) its
achievers.  On :math:`T_4^2` that is 1 820 placements — a second of work —
turning "no counterexample found" into "no counterexample exists".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutionError, InvalidParameterError, SearchError
from repro.exec import CheckpointJournal, ExecTask, ResilientExecutor
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.torus.topology import Torus
from repro.util.itertools_ext import combinations_from

__all__ = ["CatalogResult", "enumerate_placements", "global_minimum_emax"]

#: refuse exhaustive enumeration beyond this many candidate placements.
MAX_CATALOG = 2_000_000


@dataclass(frozen=True)
class CatalogResult:
    """Outcome of an exhaustive placement sweep.

    Attributes
    ----------
    minimum_emax:
        The global minimum :math:`E_{max}` over all placements of the
        requested size.
    num_placements:
        How many placements were evaluated.
    num_optimal:
        How many achieve the minimum.
    example_optimal:
        One placement achieving it.
    emax_histogram:
        ``{emax_value: count}`` over all evaluated placements.
    """

    minimum_emax: float
    num_placements: int
    num_optimal: int
    example_optimal: Placement
    emax_histogram: dict[float, int]


def enumerate_placements(torus: Torus, size: int):
    """Yield every placement of ``size`` processors on ``torus``."""
    if not 1 <= size <= torus.num_nodes:
        raise InvalidParameterError(
            f"size must satisfy 1 <= size <= {torus.num_nodes}, got {size}"
        )
    for ids in itertools.combinations(range(torus.num_nodes), size):
        yield Placement(torus, list(ids), name="catalog")


def _evaluate_chunk(args) -> tuple[float, tuple[int, ...], int, dict[float, int]]:
    """Reference worker: evaluate a chunk of id-tuples one placement at a
    time; returns (min, argmin ids, count at min, emax histogram).  This
    is the per-placement brute-force oracle the batched path is
    cross-checked against; top-level so it pickles for multiprocessing."""
    k, d, chunk = args
    torus = Torus(k, d)
    best: float | None = None
    best_ids: tuple[int, ...] | None = None
    num_optimal = 0
    histogram: dict[float, int] = {}
    for ids in chunk:
        emax = float(
            odr_edge_loads(  # repro: noqa(RL008,RL016) - this IS the brute-force oracle
                Placement(torus, list(ids))
            ).max()
        )
        histogram[emax] = histogram.get(emax, 0) + 1
        if best is None or emax < best - 1e-12:
            best, best_ids, num_optimal = emax, ids, 1
        elif abs(emax - best) <= 1e-12:
            num_optimal += 1
            if ids < best_ids:  # type: ignore[operator]
                best_ids = ids
    return best, best_ids, num_optimal, histogram


def _evaluate_chunk_batched(
    args,
) -> tuple[float, tuple[int, ...], int, dict[float, int]]:
    """Batched worker: same contract as :func:`_evaluate_chunk`, but the
    id-tuples are evaluated in placement blocks through the engine's
    ``emax_many`` — one stacked spectral transform per block against the
    plan-cached usage spectrum, bit-identical to the oracle after the
    integer snap-back."""
    k, d, chunk, batch_size = args
    # deferred: repro.load's package init imports this module via
    # repro.placements before the engine subpackage finishes loading.
    from repro.load.engine import LoadEngine
    from repro.load.plancache import default_batch_size
    from repro.routing.odr import OrderedDimensionalRouting

    torus = Torus(k, d)
    engine = LoadEngine("fft")
    routing = OrderedDimensionalRouting(d)
    block = int(batch_size) if batch_size else default_batch_size()
    best: float | None = None
    best_ids: tuple[int, ...] | None = None
    num_optimal = 0
    histogram: dict[float, int] = {}
    stream = iter(chunk)
    while True:
        ids_block = list(itertools.islice(stream, block))
        if not ids_block:
            break
        placements = [Placement(torus, list(ids)) for ids in ids_block]
        emaxes = engine.emax_many(placements, routing, batch_size=block)
        for ids, value in zip(ids_block, emaxes):
            emax = float(value)
            histogram[emax] = histogram.get(emax, 0) + 1
            if best is None or emax < best - 1e-12:
                best, best_ids, num_optimal = emax, ids, 1
            elif abs(emax - best) <= 1e-12:
                num_optimal += 1
                if ids < best_ids:  # type: ignore[operator]
                    best_ids = ids
    return best, best_ids, num_optimal, histogram


# ----------------------------------------------------- restartable sharding
#
# Workers receive (start_combination, count) spans, not the combinations
# themselves: `combinations_from` regenerates the slice in-place, so a
# span is a few bytes over the pipe, idempotent to re-run after a worker
# crash, and small enough to journal for checkpoint/resume.

_SPAN_CONFIG: tuple[int, int, int | None] | None = None


def _init_span_worker(k: int, d: int, batch_size: int | None = None) -> None:
    global _SPAN_CONFIG
    _SPAN_CONFIG = (k, d, batch_size)
    # pre-build this worker's spectral plan once at pool startup; content
    # addressing means every span task then hits the same warm entry.
    from repro.load.plancache import warm_worker_plan_cache
    from repro.routing.odr import OrderedDimensionalRouting

    warm_worker_plan_cache(k, d, OrderedDimensionalRouting(d))


def _evaluate_span(payload) -> tuple:
    start, span_count = payload
    assert _SPAN_CONFIG is not None
    k, d, batch_size = _SPAN_CONFIG
    combos = itertools.islice(
        combinations_from(k**d, tuple(start)), span_count
    )
    return _evaluate_chunk_batched((k, d, combos, batch_size))


def _encode_catalog_partial(partial: tuple) -> dict[str, Any]:
    best, best_ids, num_optimal, histogram = partial
    return {
        "best": best,
        "best_ids": None if best_ids is None else [int(x) for x in best_ids],
        "num_optimal": int(num_optimal),
        "histogram": [
            [float(value), int(count)]
            for value, count in sorted(histogram.items())
        ],
    }


def _decode_catalog_partial(data: dict) -> tuple:
    best_ids = data["best_ids"]
    return (
        data["best"],
        None if best_ids is None else tuple(int(x) for x in best_ids),
        int(data["num_optimal"]),
        {float(value): int(count) for value, count in data["histogram"]},
    )


def global_minimum_emax(
    torus: Torus,
    size: int,
    processes: int | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    batch_size: int | None = None,
) -> CatalogResult:
    """Exhaustively find the minimum ODR :math:`E_{max}` over all placements.

    Parameters
    ----------
    torus, size:
        The search space: all ``C(k^d, size)`` placements.
    processes:
        ``None`` (default) evaluates serially; an integer > 1 fans
        contiguous spans of the combination stream out over a process
        pool via :class:`repro.exec.ResilientExecutor` (crashed or hung
        spans are retried, then degraded to in-process evaluation).
    checkpoint:
        Optional :class:`repro.exec.CheckpointJournal` path; completed
        spans are persisted as they finish (forces span decomposition
        even for a serial sweep).
    resume:
        Resume from an existing ``checkpoint``: journaled spans are
        merged from their stored partials without re-evaluating.
    batch_size:
        Placements per ``emax_many`` block (``None``: the ambient
        default, normally 64).  Purely a throughput knob — results are
        bit-identical to the per-placement oracle for any value.

    Raises
    ------
    InvalidParameterError
        If the candidate count exceeds :data:`MAX_CATALOG`, or ``resume``
        is requested without a ``checkpoint``.
    SearchError
        If the resilient fan-out itself fails beyond recovery.
    """
    import math

    count = math.comb(torus.num_nodes, size)
    if count > MAX_CATALOG:
        raise InvalidParameterError(
            f"C({torus.num_nodes}, {size}) = {count} placements exceeds the "
            f"exhaustive limit {MAX_CATALOG}"
        )
    if resume and checkpoint is None:
        raise InvalidParameterError("resume=True requires a checkpoint path")
    if not 1 <= size <= torus.num_nodes:
        raise InvalidParameterError(
            f"size must satisfy 1 <= size <= {torus.num_nodes}, got {size}"
        )

    serial = processes is None or processes <= 1
    if serial and checkpoint is None:
        # the combination stream is consumed lazily — never materialized
        all_ids = itertools.combinations(range(torus.num_nodes), size)
        partials = [
            _evaluate_chunk_batched((torus.k, torus.d, all_ids, batch_size))
        ]
    else:
        workers = 1 if serial else int(processes)  # type: ignore[arg-type]
        chunk_size = max(1, count // max(16, workers * 4))
        spans: list[tuple[tuple[int, ...], int]] = []
        stream = itertools.combinations(range(torus.num_nodes), size)
        while True:
            # only one block is ever resident; spans keep just (start, len)
            block = list(itertools.islice(stream, chunk_size))
            if not block:
                break
            spans.append((block[0], len(block)))
        tasks = [
            ExecTask(f"span-{index:05d}", span)
            for index, span in enumerate(spans)
        ]
        journal = None
        if checkpoint is not None:
            journal = CheckpointJournal(
                checkpoint,
                fingerprint={
                    "workload": "catalog",
                    "k": torus.k,
                    "d": torus.d,
                    "size": size,
                    "chunk_size": chunk_size,
                },
                resume=resume,
                encode=_encode_catalog_partial,
                decode=_decode_catalog_partial,
            )
        executor = ResilientExecutor(
            _evaluate_span,
            jobs=workers,
            initializer=_init_span_worker,
            initargs=(torus.k, torus.d, batch_size),
            journal=journal,
            label=f"catalog[T_{torus.k}^{torus.d} n={size}]",
        )
        try:
            outcome = executor.run(tasks)
        except ExecutionError as err:
            raise SearchError(
                f"catalog sweep fan-out failed: {err} (backend 'catalog', "
                f"{len(spans)} spans, {workers} workers)"
            ) from err
        finally:
            if journal is not None:
                journal.close()
        partials = outcome.in_task_order(tasks)

    best: float | None = None
    best_ids: tuple[int, ...] | None = None
    num_optimal = 0
    histogram: dict[float, int] = {}
    for p_best, p_ids, p_count, p_hist in partials:
        for value, n in p_hist.items():
            histogram[value] = histogram.get(value, 0) + n
        if p_best is None:
            continue
        if best is None or p_best < best - 1e-12:
            best, best_ids, num_optimal = p_best, p_ids, p_count
        elif abs(p_best - best) <= 1e-12:
            num_optimal += p_count
            # deterministic witness: lex-smallest among equal minima, so
            # the unordered parallel merge matches the serial sweep exactly
            if p_ids < best_ids:  # type: ignore[operator]
                best_ids = p_ids
    return CatalogResult(
        minimum_emax=float(best),
        num_placements=count,
        num_optimal=num_optimal,
        example_optimal=Placement(torus, list(best_ids), name="catalog-optimal"),
        emax_histogram=histogram,
    )

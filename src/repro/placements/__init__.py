"""Processor placements on the torus (Definition 2 of the paper).

A *placement* is a subset of torus nodes that host processors; every other
node is a pure router.  The paper's central objects are:

* **linear placements** (:mod:`repro.placements.linear`) —
  ``{p : Σ c_i p_i ≡ c (mod k)}``, size :math:`k^{d-1}`, uniform;
* **multiple linear placements** (:mod:`repro.placements.multiple`) —
  unions of ``t`` parallel linear classes, size :math:`tk^{d-1}`;
* the **shifted diagonal** placements of Blaum et al.
  (:mod:`repro.placements.diagonal`), special cases of the above;
* contrast/baseline families (:mod:`repro.placements.fully`,
  :mod:`repro.placements.random_placement`) used by the experiments:
  the fully populated torus (superlinear load) and non-uniform
  counterexamples.
"""

from repro.placements.base import Placement, PlacementFamily
from repro.placements.linear import LinearPlacementFamily, linear_placement
from repro.placements.multiple import (
    MultipleLinearPlacementFamily,
    multiple_linear_placement,
)
from repro.placements.diagonal import (
    shifted_diagonal_placement,
    antidiagonal_placement_2d,
)
from repro.placements.fully import (
    fully_populated_placement,
    block_placement,
    single_subtorus_placement,
)
from repro.placements.random_placement import (
    random_placement,
    random_uniform_placement,
)
from repro.placements.analysis import (
    layer_counts,
    is_uniform,
    uniform_dimensions,
    placement_summary,
)
from repro.placements.registry import get_family, family_names, register_family
from repro.placements.catalog import global_minimum_emax, enumerate_placements
from repro.placements.exact_search import (
    ExactSearchResult,
    SearchCounters,
    exact_global_minimum,
)
from repro.placements.symmetry import (
    translate_placement,
    permute_dimensions,
    reflect_dimensions,
    canonical_form,
    are_equivalent_placements,
    AutomorphismGroup,
    automorphism_group,
)

__all__ = [
    "Placement",
    "PlacementFamily",
    "LinearPlacementFamily",
    "linear_placement",
    "MultipleLinearPlacementFamily",
    "multiple_linear_placement",
    "shifted_diagonal_placement",
    "antidiagonal_placement_2d",
    "fully_populated_placement",
    "block_placement",
    "single_subtorus_placement",
    "random_placement",
    "random_uniform_placement",
    "layer_counts",
    "is_uniform",
    "uniform_dimensions",
    "placement_summary",
    "get_family",
    "family_names",
    "register_family",
    "global_minimum_emax",
    "enumerate_placements",
    "ExactSearchResult",
    "SearchCounters",
    "exact_global_minimum",
    "translate_placement",
    "permute_dimensions",
    "reflect_dimensions",
    "canonical_form",
    "are_equivalent_placements",
    "AutomorphismGroup",
    "automorphism_group",
]

"""Randomized local search over placements of a fixed size.

The paper proves linear placements asymptotically optimal.  This module
asks the empirical converse: *can a generic optimizer find an equal-size
placement with lower maximum load?*  :func:`local_search_placement` runs
steepest-descent-with-restarts (optionally simulated annealing) over the
"swap one processor for one router" neighbourhood, minimizing the exact
ODR :math:`E_{max}`.  EXP-19 uses it to show search plateaus at — not
below — the linear placement's load, strengthening the optimality story
beyond the lower-bound argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.load.odr_loads import odr_edge_loads
from repro.placements.base import Placement
from repro.torus.topology import Torus
from repro.util.rng import resolve_rng

__all__ = ["SearchResult", "local_search_placement", "placement_objective"]


def placement_objective(placement: Placement) -> float:
    """The search objective: exact ODR :math:`E_{max}` (complete exchange)."""
    return float(odr_edge_loads(placement).max())


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one local-search run.

    Attributes
    ----------
    best:
        The best placement found.
    best_emax:
        Its objective value.
    initial_emax:
        Objective of the starting placement.
    evaluations:
        Number of objective evaluations spent.
    trajectory:
        Objective value after each accepted move (starts with the initial
        value) — lets callers plot/inspect convergence.
    """

    best: Placement
    best_emax: float
    initial_emax: float
    evaluations: int
    trajectory: tuple[float, ...]

    @property
    def improvement(self) -> float:
        """``initial_emax - best_emax`` (>= 0)."""
        return self.initial_emax - self.best_emax


def local_search_placement(
    start: Placement,
    max_moves: int = 200,
    candidates_per_move: int = 16,
    temperature: float = 0.0,
    seed=None,
) -> SearchResult:
    """Minimize ODR :math:`E_{max}` by single-processor relocation moves.

    Parameters
    ----------
    start:
        Initial placement; its size is preserved by every move.
    max_moves:
        Accepted-move budget (the search also stops after
        ``4 * max_moves`` consecutive rejections).
    candidates_per_move:
        Random (processor, router) swap candidates evaluated per step; the
        best is taken (steepest descent over a sampled neighbourhood).
    temperature:
        0 gives strict descent; > 0 accepts uphill moves with Metropolis
        probability ``exp(-delta / temperature)`` (simulated annealing
        with a fixed temperature).
    seed:
        RNG seed.

    Returns
    -------
    SearchResult
    """
    if max_moves < 0:
        raise InvalidParameterError(f"max_moves must be >= 0, got {max_moves}")
    if candidates_per_move < 1:
        raise InvalidParameterError(
            f"candidates_per_move must be >= 1, got {candidates_per_move}"
        )
    rng = resolve_rng(seed)
    torus: Torus = start.torus

    current_ids = start.node_ids.copy()
    current = start
    current_emax = placement_objective(current)
    best = current
    best_emax = current_emax
    initial_emax = current_emax
    evaluations = 1
    trajectory = [current_emax]

    routers = np.setdiff1d(
        np.arange(torus.num_nodes, dtype=np.int64), current_ids
    )
    if routers.size == 0:
        # fully populated: no move exists
        return SearchResult(
            best=best,
            best_emax=best_emax,
            initial_emax=initial_emax,
            evaluations=evaluations,
            trajectory=tuple(trajectory),
        )

    # maintain the full load vector so each candidate swap costs O(|P|)
    # pair work via the incremental engine instead of O(|P|^2)
    from repro.load.odr_loads import odr_edge_loads_swap_delta

    current_loads = odr_edge_loads(current)

    accepted = 0
    rejections = 0
    while accepted < max_moves and rejections < 4 * max_moves:
        # sample candidate swaps and take the best
        best_cand = None
        for _ in range(candidates_per_move):
            out_idx = int(rng.integers(current_ids.size))
            in_idx = int(rng.integers(routers.size))
            removed_id = int(current_ids[out_idx])
            added_id = int(routers[in_idx])
            kept_ids = np.delete(current_ids, out_idx)
            cand_loads = odr_edge_loads_swap_delta(
                torus,
                current_loads,
                torus.coords(kept_ids),
                torus.coord(removed_id),
                torus.coord(added_id),
            )
            emax = float(cand_loads.max())
            evaluations += 1
            if best_cand is None or emax < best_cand[0]:
                best_cand = (emax, cand_loads, out_idx, in_idx, added_id)
        emax, cand_loads, out_idx, in_idx, added_id = best_cand
        delta = emax - current_emax
        accept = delta < 0 or (
            temperature > 0
            and rng.random() < np.exp(-delta / temperature)
        )
        if accept:
            cand_ids = current_ids.copy()
            cand_ids[out_idx] = added_id
            cand = Placement(torus, cand_ids, name=f"{start.name}|search")
            # adopt the candidate; recompute the id arrays from it so they
            # stay canonical (Placement sorts its ids)
            current = cand
            current_ids = cand.node_ids.copy()
            routers = np.setdiff1d(
                np.arange(torus.num_nodes, dtype=np.int64), current_ids
            )
            current_loads = cand_loads
            current_emax = emax
            trajectory.append(current_emax)
            accepted += 1
            if emax < best_emax:
                best_emax = emax
                best = cand
        else:
            rejections += 1
    return SearchResult(
        best=best,
        best_emax=best_emax,
        initial_emax=initial_emax,
        evaluations=evaluations,
        trajectory=tuple(trajectory),
    )

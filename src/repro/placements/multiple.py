"""Multiple linear placements (Section 5 of the paper).

The union :math:`P = P_1 ∪ … ∪ P_t` of ``t`` parallel linear classes

.. math::

    P_j = \\{\\vec p \\mid p_1 + … + p_d \\equiv j - 1 \\pmod k\\}

has exactly :math:`tk^{d-1}` processors (the classes are disjoint residue
classes of the coordinate sum), remains uniform when all coefficients are
coprime to ``k``, and — Theorems 3 and 5 — keeps the communication load
linear under both ODR and UDR for any constant ``t``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.placements.base import Placement, PlacementFamily
from repro.placements.linear import solve_linear_congruence
from repro.torus.coords import coords_to_ids
from repro.torus.topology import Torus

__all__ = ["multiple_linear_placement", "MultipleLinearPlacementFamily"]


def multiple_linear_placement(
    torus: Torus,
    t: int,
    coefficients=None,
    base_offset: int = 0,
    name: str | None = None,
) -> Placement:
    """Union of ``t`` consecutive linear congruence classes.

    Parameters
    ----------
    torus:
        Host torus.
    t:
        Multiplicity, ``1 <= t <= k`` (``t = k`` gives the fully populated
        torus; the paper treats ``t`` as a constant ``< k``).
    coefficients:
        Shared coefficient vector for all classes (default all ones).
    base_offset:
        The first congruence class; classes ``base_offset … base_offset+t-1``
        (mod ``k``) are used.

    Returns
    -------
    Placement
        Size exactly :math:`t·k^{d-1}`.
    """
    if not 1 <= t <= torus.k:
        raise InvalidParameterError(
            f"multiplicity t must satisfy 1 <= t <= k={torus.k}, got {t}"
        )
    blocks = [
        coords_to_ids(
            solve_linear_congruence(
                torus.k, torus.d, coefficients, base_offset + j
            ),
            torus.k,
            torus.d,
        )
        for j in range(t)
    ]
    ids = np.concatenate(blocks)
    if name is None:
        name = f"multilinear(t={t}, c0={int(base_offset) % torus.k})"
    return Placement(torus, ids, name=name)


class MultipleLinearPlacementFamily(PlacementFamily):
    """The family :math:`k, d \\mapsto` multiple linear placement of fixed ``t``."""

    def __init__(self, t: int, base_offset: int = 0):
        if t < 1:
            raise InvalidParameterError(f"multiplicity t must be >= 1, got {t}")
        self.t = int(t)
        self.base_offset = int(base_offset)
        self.name = f"multilinear[t={self.t}]"

    def build(self, k: int, d: int) -> Placement:
        return multiple_linear_placement(
            Torus(k, d), self.t, base_offset=self.base_offset
        )

    def expected_size(self, k: int, d: int) -> int:
        return self.t * k ** (d - 1)

    def is_uniform_by_construction(self) -> bool:
        return True

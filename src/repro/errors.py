"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of this package with a single ``except``
clause while still being able to discriminate the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "PlacementError",
    "RoutingError",
    "BisectionError",
    "LoadError",
    "EngineError",
    "SimulationError",
    "ExperimentError",
    "SearchError",
    "ExecutionError",
    "TaskTimeoutError",
    "TraceError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidParameterError(ReproError, ValueError):
    """A torus/placement/routing parameter is out of its legal domain.

    Raised, for instance, for ``k < 2``, ``d < 1``, coefficient vectors of
    the wrong length, or multiple-linear multiplicity ``t`` outside
    ``1 <= t <= k``.
    """


class PlacementError(ReproError):
    """A placement is structurally invalid for the requested operation.

    Examples: a placement referencing nodes outside the torus, an empty
    placement handed to a load analysis, or a non-uniform placement passed
    to an algorithm that requires uniformity.
    """


class RoutingError(ReproError):
    """A routing request cannot be satisfied.

    Examples: asking for a route between nodes that are not both in the
    placement, or a fault-masked routing relation that has no surviving
    path between a pair.
    """


class BisectionError(ReproError):
    """A bisection procedure failed to produce a balanced split."""


class LoadError(ReproError):
    """A load computation cannot be carried out.

    Examples: a routing relation that yields *no* path for an ordered
    pair (so Definition 4's :math:`1/|C^A_{p→q}|` fraction is undefined),
    or a traffic matrix whose shape does not match the placement.
    """


class EngineError(LoadError):
    """A :mod:`repro.load.engine` backend was misused or misconfigured.

    Examples: requesting an unknown backend name, asking a vectorized
    kernel for a routing algorithm it has no closed form for, or applying
    the displacement-class cache to a routing that is not
    translation-invariant.
    """


class SimulationError(ReproError):
    """The packet simulator was configured inconsistently or deadlocked."""


class ExperimentError(ReproError):
    """An experiment was configured with parameters it cannot honour."""


class SearchError(ReproError):
    """An exact placement search failed or detected an internal
    inconsistency.

    Examples: an ``initial_upper_bound`` seed below the true minimum (no
    placement survives the pruning), or an orbit-size accounting mismatch
    against :math:`C(k^d, n)` — the latter indicates a bug and is checked
    defensively after every symmetry-reduced sweep.
    """


class ExecutionError(ReproError):
    """The :mod:`repro.exec` resilience layer could not complete a workload.

    Examples: a task that exhausted its retry budget with serial fallback
    disabled, a checkpoint journal whose fingerprint does not match the
    workload being resumed, or an executor misconfiguration (negative
    retry budget, duplicate task ids).
    """


class TraceError(ReproError):
    """A :mod:`repro.obs` trace could not be written or read back.

    Examples: emitting to a closed sink, summarizing a file with no
    trace header, an unsupported format version, or a corrupt interior
    line (traces tolerate only the torn-*final*-line kill artifact,
    matching :class:`~repro.exec.journal.CheckpointJournal` semantics).
    """


class TaskTimeoutError(ExecutionError):
    """A single task exceeded its per-task deadline.

    Raised (or recorded in the :class:`~repro.exec.ExecutionReport`) when a
    worker fails to return within ``task_timeout`` seconds; the watchdog
    tears the pool down, reschedules the survivors, and retries the
    overdue task against its remaining budget.
    """

"""Link-fault injection and routing-level fault-tolerance statistics.

Section 7 motivates UDR by fault tolerance: with :math:`s!` paths per pair
a single link failure rarely disconnects anyone, whereas ODR's single path
is brittle.  :func:`pair_connectivity_under_faults` quantifies that: given
a failure set, it counts the ordered processor pairs whose *entire* path
set is severed — the routing-relation disconnection probability EXP-11
sweeps over failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.placements.base import Placement
from repro.routing.base import RoutingAlgorithm
from repro.routing.faults import FaultMaskedRouting
from repro.util.rng import resolve_rng

__all__ = [
    "random_link_failures",
    "pair_connectivity_under_faults",
    "FaultToleranceStats",
]


def random_link_failures(
    placement_or_torus, num_failures: int, seed=None
) -> np.ndarray:
    """Choose ``num_failures`` distinct directed links to kill, uniformly."""
    torus = getattr(placement_or_torus, "torus", placement_or_torus)
    if not 0 <= num_failures <= torus.num_edges:
        raise ValueError(
            f"num_failures must lie in [0, {torus.num_edges}], got {num_failures}"
        )
    rng = resolve_rng(seed)
    return np.sort(
        rng.choice(torus.num_edges, size=num_failures, replace=False)
    ).astype(np.int64)


@dataclass(frozen=True)
class FaultToleranceStats:
    """Connectivity of the routing relation under one failure set.

    Attributes
    ----------
    total_pairs:
        Ordered processor pairs examined.
    disconnected_pairs:
        Pairs whose entire path set crosses failed links.
    surviving_path_fraction:
        Mean over pairs of (surviving paths / original paths).
    num_failures:
        Size of the injected failure set.
    """

    total_pairs: int
    disconnected_pairs: int
    surviving_path_fraction: float
    num_failures: int

    @property
    def disconnection_rate(self) -> float:
        """Fraction of ordered pairs the failures disconnect."""
        return (
            self.disconnected_pairs / self.total_pairs if self.total_pairs else 0.0
        )


def pair_connectivity_under_faults(
    placement: Placement,
    routing: RoutingAlgorithm,
    failed_edge_ids,
) -> FaultToleranceStats:
    """Evaluate every ordered pair's survival under a concrete failure set."""
    from repro.obs.tracer import current_tracer

    torus = placement.torus
    masked = FaultMaskedRouting(routing, failed_edge_ids)
    coords = placement.coords()
    m = len(placement)
    disconnected = 0
    total = 0
    frac_sum = 0.0
    tracer = current_tracer()
    with tracer.span(
        "sim.fault_sweep",
        pairs=m * (m - 1),
        failures=int(np.asarray(list(failed_edge_ids)).size),
    ) as fault_span:
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                total += 1
                original = routing.paths(torus, coords[i], coords[j])
                if not original:
                    raise SimulationError(
                        f"routing {routing.name!r} returned no path for pair "
                        f"{tuple(int(c) for c in coords[i])} -> "
                        f"{tuple(int(c) for c in coords[j])}; cannot measure "
                        "path survival for a disconnected baseline"
                    )
                surviving = masked.surviving_paths(torus, coords[i], coords[j])
                frac_sum += len(surviving) / len(original)
                if not surviving:
                    disconnected += 1
        fault_span.annotate(disconnected=disconnected)
    if tracer.enabled:
        tracer.metrics.counter("sim.pairs_disconnected").add(disconnected)
    return FaultToleranceStats(
        total_pairs=total,
        disconnected_pairs=disconnected,
        surviving_path_fraction=frac_sum / total if total else 1.0,
        num_failures=len(np.asarray(list(failed_edge_ids))),
    )

"""The synchronous cycle engine.

Model (store-and-forward, unit link bandwidth):

* every directed link transmits **at most one packet per cycle**;
* each link has an unbounded FIFO output queue at its tail node;
* a packet released at cycle ``c`` joins its first link's queue at ``c``;
  when a link serves it at cycle ``c'``, it joins the next link's queue at
  ``c' + 1`` (or is delivered);
* paths are fixed at injection, so there is no routing-induced deadlock.

The per-link traversal counters this produces are the simulator's estimate
of Definition 4's load; for deterministic routing (ODR) they equal the
analytic loads exactly, for UDR they match in expectation (EXP-12 checks
both).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.obs.tracer import current_tracer
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet

__all__ = ["CycleEngine", "SimulationResult"]

#: per-cycle `sim.cycle` spans are emitted only for the first N cycles of
#: a traced run — enough to see the warm-up/drain shape without letting a
#: pathological million-cycle run flood the trace file.
MAX_CYCLE_SPANS = 512


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished run reports.

    Attributes
    ----------
    cycles:
        Total cycles until the last delivery (the makespan).
    link_counts:
        Per-link traversal totals, length ``num_edges``.
    latencies:
        Per-packet delivery latency, aligned with the packet list.
    max_queue_length:
        Peak backlog observed on any single link queue.
    delivered:
        Number of packets delivered (always all of them — queues are
        unbounded and paths fixed).
    """

    cycles: int
    link_counts: np.ndarray
    latencies: np.ndarray
    max_queue_length: int
    delivered: int

    @property
    def max_link_count(self) -> int:
        """The busiest link's traversal count — compare to :math:`E_{max}`."""
        return int(self.link_counts.max())

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def throughput(self) -> float:
        """Delivered packets per cycle."""
        return self.delivered / self.cycles if self.cycles else 0.0


class CycleEngine:
    """Run a packet list over a :class:`SimNetwork` to completion."""

    def __init__(self, network: SimNetwork, max_cycles: int = 1_000_000):
        self.network = network
        self.max_cycles = int(max_cycles)

    def run(self, packets: list[Packet]) -> SimulationResult:
        """Simulate until every packet is delivered.

        Raises
        ------
        SimulationError
            If a packet's path uses a failed link, or ``max_cycles`` is
            exceeded (which would indicate an engine bug — the model
            cannot deadlock).
        """
        net = self.network
        tracer = current_tracer()
        with tracer.span(
            "sim.run", engine="cycle", packets=len(packets)
        ) as run_span:
            result = self._run(packets, net, tracer)
            run_span.annotate(cycles=result.cycles, delivered=result.delivered)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("sim.packets_routed").add(result.delivered)
            metrics.counter("sim.cycles").add(result.cycles)
        return result

    def _run(
        self, packets: list[Packet], net: SimNetwork, tracer
    ) -> SimulationResult:
        traced = tracer.enabled
        contention = tracer.metrics.histogram("sim.contention")
        for p in packets:
            if not net.check_path_alive(p.edge_ids):
                raise SimulationError(
                    f"packet {p.packet_id} routed over a failed link; "
                    "use FaultMaskedRouting when building the workload"
                )
            p.hop = 0
            p.delivered_cycle = None

        # release schedule: cycle -> packets entering their first queue
        pending: dict[int, list[Packet]] = {}
        zero_hop = 0
        for p in packets:
            if p.path_length == 0:
                # src == dst message: delivered instantly, no link used
                p.delivered_cycle = p.release_cycle
                zero_hop += 1
                continue
            pending.setdefault(p.release_cycle, []).append(p)

        queues: dict[int, deque[Packet]] = {}
        max_queue = 0
        delivered = zero_hop
        total = len(packets)
        cycle = 0
        last_delivery = 0

        while delivered < total:
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles} with "
                    f"{total - delivered} packets in flight"
                )
            # deliberate manual handle: the span is conditional (capped
            # at MAX_CYCLE_SPANS) and closed at two exit points below.
            cycle_span = (
                tracer.span("sim.cycle", cycle=cycle)  # repro: noqa(RL015)
                if traced and cycle < MAX_CYCLE_SPANS
                else None
            )
            if cycle_span is not None:
                cycle_span.__enter__()
            # arrivals scheduled for this cycle
            for p in pending.pop(cycle, ()):  # packets join queues
                q = queues.setdefault(p.edge_ids[p.hop], deque())
                q.append(p)
                if len(q) > max_queue:
                    max_queue = len(q)
                if traced:
                    # queue depth at arrival = instantaneous contention
                    contention.observe(len(q))
            # each live link serves one head-of-line packet
            served = 0
            for edge_id in list(queues):
                q = queues[edge_id]
                p = q.popleft()
                if not q:
                    del queues[edge_id]
                net.record_traversal(edge_id)
                served += 1
                p.hop += 1
                if p.hop == p.path_length:
                    p.delivered_cycle = cycle + 1
                    delivered += 1
                    last_delivery = cycle + 1
                else:
                    pending.setdefault(cycle + 1, []).append(p)
            if cycle_span is not None:
                cycle_span.annotate(served=served)
                cycle_span.__exit__(None, None, None)
            cycle += 1

        latencies = np.array(
            [p.latency for p in packets], dtype=np.int64
        ) if packets else np.empty(0, dtype=np.int64)
        return SimulationResult(
            cycles=last_delivery,
            link_counts=net.link_counts.copy(),
            latencies=latencies,
            max_queue_length=max_queue,
            delivered=delivered,
        )

"""Flit-level wormhole-switched simulator (extension).

The paper's load model (Definition 4) counts paths; its references ([7],
[11] — Tseng et al., Ni & McKinley) study the same networks under
*wormhole* switching, where a packet is a worm of flits pipelining through
the network and holding its channels from head to tail.  This module adds
that substrate so users can see how the paper's static loads translate
into dynamic latency under a realistic flow-control model:

* each directed link carries **two virtual channels** (VC0/VC1) with
  private flit buffers; the physical link transfers at most one flit per
  cycle;
* routes are the dimension-order (ODR/UDR-sampled) paths of
  :mod:`repro.routing`; within each dimension a packet starts on VC0 and
  switches to VC1 after crossing that ring's **dateline** (the wraparound
  boundary) — the classical scheme that breaks the torus's cyclic channel
  dependences, so dimension-order wormhole routing is deadlock-free;
* a channel is owned by one packet from the moment its head flit enters
  until its tail flit leaves (wormhole allocation).

The observable outputs mirror the store-and-forward engine: per-link flit
counters (each packet contributes ``flits_per_packet`` per traversed link,
so counters normalize to Definition 4 loads), per-packet latency
(≈ hops + flits under no contention — the pipelining effect), and
completion time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.obs.tracer import current_tracer
from repro.sim.engine import MAX_CYCLE_SPANS
from repro.sim.packet import Packet
from repro.torus.topology import Torus

__all__ = ["WormholeConfig", "WormholeResult", "WormholeEngine", "assign_virtual_channels"]

#: number of virtual channels per physical link (dateline scheme needs 2)
NUM_VCS = 2


@dataclass(frozen=True)
class WormholeConfig:
    """Flow-control parameters.

    Attributes
    ----------
    flits_per_packet:
        Worm length (head + body + tail); ``1`` degenerates to
        virtual-cut-through of single-flit packets.
    buffer_flits:
        Per-virtual-channel buffer capacity in flits.
    """

    flits_per_packet: int = 4
    buffer_flits: int = 2

    def __post_init__(self):
        if self.flits_per_packet < 1:
            raise SimulationError(
                f"flits_per_packet must be >= 1, got {self.flits_per_packet}"
            )
        if self.buffer_flits < 1:
            raise SimulationError(
                f"buffer_flits must be >= 1, got {self.buffer_flits}"
            )


def assign_virtual_channels(torus: Torus, edge_ids) -> list[int]:
    """Dateline VC assignment along a dimension-order route.

    Within every dimension the packet starts on VC0; the hop that crosses
    the ring's wraparound boundary (coordinate ``k-1 → 0`` travelling
    ``+``, or ``0 → k-1`` travelling ``−``) and every later hop *in that
    dimension* use VC1.  Entering a new dimension resets to VC0.
    """
    ei = torus.edges
    vcs: list[int] = []
    current_dim = -1
    crossed = False
    for edge_id in edge_ids:
        e = ei.decode(int(edge_id))
        if e.dim != current_dim:
            current_dim = e.dim
            crossed = False
        tail_coord = torus.coord(e.tail)[e.dim]
        if e.sign > 0 and tail_coord == torus.k - 1:
            crossed = True
        elif e.sign < 0 and tail_coord == 0:
            crossed = True
        vcs.append(1 if crossed else 0)
    return vcs


@dataclass
class _Channel:
    """One virtual channel: a flit FIFO plus wormhole ownership."""

    capacity: int
    owner: int | None = None  # packet id holding the channel
    buf: deque = field(default_factory=deque)  # of (packet_id, flit_idx)

    @property
    def has_space(self) -> bool:
        return len(self.buf) < self.capacity


@dataclass(frozen=True)
class WormholeResult:
    """Outcome of a wormhole run.

    ``link_flit_counts[l] / flits_per_packet`` is the per-link packet
    count — directly comparable to the store-and-forward counters and to
    the analytic loads.
    """

    cycles: int
    link_flit_counts: np.ndarray
    latencies: np.ndarray
    delivered: int
    flits_per_packet: int

    @property
    def link_packet_counts(self) -> np.ndarray:
        if self.flits_per_packet < 1:
            raise SimulationError(
                f"flits_per_packet must be >= 1, got {self.flits_per_packet}"
            )
        return self.link_flit_counts / self.flits_per_packet

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0


class _PacketState:
    """Simulator-internal per-packet bookkeeping."""

    __slots__ = (
        "packet", "vcs", "flits_injected", "flits_sunk", "head_hop",
    )

    def __init__(self, packet: Packet, vcs: list[int]):
        self.packet = packet
        self.vcs = vcs
        self.flits_injected = 0
        self.flits_sunk = 0
        self.head_hop = -1  # furthest hop index any flit has reached


class WormholeEngine:
    """Synchronous flit-level wormhole simulator.

    Parameters
    ----------
    torus:
        Topology.
    config:
        Flow-control parameters.
    max_cycles:
        Safety bound; dimension-order + dateline routing cannot deadlock,
        so hitting it indicates an engine bug or absurd contention.
    """

    def __init__(
        self,
        torus: Torus,
        config: WormholeConfig | None = None,
        max_cycles: int = 1_000_000,
    ):
        self.torus = torus
        self.config = config or WormholeConfig()
        self.max_cycles = int(max_cycles)

    # ------------------------------------------------------------------ run

    def run(self, packets: list[Packet]) -> WormholeResult:
        """Simulate until every packet's tail flit is ejected."""
        tracer = current_tracer()
        with tracer.span(
            "sim.run",
            engine="wormhole",
            packets=len(packets),
            flits_per_packet=self.config.flits_per_packet,
        ) as run_span:
            result = self._run(packets, tracer)
            run_span.annotate(cycles=result.cycles, delivered=result.delivered)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("sim.packets_routed").add(result.delivered)
            metrics.counter("sim.cycles").add(result.cycles)
        return result

    def _run(self, packets: list[Packet], tracer) -> WormholeResult:
        cfg = self.config
        torus = self.torus
        flits = cfg.flits_per_packet
        traced = tracer.enabled
        contention = tracer.metrics.histogram("sim.contention")
        blocked_counter = tracer.metrics.counter("sim.flits_blocked")

        states: dict[int, _PacketState] = {}
        for p in packets:
            if len(set(p.edge_ids)) != len(p.edge_ids):
                raise SimulationError(
                    f"packet {p.packet_id} revisits a link; wormhole routes "
                    "must be edge-simple"
                )
            states[p.packet_id] = _PacketState(
                p, assign_virtual_channels(torus, p.edge_ids)
            )
            p.delivered_cycle = None

        channels: dict[tuple[int, int], _Channel] = {}

        def channel(edge_id: int, vc: int) -> _Channel:
            key = (edge_id, vc)
            if key not in channels:
                channels[key] = _Channel(capacity=cfg.buffer_flits)
            return channels[key]

        link_counts = np.zeros(torus.num_edges, dtype=np.int64)
        delivered = 0
        total = len(packets)
        # zero-hop packets deliver immediately (flits never enter the net)
        for st in states.values():
            if st.packet.path_length == 0:
                st.packet.delivered_cycle = st.packet.release_cycle
                delivered += 1

        cycle = 0
        last_delivery = 0
        rr_offset = 0  # rotates candidate priority for fairness

        while delivered < total:
            if cycle > self.max_cycles:
                stuck = [
                    st.packet.packet_id
                    for st in states.values()
                    if st.packet.delivered_cycle is None
                ]
                raise SimulationError(
                    f"wormhole run exceeded {self.max_cycles} cycles with "
                    f"packets {stuck[:8]} in flight"
                )

            # deliberate manual handle: the span is conditional (capped
            # at MAX_CYCLE_SPANS) and closed at two exit points below.
            cycle_span = (
                tracer.span("sim.cycle", cycle=cycle)  # repro: noqa(RL015)
                if traced and cycle < MAX_CYCLE_SPANS
                else None
            )
            if cycle_span is not None:
                cycle_span.__enter__()

            # ---- phase 1: eject flits at destinations (no link bandwidth)
            for st in states.values():
                p = st.packet
                if p.delivered_cycle is not None or p.path_length == 0:
                    continue
                last_hop = p.path_length - 1
                ch = channel(p.edge_ids[last_hop], st.vcs[last_hop])
                if ch.buf and ch.buf[0][0] == p.packet_id:
                    pid, fidx = ch.buf.popleft()
                    st.flits_sunk += 1
                    if fidx == flits - 1:  # tail flit ejected
                        ch.owner = None
                        p.delivered_cycle = cycle
                        delivered += 1
                        last_delivery = cycle
            if delivered >= total:
                if cycle_span is not None:
                    cycle_span.__exit__(None, None, None)
                break

            # ---- phase 2: one flit crossing per physical link
            candidates: dict[int, list[tuple]] = {}

            def add_candidate(link: int, entry: tuple) -> None:
                candidates.setdefault(link, []).append(entry)

            for st in states.values():
                p = st.packet
                if p.delivered_cycle is not None or p.path_length == 0:
                    continue
                # injection of the next flit crosses route[0]
                if (
                    st.flits_injected < flits
                    and cycle >= p.release_cycle
                ):
                    add_candidate(
                        p.edge_ids[0], ("inject", st, st.flits_injected)
                    )
                # head-of-buffer flits advancing to the next channel
                for hop in range(p.path_length - 1):
                    ch = channel(p.edge_ids[hop], st.vcs[hop])
                    if ch.buf and ch.buf[0][0] == p.packet_id:
                        add_candidate(
                            p.edge_ids[hop + 1], ("advance", st, hop)
                        )

            moved_any = False
            moved_flits: set[tuple[int, int]] = set()  # one hop per flit per cycle
            for link in sorted(candidates):
                entries = candidates[link]
                if traced:
                    # candidates competing for one physical link this cycle
                    contention.observe(len(entries))
                # rotate priority for fairness across cycles
                order = entries[rr_offset % len(entries):] + entries[: rr_offset % len(entries)]
                moved_here = False
                for kind, st, arg in order:
                    if self._try_move(kind, st, arg, channel, link_counts, moved_flits):
                        moved_any = True
                        moved_here = True
                        break
                if traced:
                    # every candidate beyond the winner stalled this cycle
                    blocked_counter.add(len(entries) - (1 if moved_here else 0))
            rr_offset += 1
            if not moved_any and delivered < total:
                # no ejection possible either (we broke out above only on
                # completion) -> check next cycle; ejection phase always
                # drains the final channels, so persistent stalls only
                # happen before release cycles
                pass
            if cycle_span is not None:
                cycle_span.__exit__(None, None, None)
            cycle += 1

        latencies = np.array(
            [p.latency for p in packets], dtype=np.int64
        ) if packets else np.empty(0, dtype=np.int64)
        return WormholeResult(
            cycles=last_delivery,
            link_flit_counts=link_counts,
            latencies=latencies,
            delivered=delivered,
            flits_per_packet=flits,
        )

    # ------------------------------------------------------------ internals

    def _try_move(
        self, kind, st: _PacketState, arg, channel, link_counts, moved_flits
    ) -> bool:
        """Attempt one flit crossing; returns True if it happened."""
        p = st.packet
        flits = self.config.flits_per_packet
        if kind == "inject":
            fidx = arg
            if (p.packet_id, fidx) in moved_flits:
                return False
            target = channel(p.edge_ids[0], st.vcs[0])
            if fidx == 0:
                # head flit allocates the first channel
                if target.owner is not None or not target.has_space:
                    return False
                target.owner = p.packet_id
            else:
                if target.owner != p.packet_id or not target.has_space:
                    return False
            target.buf.append((p.packet_id, fidx))
            st.flits_injected += 1
            link_counts[p.edge_ids[0]] += 1
            moved_flits.add((p.packet_id, fidx))
            return True

        # kind == "advance": head-of-buffer flit at `hop` moves to hop+1
        hop = arg
        src = channel(p.edge_ids[hop], st.vcs[hop])
        if not src.buf or src.buf[0][0] != p.packet_id:
            return False
        _pid, fidx = src.buf[0]
        if (p.packet_id, fidx) in moved_flits:
            return False  # one hop per flit per cycle
        dst = channel(p.edge_ids[hop + 1], st.vcs[hop + 1])
        if dst.owner is None:
            if fidx != 0:
                return False  # body flits may not allocate
            if not dst.has_space:
                return False
            dst.owner = p.packet_id
        else:
            if dst.owner != p.packet_id or not dst.has_space:
                return False
        src.buf.popleft()
        dst.buf.append((p.packet_id, fidx))
        st.head_hop = max(st.head_hop, hop + 1)
        if fidx == flits - 1:
            src.owner = None  # tail left: release the channel
        link_counts[p.edge_ids[hop + 1]] += 1
        moved_flits.add((p.packet_id, fidx))
        return True

"""Workload builders: placement + routing → packet lists.

The central one is :func:`complete_exchange_packets` — every processor
sends one message to every other processor, each message's path drawn
uniformly at random from the routing relation (Definition 3's selection
rule).  ``rounds > 1`` repeats the exchange, which sharpens the Monte-Carlo
estimate of the fractional UDR loads.
"""

from __future__ import annotations

from repro.placements.base import Placement
from repro.routing.base import RoutingAlgorithm
from repro.sim.packet import Packet
from repro.util.rng import resolve_rng

__all__ = ["complete_exchange_packets", "build_packets"]


def build_packets(
    placement: Placement,
    routing: RoutingAlgorithm,
    pairs,
    seed=None,
    release_cycle: int = 0,
    start_id: int = 0,
) -> list[Packet]:
    """Packets for explicit ``(src_index, dst_index)`` placement-index pairs."""
    rng = resolve_rng(seed)
    torus = placement.torus
    coords = placement.coords()
    ids = placement.node_ids
    packets = []
    pid = start_id
    for i, j in pairs:
        paths = routing.paths(torus, coords[i], coords[j])
        path = paths[int(rng.integers(len(paths)))]
        packets.append(
            Packet(
                packet_id=pid,
                src=int(ids[i]),
                dst=int(ids[j]),
                edge_ids=path.edge_ids,
                release_cycle=release_cycle,
            )
        )
        pid += 1
    return packets


def complete_exchange_packets(
    placement: Placement,
    routing: RoutingAlgorithm,
    seed=None,
    rounds: int = 1,
    stagger: int = 0,
) -> list[Packet]:
    """All-to-all personalized communication as a packet list.

    Parameters
    ----------
    placement, routing:
        The configuration under test.
    seed:
        RNG seed for the per-message path choice.
    rounds:
        How many full exchanges to run (each re-samples paths).
    stagger:
        Release-cycle gap between successive rounds (0 = all at once).
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    m = len(placement)
    pairs = [(i, j) for i in range(m) for j in range(m) if i != j]
    rng = resolve_rng(seed)
    packets: list[Packet] = []
    for r in range(rounds):
        packets.extend(
            build_packets(
                placement,
                routing,
                pairs,
                seed=rng,
                release_cycle=r * stagger,
                start_id=len(packets),
            )
        )
    return packets

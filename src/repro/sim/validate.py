"""Simulator-vs-analysis cross-validation (EXP-12's engine).

For deterministic routing (ODR) every complete exchange traverses exactly
the analytic path set, so simulated link counters must equal the analytic
loads *exactly*.  For randomized routing (UDR) the counters are a
Monte-Carlo draw whose expectation is the analytic fractional load; over
``rounds`` exchanges the normalized counters converge at the usual
:math:`1/\\sqrt{rounds}` rate.  Both facts are checked here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placements.base import Placement
from repro.routing.base import RoutingAlgorithm
from repro.sim.engine import CycleEngine
from repro.sim.network import SimNetwork
from repro.sim.workloads import complete_exchange_packets

__all__ = ["ValidationReport", "compare_sim_to_analytic"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one simulator-vs-analytic comparison.

    Attributes
    ----------
    max_abs_error:
        :math:`\\max_l |counts_l/rounds - \\mathcal{E}(l)|`.
    total_sim, total_analytic:
        Total traversals per exchange vs total analytic load (the
        conservation cross-check; equal for minimal routing).
    sim_emax, analytic_emax:
        The two maxima.
    rounds:
        Exchanges simulated.
    exact_match:
        Whether the normalized counters equal the analytic loads exactly
        (guaranteed for single-path routing).
    """

    max_abs_error: float
    total_sim: float
    total_analytic: float
    sim_emax: float
    analytic_emax: float
    rounds: int
    exact_match: bool


def compare_sim_to_analytic(
    placement: Placement,
    routing: RoutingAlgorithm,
    analytic_loads: np.ndarray,
    rounds: int = 1,
    seed: int | None = None,
) -> ValidationReport:
    """Simulate ``rounds`` complete exchanges and compare per-link counters
    (normalized per exchange) against ``analytic_loads``."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    torus = placement.torus
    packets = complete_exchange_packets(placement, routing, seed=seed, rounds=rounds)
    engine = CycleEngine(SimNetwork(torus))
    result = engine.run(packets)
    normalized = result.link_counts.astype(np.float64) / rounds
    analytic = np.asarray(analytic_loads, dtype=np.float64)
    err = np.abs(normalized - analytic)
    return ValidationReport(
        max_abs_error=float(err.max(initial=0.0)),
        total_sim=float(normalized.sum()),
        total_analytic=float(analytic.sum()),
        sim_emax=float(normalized.max(initial=0.0)),
        analytic_emax=float(analytic.max(initial=0.0)),
        rounds=rounds,
        exact_match=bool(np.allclose(normalized, analytic)),
    )

"""Packet representation for the cycle simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet"]


@dataclass
class Packet:
    """One message travelling a pre-sampled path.

    Attributes
    ----------
    packet_id:
        Unique id (dense, assigned by the workload builder).
    src, dst:
        Source and destination node ids.
    edge_ids:
        The full path, as dense directed-edge ids, sampled at injection
        time uniformly from the routing relation.
    release_cycle:
        Cycle at which the packet enters its first output queue.
    hop:
        Index of the next edge to traverse (simulator state).
    delivered_cycle:
        Cycle at which the last hop completed; ``None`` while in flight.
    """

    packet_id: int
    src: int
    dst: int
    edge_ids: tuple[int, ...]
    release_cycle: int = 0
    hop: int = field(default=0, compare=False)
    delivered_cycle: int | None = field(default=None, compare=False)

    @property
    def path_length(self) -> int:
        """Total hops this packet must make."""
        return len(self.edge_ids)

    @property
    def latency(self) -> int | None:
        """Delivery latency in cycles (``None`` while undelivered)."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.release_cycle

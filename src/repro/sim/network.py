"""Simulated network state: link liveness and per-link counters."""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.torus.topology import Torus

__all__ = ["SimNetwork"]


class SimNetwork:
    """Mutable network state for one simulation run.

    Parameters
    ----------
    torus:
        The underlying topology.
    failed_edge_ids:
        Dense ids of links considered down; packets whose path includes a
        failed link are rejected at injection (the workload builder routes
        around failures via :class:`~repro.routing.faults.FaultMaskedRouting`).
    """

    def __init__(self, torus: Torus, failed_edge_ids=()):
        self.torus = torus
        self.alive = np.ones(torus.num_edges, dtype=bool)
        failed = np.asarray(list(failed_edge_ids), dtype=np.int64)
        if failed.size:
            if failed.min() < 0 or failed.max() >= torus.num_edges:
                raise SimulationError(
                    f"failed edge ids must lie in [0, {torus.num_edges})"
                )
            self.alive[failed] = False
        #: per-link packet-traversal counters (the simulator's E(l) estimate)
        self.link_counts = np.zeros(torus.num_edges, dtype=np.int64)

    @property
    def num_failed(self) -> int:
        """Number of failed directed links."""
        return int(np.count_nonzero(~self.alive))

    def check_path_alive(self, edge_ids) -> bool:
        """Whether every link of a path is up."""
        return bool(np.all(self.alive[np.asarray(edge_ids, dtype=np.int64)]))

    def record_traversal(self, edge_id: int) -> None:
        """Count one packet crossing ``edge_id``."""
        if not self.alive[edge_id]:
            raise SimulationError(
                f"packet attempted to traverse failed link {edge_id}"
            )
        self.link_counts[edge_id] += 1

"""Link-counter summaries for simulation output."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinkCountSummary", "summarize_link_counts"]


@dataclass(frozen=True)
class LinkCountSummary:
    """Aggregate view of per-link traversal counters.

    ``max_count`` and ``total_traversals`` are integers in a raw summary
    from :func:`summarize_link_counts`; after :meth:`normalized` they are
    per-exchange averages and may be fractional.
    """

    max_count: float
    mean_count: float
    mean_nonzero: float
    used_links: int
    total_traversals: float

    def normalized(self, rounds: int) -> "LinkCountSummary":
        """Per-exchange figures when the run repeated ``rounds`` exchanges.

        All count figures divide exactly (no flooring): counts that are
        not multiples of ``rounds`` yield fractional per-round averages.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        return LinkCountSummary(
            max_count=self.max_count / rounds,
            mean_count=self.mean_count / rounds,
            mean_nonzero=self.mean_nonzero / rounds,
            used_links=self.used_links,
            total_traversals=self.total_traversals / rounds,
        )


def summarize_link_counts(link_counts: np.ndarray) -> LinkCountSummary:
    """Summarize one per-link counter vector."""
    link_counts = np.asarray(link_counts)
    nonzero = link_counts[link_counts > 0]
    return LinkCountSummary(
        max_count=int(link_counts.max(initial=0)),
        mean_count=float(link_counts.mean()) if link_counts.size else 0.0,
        mean_nonzero=float(nonzero.mean()) if nonzero.size else 0.0,
        used_links=int(nonzero.size),
        total_traversals=int(link_counts.sum()),
    )

"""Node-failure modelling: a dead router kills all its links.

The paper's fault discussion (§7) is phrased in terms of link failures;
in practice whole routers die, taking their ``2d`` incident links in each
direction with them.  These helpers translate node-failure scenarios into
the dense edge-id world the rest of the fault machinery
(:class:`~repro.routing.faults.FaultMaskedRouting`,
:class:`~repro.sim.network.SimNetwork`) already speaks, and account for
the processors lost outright when a *populated* node dies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.placements.base import Placement
from repro.torus.topology import Torus
from repro.util.rng import resolve_rng

__all__ = [
    "edges_of_nodes",
    "random_node_failures",
    "NodeFailureImpact",
    "node_failure_impact",
]


def edges_of_nodes(torus: Torus, node_ids) -> np.ndarray:
    """All directed edges incident to the given nodes (either endpoint).

    A node's failure removes its ``2d`` outgoing and ``2d`` incoming links;
    links between two failed nodes are reported once.
    """
    node_ids = np.unique(np.asarray(node_ids, dtype=np.int64))
    if node_ids.size == 0:
        return np.empty(0, dtype=np.int64)
    ei = torus.edges
    chunks = []
    for dim in range(torus.d):
        for sign in (+1, -1):
            # outgoing links of the dead nodes
            chunks.append(
                ei.edge_ids_array(
                    node_ids,
                    np.full(node_ids.shape, dim, dtype=np.int64),
                    np.full(node_ids.shape, sign, dtype=np.int64),
                )
            )
            # incoming links: the outgoing links of their neighbours back in
            neighbours = ei.neighbors_array(node_ids, dim, sign)
            chunks.append(
                ei.edge_ids_array(
                    neighbours,
                    np.full(neighbours.shape, dim, dtype=np.int64),
                    np.full(neighbours.shape, -sign, dtype=np.int64),
                )
            )
    return np.unique(np.concatenate(chunks))


def random_node_failures(torus: Torus, num_failures: int, seed=None) -> np.ndarray:
    """Choose ``num_failures`` distinct nodes to kill, uniformly."""
    if not 0 <= num_failures <= torus.num_nodes:
        raise ValueError(
            f"num_failures must lie in [0, {torus.num_nodes}], got {num_failures}"
        )
    rng = resolve_rng(seed)
    return np.sort(
        rng.choice(torus.num_nodes, size=num_failures, replace=False)
    ).astype(np.int64)


@dataclass(frozen=True)
class NodeFailureImpact:
    """What a node-failure set does to a placement.

    Attributes
    ----------
    failed_nodes:
        The dead nodes.
    failed_edges:
        Every directed link a dead node touches (feed these to
        ``FaultMaskedRouting`` / ``SimNetwork``).
    lost_processors:
        Processors that died with their node.
    surviving_placement:
        The placement restricted to live nodes (``None`` if every
        processor died).
    """

    failed_nodes: np.ndarray
    failed_edges: np.ndarray
    lost_processors: int
    surviving_placement: Placement | None


def node_failure_impact(placement: Placement, failed_nodes) -> NodeFailureImpact:
    """Assess a node-failure set against a placement."""
    torus = placement.torus
    failed_nodes = np.unique(np.asarray(failed_nodes, dtype=np.int64))
    failed_edges = edges_of_nodes(torus, failed_nodes)
    dead_mask = np.isin(placement.node_ids, failed_nodes)
    lost = int(np.count_nonzero(dead_mask))
    survivors = placement.node_ids[~dead_mask]
    surviving = (
        Placement(torus, survivors, name=f"{placement.name}|survivors")
        if survivors.size
        else None
    )
    return NodeFailureImpact(
        failed_nodes=failed_nodes,
        failed_edges=failed_edges,
        lost_processors=lost,
        surviving_placement=surviving,
    )

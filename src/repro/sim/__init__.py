"""Cycle-accurate store-and-forward packet simulator.

This is the reproduction's substitute for physical torus hardware (see
DESIGN.md §2): messages are injected by processor nodes, follow a path
sampled uniformly from the routing relation (Definition 3's random path
choice), and contend for links — each directed link transmits one packet
per cycle, with FIFO output queues.

The simulator produces per-link traversal counters (whose expectation is
exactly Definition 4's load :math:`\\mathcal{E}(l)`), packet latencies, and
completion time, and supports link-fault injection for the Section 7
fault-tolerance experiments.
"""

from repro.sim.packet import Packet
from repro.sim.network import SimNetwork
from repro.sim.engine import CycleEngine, SimulationResult
from repro.sim.workloads import complete_exchange_packets, build_packets
from repro.sim.metrics import summarize_link_counts
from repro.sim.fault_injection import (
    random_link_failures,
    pair_connectivity_under_faults,
    FaultToleranceStats,
)
from repro.sim.validate import compare_sim_to_analytic, ValidationReport
from repro.sim.node_faults import (
    edges_of_nodes,
    random_node_failures,
    node_failure_impact,
    NodeFailureImpact,
)
from repro.sim.wormhole import (
    WormholeConfig,
    WormholeEngine,
    WormholeResult,
    assign_virtual_channels,
)

__all__ = [
    "Packet",
    "SimNetwork",
    "CycleEngine",
    "SimulationResult",
    "complete_exchange_packets",
    "build_packets",
    "summarize_link_counts",
    "random_link_failures",
    "pair_connectivity_under_faults",
    "FaultToleranceStats",
    "compare_sim_to_analytic",
    "ValidationReport",
    "edges_of_nodes",
    "random_node_failures",
    "node_failure_impact",
    "NodeFailureImpact",
    "WormholeConfig",
    "WormholeEngine",
    "WormholeResult",
    "assign_virtual_channels",
]

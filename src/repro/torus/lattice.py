"""The d-dimensional k-ary array :math:`A_k^d` and its geometric embedding.

The paper's Appendix proves Proposition 1 by working with the *array*
(mesh) :math:`A_k^d` — the torus minus its wraparound links — embedded in
:math:`\\mathbb{R}^d` at the integer lattice points
:math:`\\{0, …, k-1\\}^d`.  A hyperplane with direction
:math:`(1, γ, γ^2, …, γ^{d-1})`, :math:`γ` transcendental and
:math:`1 < γ < 2^{1/(d-1)}`, then

* contains at most one lattice point for any offset ``t``, and
* crosses at most :math:`2dk^{d-1}` array edges.

:class:`ArrayLattice` provides exactly the pieces the sweep algorithm in
:mod:`repro.bisection.hyperplane` needs: the embedding, the sweep
direction, dot products, and classification of edges against a hyperplane
offset.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.torus.coords import all_coords
from repro.util.validation import check_torus_params

__all__ = ["ArrayLattice", "sweep_gamma", "sweep_direction"]


def sweep_gamma(d: int) -> float:
    """A sweep base :math:`γ` strictly inside :math:`(1, 2^{1/(d-1)})`.

    The paper requires a transcendental :math:`γ`; in floating point we can
    only approximate, so we derive γ from :math:`π` (transcendental) mapped
    into the open interval:  γ = 1 + (2^{1/(d-1)} − 1)·(π − 3), with
    :math:`π − 3 ≈ 0.1416` keeping γ comfortably away from both endpoints.
    For ``d == 1`` the interval is vacuous (any γ > 1 works since there are
    no higher powers); we return :math:`π/2`.

    The no-two-lattice-points property is *verified numerically* by the
    sweep algorithm (distinct dot products over the placement); if a
    collision is ever detected the caller perturbs γ deterministically.
    """
    if d < 1:
        raise InvalidParameterError(f"dimension d must be >= 1, got {d}")
    if d == 1:
        return math.pi / 2
    upper = 2.0 ** (1.0 / (d - 1))
    return 1.0 + (upper - 1.0) * (math.pi - 3.0)


def sweep_direction(d: int, gamma: float | None = None) -> np.ndarray:
    """Unit vector :math:`η` in the direction :math:`(1, γ, …, γ^{d-1})`."""
    if gamma is None:
        gamma = sweep_gamma(d)
    if d >= 2 and not (1.0 < gamma < 2.0 ** (1.0 / (d - 1))):
        raise InvalidParameterError(
            f"gamma must lie in (1, 2^(1/(d-1))) = (1, {2.0 ** (1.0 / (d - 1)):.6f}) "
            f"for d={d}; got {gamma}"
        )
    vec = np.array([gamma**i for i in range(d)], dtype=np.float64)
    return vec / np.linalg.norm(vec)


class ArrayLattice:
    """The array :math:`A_k^d` with its standard embedding in ``R^d``.

    Parameters
    ----------
    k, d:
        Array parameters (same ranges as the torus).
    gamma:
        Optional override of the sweep base; defaults to :func:`sweep_gamma`.
    """

    def __init__(self, k: int, d: int, gamma: float | None = None):
        self.k, self.d = check_torus_params(k, d)
        self.gamma = sweep_gamma(self.d) if gamma is None else float(gamma)
        self.eta = sweep_direction(self.d, self.gamma)

    # ----------------------------------------------------------- structure

    @property
    def num_nodes(self) -> int:
        """Node count :math:`k^d` (same node set as the torus)."""
        return self.k**self.d

    @property
    def num_undirected_edges(self) -> int:
        """Array (mesh) edge count :math:`d(k-1)k^{d-1}` (no wraparound)."""
        return self.d * (self.k - 1) * self.k ** (self.d - 1)

    @property
    def num_wraparound_edges(self) -> int:
        """Undirected wraparound links the torus adds: :math:`dk^{d-1}`.

        For ``k == 2`` the "wraparound" link is parallel to the array link;
        it is still counted, matching the paper's edge accounting.
        """
        return self.d * self.k ** (self.d - 1)

    def node_positions(self) -> np.ndarray:
        """Embedded positions of all nodes — the integer lattice, ``(k^d, d)``."""
        return all_coords(self.k, self.d).astype(np.float64)

    # --------------------------------------------------------------- sweep

    def projections(self, coords=None) -> np.ndarray:
        """Dot products :math:`⟨a, η⟩` of (given or all) node coordinates."""
        pts = (
            self.node_positions()
            if coords is None
            else np.asarray(coords, dtype=np.float64)
        )
        return pts @ self.eta

    def edges_crossed(self, t0: float) -> int:
        """Number of undirected array edges crossed by :math:`\\mathcal{H}_{t0}`.

        An edge between lattice points :math:`a` and :math:`a + e_i` is
        crossed iff :math:`⟨a, η⟩ < t_0 < ⟨a, η⟩ + η_i`.  Computed fully
        vectorized, one pass per dimension.
        """
        proj = self.projections()
        coords = all_coords(self.k, self.d)
        total = 0
        for i in range(self.d):
            tails = proj[coords[:, i] < self.k - 1]
            total += int(np.count_nonzero((tails < t0) & (t0 < tails + self.eta[i])))
        return total

    def max_edges_crossed_bound(self) -> int:
        """The Appendix's bound: any sweep offset crosses ≤ :math:`2dk^{d-1}` edges."""
        return 2 * self.d * self.k ** (self.d - 1)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ArrayLattice(k={self.k}, d={self.d}, gamma={self.gamma:.6f})"

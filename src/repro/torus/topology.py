"""The :class:`Torus` object — :math:`T_k^d` per Definition 1 of the paper.

A :class:`Torus` bundles the parameters ``(k, d)`` with the coordinate and
edge indexing machinery, and exposes the distance/neighbourhood queries the
rest of the package builds on.  It is immutable and cheap to construct (no
adjacency materialization; everything is computed from ids on demand).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.torus.coords import all_coords, coords_to_ids, ids_to_coords
from repro.torus.edges import EdgeIndex
from repro.util.modular import (
    cyclic_distance_array,
    lee_distance,
    lee_distance_array,
)
from repro.util.validation import check_torus_params

__all__ = ["Torus"]


class Torus:
    """The d-dimensional k-torus :math:`T_k^d` as a directed graph.

    Parameters
    ----------
    k:
        Ring size (radix) of every dimension, ``k >= 2``.
    d:
        Number of dimensions, ``d >= 1``.

    Examples
    --------
    >>> t = Torus(4, 2)
    >>> t.num_nodes, t.num_edges
    (16, 64)
    >>> t.lee_distance((0, 0), (3, 2))
    3
    """

    def __init__(self, k: int, d: int):
        self.k, self.d = check_torus_params(k, d)

    # --------------------------------------------------------------- sizes

    @property
    def shape(self) -> tuple[int, ...]:
        """The coordinate-space shape ``(k,) * d``."""
        return (self.k,) * self.d

    @property
    def num_nodes(self) -> int:
        """Total node count :math:`k^d`."""
        return self.k**self.d

    @property
    def num_edges(self) -> int:
        """Total directed edge (link) count :math:`2dk^d`."""
        return 2 * self.d * self.num_nodes

    @property
    def degree(self) -> int:
        """Out-degree (= in-degree) of every node, :math:`2d`."""
        return 2 * self.d

    @cached_property
    def edges(self) -> EdgeIndex:
        """The dense directed-edge index for this torus."""
        return EdgeIndex(self.k, self.d)

    # --------------------------------------------------------- coordinates

    def node_id(self, coord) -> int:
        """Dense id of the node at ``coord``."""
        return int(coords_to_ids(coord, self.k, self.d)[0])

    def node_ids(self, coords) -> np.ndarray:
        """Vectorized :meth:`node_id` for ``(n, d)`` coordinate arrays."""
        return coords_to_ids(coords, self.k, self.d)

    def coord(self, node_id: int) -> tuple[int, ...]:
        """Coordinate tuple of a node id."""
        return tuple(int(c) for c in ids_to_coords(node_id, self.k, self.d))

    def coords(self, node_ids) -> np.ndarray:
        """Vectorized :meth:`coord` — returns an ``(n, d)`` array."""
        return np.atleast_2d(ids_to_coords(node_ids, self.k, self.d))

    def all_node_coords(self) -> np.ndarray:
        """Coordinates of every node, row ``i`` being node id ``i``."""
        return all_coords(self.k, self.d)

    def contains_coord(self, coord) -> bool:
        """Whether ``coord`` is a valid (already-reduced) coordinate tuple."""
        arr = np.asarray(coord)
        return (
            arr.ndim == 1
            and arr.shape[0] == self.d
            and bool(np.all((0 <= arr) & (arr < self.k)))
        )

    # ------------------------------------------------------------ distance

    def lee_distance(self, p, q) -> int:
        """Shortest-path (Lee) distance between coordinates ``p`` and ``q``."""
        return int(lee_distance(tuple(p), tuple(q), self.k))

    def lee_distance_ids(self, u: int, v: int) -> int:
        """Lee distance between two node ids."""
        return self.lee_distance(self.coord(u), self.coord(v))

    def lee_distances_array(self, p_coords, q_coords) -> np.ndarray:
        """Vectorized Lee distance over ``(n, d)`` coordinate arrays."""
        return lee_distance_array(
            np.asarray(p_coords, dtype=np.int64),
            np.asarray(q_coords, dtype=np.int64),
            self.k,
        )

    def cyclic_distances_array(self, p_coords, q_coords) -> np.ndarray:
        """Per-dimension cyclic distances, shape ``(n, d)``."""
        return cyclic_distance_array(
            np.asarray(p_coords, dtype=np.int64),
            np.asarray(q_coords, dtype=np.int64),
            self.k,
        )

    @property
    def diameter(self) -> int:
        """Maximum Lee distance: :math:`d\\lfloor k/2 \\rfloor`."""
        return self.d * (self.k // 2)

    # ----------------------------------------------------------- neighbors

    def neighbors(self, node_id: int) -> list[int]:
        """All ``2d`` out-neighbours of a node, ordered by (dim, +/−).

        For ``k == 2`` the two neighbours in a dimension coincide as nodes
        (but remain distinct directed links); both are listed.
        """
        out = []
        for dim in range(self.d):
            out.append(self.edges.neighbor(node_id, dim, +1))
            out.append(self.edges.neighbor(node_id, dim, -1))
        return out

    # -------------------------------------------------------------- basics

    @property
    def is_even(self) -> bool:
        """Whether the radix ``k`` is even (many closed forms split on this)."""
        return self.k % 2 == 0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Torus) and other.k == self.k and other.d == self.d
        )

    def __hash__(self) -> int:
        return hash(("Torus", self.k, self.d))

    def __repr__(self) -> str:
        return f"Torus(k={self.k}, d={self.d})"

"""Principal subtori of :math:`T_k^d`.

Fixing one coordinate ``a_dim = value`` selects a subgraph isomorphic to
:math:`T_k^{d-1}` — a *principal subtorus* (Definition 1).  Uniform
placements (and Theorem 1's bisection construction) are phrased in terms of
how many processors each principal subtorus receives.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.torus.coords import ids_to_coords
from repro.torus.topology import Torus

__all__ = [
    "principal_subtorus_nodes",
    "subtorus_layer_counts",
    "cut_edges_between_layers",
]


def principal_subtorus_nodes(torus: Torus, dim: int, value: int) -> np.ndarray:
    """Node ids of the principal subtorus ``{a : a_dim = value}``.

    Returns a sorted ``(k**(d-1),)`` array of node ids.
    """
    if not 0 <= dim < torus.d:
        raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
    if not 0 <= value < torus.k:
        raise InvalidParameterError(f"value {value} outside [0, {torus.k})")
    coords = torus.all_node_coords()
    return np.nonzero(coords[:, dim] == value)[0].astype(np.int64)


def subtorus_layer_counts(torus: Torus, node_ids, dim: int) -> np.ndarray:
    """Histogram of ``node_ids`` over the ``k`` principal subtori along ``dim``.

    ``result[v]`` is how many of the given nodes lie in the subtorus
    ``a_dim = v``.  A placement is *uniform along dim* iff this histogram is
    constant.
    """
    if not 0 <= dim < torus.d:
        raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
    node_ids = np.asarray(node_ids, dtype=np.int64)
    coords = np.atleast_2d(ids_to_coords(node_ids, torus.k, torus.d))
    return np.bincount(coords[:, dim], minlength=torus.k).astype(np.int64)


def cut_edges_between_layers(torus: Torus, dim: int, boundary: int) -> np.ndarray:
    """Directed edge ids crossing between layers ``boundary`` and ``boundary+1``.

    These are the :math:`2k^{d-1}` links (both directions) between the
    principal subtori ``a_dim = boundary`` and ``a_dim = boundary+1 (mod k)``
    — one of the two parallel cuts in Theorem 1's bisection.
    """
    if not 0 <= dim < torus.d:
        raise InvalidParameterError(f"dim {dim} outside [0, {torus.d})")
    boundary = boundary % torus.k
    nxt = (boundary + 1) % torus.k
    lower = principal_subtorus_nodes(torus, dim, boundary)
    upper = principal_subtorus_nodes(torus, dim, nxt)
    ei = torus.edges
    forward = ei.edge_ids_array(lower, np.full(lower.shape, dim), np.ones(lower.shape, dtype=np.int64))
    backward = ei.edge_ids_array(upper, np.full(upper.shape, dim), -np.ones(upper.shape, dtype=np.int64))
    return np.sort(np.concatenate([forward, backward]))

"""Dense indexing of the directed edges (links) of :math:`T_k^d`.

Every node has exactly ``2d`` outgoing links — one per (dimension, sign)
pair — so the directed edge set has size ``2d·k^d`` and admits the dense id

.. code-block:: text

    edge_id = node_id * 2d + 2*dim + sign_bit

where ``sign_bit`` is 0 for the ``+`` ring direction and 1 for ``−``.
Loads, fault masks, and simulator counters are all flat arrays indexed by
this id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.torus.coords import coords_to_ids, ids_to_coords
from repro.util.validation import check_torus_params

__all__ = ["Edge", "EdgeIndex"]

#: sign-bit encoding: the + ring direction.
SIGN_PLUS = 0
#: sign-bit encoding: the − ring direction.
SIGN_MINUS = 1


@dataclass(frozen=True)
class Edge:
    """A decoded directed edge of :math:`T_k^d`.

    Attributes
    ----------
    tail:
        Node id of the edge's source.
    head:
        Node id of the edge's destination.
    dim:
        Dimension (0-based) the edge travels along.
    sign:
        ``+1`` for the ``+`` ring direction, ``-1`` for ``−``.
    edge_id:
        The dense id of this edge.
    """

    tail: int
    head: int
    dim: int
    sign: int
    edge_id: int


class EdgeIndex:
    """Bidirectional mapping between directed edges and dense edge ids.

    Parameters
    ----------
    k, d:
        The torus parameters.

    Notes
    -----
    All heavy-duty methods (the ``*_array`` family) operate on numpy arrays
    without Python-level loops; the scalar methods are conveniences for
    tests and display code.
    """

    def __init__(self, k: int, d: int):
        self.k, self.d = check_torus_params(k, d)
        self.num_nodes = self.k**self.d
        self.num_edges = 2 * self.d * self.num_nodes
        # Stride of one unit step in dimension `dim` in C-order node ids.
        self._strides = np.array(
            [self.k ** (self.d - 1 - i) for i in range(self.d)], dtype=np.int64
        )

    # ------------------------------------------------------------------ ids

    def edge_id(self, node_id: int, dim: int, sign: int) -> int:
        """Dense id of the link leaving ``node_id`` along ``dim`` with ``sign``.

        ``sign`` is ``+1`` or ``-1``.
        """
        self._check_dim(dim)
        sign_bit = self._sign_bit(sign)
        node_id = int(node_id)
        if not 0 <= node_id < self.num_nodes:
            raise InvalidParameterError(
                f"node id {node_id} outside [0, {self.num_nodes})"
            )
        return node_id * 2 * self.d + 2 * dim + sign_bit

    def edge_ids_array(self, node_ids, dims, signs) -> np.ndarray:
        """Vectorized :meth:`edge_id` over broadcastable arrays.

        ``signs`` holds ``+1``/``-1`` values.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        dims = np.asarray(dims, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int64)
        sign_bits = (signs < 0).astype(np.int64)
        return node_ids * (2 * self.d) + 2 * dims + sign_bits

    def decode(self, edge_id: int) -> Edge:
        """Decode a dense edge id into an :class:`Edge` record."""
        edge_id = int(edge_id)
        if not 0 <= edge_id < self.num_edges:
            raise InvalidParameterError(
                f"edge id {edge_id} outside [0, {self.num_edges})"
            )
        node_id, rem = divmod(edge_id, 2 * self.d)
        dim, sign_bit = divmod(rem, 2)
        sign = +1 if sign_bit == SIGN_PLUS else -1
        head = self.neighbor(node_id, dim, sign)
        return Edge(tail=node_id, head=head, dim=dim, sign=sign, edge_id=edge_id)

    def decode_arrays(self, edge_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized decode: returns ``(tails, dims, signs)`` arrays."""
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        tails, rem = np.divmod(edge_ids, 2 * self.d)
        dims, sign_bits = np.divmod(rem, 2)
        signs = np.where(sign_bits == SIGN_PLUS, 1, -1).astype(np.int64)
        return tails, dims, signs

    # ------------------------------------------------------------ neighbors

    def neighbor(self, node_id: int, dim: int, sign: int) -> int:
        """Node id reached from ``node_id`` by one hop along ``dim``/``sign``."""
        self._check_dim(dim)
        coord = ids_to_coords(node_id, self.k, self.d).copy()
        coord[dim] = (coord[dim] + (1 if sign > 0 else -1)) % self.k
        return int(coords_to_ids(coord, self.k, self.d)[0])

    def neighbors_array(self, node_ids, dim: int, sign: int) -> np.ndarray:
        """Vectorized :meth:`neighbor` for a fixed ``(dim, sign)``."""
        self._check_dim(dim)
        coords = ids_to_coords(np.asarray(node_ids, dtype=np.int64), self.k, self.d)
        coords = np.atleast_2d(coords).copy()
        coords[:, dim] = np.mod(coords[:, dim] + (1 if sign > 0 else -1), self.k)
        return coords_to_ids(coords, self.k, self.d)

    def step_coords(self, coords: np.ndarray, dim: int, sign: int) -> np.ndarray:
        """Return a copy of ``(n, d)`` coordinates advanced one hop."""
        self._check_dim(dim)
        out = np.array(coords, dtype=np.int64, copy=True)
        out[:, dim] = np.mod(out[:, dim] + (1 if sign > 0 else -1), self.k)
        return out

    # ------------------------------------------------------------- lookups

    def edge_between(self, tail_id: int, head_id: int) -> int:
        """Dense id of the directed edge ``tail → head``.

        Raises
        ------
        InvalidParameterError
            If the two nodes are not adjacent on the torus.
        """
        tc = ids_to_coords(tail_id, self.k, self.d)
        hc = ids_to_coords(head_id, self.k, self.d)
        diff_dims = np.nonzero(tc != hc)[0]
        if len(diff_dims) != 1:
            raise InvalidParameterError(
                f"nodes {tail_id} and {head_id} differ in {len(diff_dims)} "
                "dimensions; torus edges differ in exactly one"
            )
        dim = int(diff_dims[0])
        step = (int(hc[dim]) - int(tc[dim])) % self.k
        if step == 1 % self.k:
            sign = +1
        elif step == (-1) % self.k:
            sign = -1
        else:
            raise InvalidParameterError(
                f"nodes {tail_id} and {head_id} are not adjacent in dim {dim}"
            )
        return self.edge_id(int(tail_id), dim, sign)

    def reverse(self, edge_id: int) -> int:
        """Dense id of the oppositely-directed edge over the same link."""
        e = self.decode(edge_id)
        return self.edge_id(e.head, e.dim, -e.sign)

    def all_edges(self) -> np.ndarray:
        """All dense edge ids, ``arange(num_edges)``."""
        return np.arange(self.num_edges, dtype=np.int64)

    def undirected_pair_ids(self) -> np.ndarray:
        """One canonical representative per undirected link.

        Returns the ids of every ``+``-direction edge; together with their
        :meth:`reverse` partners they cover all directed edges exactly once.
        For ``k == 2`` the ``+`` and ``−`` links between a node pair are
        parallel but distinct directed links, and both are still reported
        through their ``+`` representatives.
        """
        ids = self.all_edges()
        _, _, signs = self.decode_arrays(ids)
        return ids[signs > 0]

    # ------------------------------------------------------------ internal

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.d:
            raise InvalidParameterError(
                f"dimension index {dim} outside [0, {self.d})"
            )

    @staticmethod
    def _sign_bit(sign: int) -> int:
        if sign in (1, +1):
            return SIGN_PLUS
        if sign == -1:
            return SIGN_MINUS
        raise InvalidParameterError(f"sign must be +1 or -1, got {sign}")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"EdgeIndex(k={self.k}, d={self.d}, num_edges={self.num_edges})"

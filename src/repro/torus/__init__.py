"""The d-dimensional k-torus substrate (Definition 1 of the paper).

This subpackage models :math:`T_k^d` as a directed graph with dense integer
node and edge indexing, so that all placement/routing/load machinery can
work on flat numpy arrays:

* :mod:`repro.torus.coords` — coordinate ↔ node-id conversion,
* :mod:`repro.torus.topology` — the :class:`Torus` object,
* :mod:`repro.torus.edges` — the directed-edge indexing scheme,
* :mod:`repro.torus.subtorus` — principal subtori,
* :mod:`repro.torus.graph` — networkx export and classical graph facts,
* :mod:`repro.torus.lattice` — the array :math:`A_k^d` embedding used by
  the paper's Appendix (hyperplane-sweep bisection).
"""

from repro.torus.topology import Torus
from repro.torus.edges import EdgeIndex, Edge
from repro.torus.coords import coords_to_ids, ids_to_coords, all_coords
from repro.torus.subtorus import principal_subtorus_nodes, subtorus_layer_counts
from repro.torus.graph import (
    to_networkx,
    to_networkx_undirected,
    torus_bisection_width,
    full_torus_diameter,
)
from repro.torus.lattice import ArrayLattice

__all__ = [
    "Torus",
    "EdgeIndex",
    "Edge",
    "coords_to_ids",
    "ids_to_coords",
    "all_coords",
    "principal_subtorus_nodes",
    "subtorus_layer_counts",
    "to_networkx",
    "to_networkx_undirected",
    "torus_bisection_width",
    "full_torus_diameter",
    "ArrayLattice",
]

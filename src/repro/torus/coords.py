"""Coordinate ↔ dense node-id conversion for :math:`T_k^d`.

Node ids are the C-order (row-major) ravel of the coordinate tuple, i.e.
``id = a_1·k^{d-1} + a_2·k^{d-2} + … + a_d`` for coordinate
``(a_1, …, a_d)``.  Everything is vectorized: coordinates travel as
``(n, d)`` int64 arrays and ids as ``(n,)`` int64 arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.validation import check_torus_params

__all__ = [
    "coords_to_ids",
    "ids_to_coords",
    "all_coords",
    "normalize_coords",
    "coord_tuple",
]


def normalize_coords(coords, k: int, d: int) -> np.ndarray:
    """Coerce ``coords`` into an ``(n, d)`` int64 array of residues mod ``k``.

    Accepts a single coordinate tuple, a list of tuples, or any array-like
    of shape ``(d,)`` or ``(n, d)``.  Values are reduced modulo ``k``.
    """
    k, d = check_torus_params(k, d)
    arr = np.asarray(coords, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != d:
        raise InvalidParameterError(
            f"coordinates must have shape (n, {d}); got {arr.shape}"
        )
    return np.mod(arr, k)


def coords_to_ids(coords, k: int, d: int) -> np.ndarray:
    """Map coordinates to dense node ids (C-order ravel).

    Parameters
    ----------
    coords:
        Array-like of shape ``(n, d)`` (or a single ``(d,)`` tuple).
    k, d:
        Torus parameters.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` int64 node ids in ``[0, k**d)``.
    """
    arr = normalize_coords(coords, k, d)
    return np.ravel_multi_index(tuple(arr.T), (k,) * d).astype(np.int64)


def ids_to_coords(ids, k: int, d: int) -> np.ndarray:
    """Map dense node ids back to ``(n, d)`` coordinate arrays."""
    k, d = check_torus_params(k, d)
    ids = np.asarray(ids, dtype=np.int64)
    scalar = ids.ndim == 0
    ids = np.atleast_1d(ids)
    if ids.min(initial=0) < 0 or (ids.size and ids.max() >= k**d):
        raise InvalidParameterError(
            f"node ids must lie in [0, {k**d}), got range "
            f"[{ids.min()}, {ids.max()}]"
        )
    out = np.stack(np.unravel_index(ids, (k,) * d), axis=-1).astype(np.int64)
    return out[0] if scalar else out


def all_coords(k: int, d: int) -> np.ndarray:
    """All ``k**d`` coordinates of :math:`T_k^d` as a ``(k**d, d)`` array.

    Row ``i`` is the coordinate of node id ``i`` (C order), so
    ``coords_to_ids(all_coords(k, d), k, d) == arange(k**d)``.
    """
    k, d = check_torus_params(k, d)
    return ids_to_coords(np.arange(k**d, dtype=np.int64), k, d)


def coord_tuple(coord) -> tuple[int, ...]:
    """Return ``coord`` as a plain tuple of Python ints (hashable key)."""
    return tuple(int(c) for c in np.asarray(coord).ravel())

"""networkx export and classical graph facts about :math:`T_k^d`.

These conversions are deliberately kept out of the hot paths — they exist
for cross-validation (shortest paths vs Lee distance, connectivity under
faults) and for users who want to hand the torus to generic graph tooling.
"""

from __future__ import annotations

import networkx as nx

from repro.torus.topology import Torus

__all__ = [
    "to_networkx",
    "to_networkx_undirected",
    "torus_bisection_width",
    "full_torus_diameter",
]


def to_networkx(torus: Torus, removed_edges=None) -> "nx.DiGraph":
    """Build the directed networkx graph of ``torus``.

    Nodes are dense node ids; each edge carries its dense ``edge_id``,
    ``dim``, and ``sign`` as attributes.  ``removed_edges`` (an iterable of
    dense edge ids) supports building the faulted network.

    Notes
    -----
    For ``k == 2`` the ``+`` and ``−`` links between a node pair map to the
    same ``(u, v)`` digraph edge; the ``−`` link's attributes overwrite the
    ``+`` link's.  Fault experiments on ``k == 2`` should therefore use the
    dense edge-id machinery directly rather than the networkx view.
    """
    removed = set(int(e) for e in removed_edges) if removed_edges is not None else set()
    g = nx.DiGraph(k=torus.k, d=torus.d)
    g.add_nodes_from(range(torus.num_nodes))
    ei = torus.edges
    for edge_id in range(torus.num_edges):
        if edge_id in removed:
            continue
        e = ei.decode(edge_id)
        g.add_edge(e.tail, e.head, edge_id=e.edge_id, dim=e.dim, sign=e.sign)
    return g


def to_networkx_undirected(torus: Torus) -> "nx.Graph":
    """Undirected simple-graph view of the torus (one edge per link pair)."""
    return to_networkx(torus).to_undirected()


def torus_bisection_width(k: int, d: int, directed: bool = True) -> int:
    """Bisection width of the fully populated torus, per Section 1.

    For even ``k`` the optimal bisection cuts the torus across one dimension
    at two antipodal boundaries, removing :math:`2k^{d-1}` undirected links
    (:math:`4k^{d-1}` directed), which is the figure the paper quotes.

    Parameters
    ----------
    directed:
        When True (default, matching the paper), count each unidirectional
        link separately.
    """
    width = 4 * k ** (d - 1)
    return width if directed else width // 2


def full_torus_diameter(k: int, d: int) -> int:
    """Graph diameter of :math:`T_k^d`: :math:`d\\lfloor k/2\\rfloor`."""
    return d * (k // 2)

"""The bench observatory: BENCH_*.json baselines → one trajectory file.

The committed ``benchmarks/BENCH_*.json`` baselines are point-pins: each
records what one benchmark measured (or must measure exactly) the last
time it was regenerated, but nothing relates successive regenerations.
This module aggregates every committed baseline into one schema-versioned
``benchmarks/BENCH_trajectory.json``:

* each baseline contributes named **metrics** (``batch.speedup``,
  ``exp22.symmetry_bnb_T6.pair_updates``, ...), classified by
  *direction* — ``higher``/``lower`` for thresholded measurements,
  ``exact`` for deterministic pins that must never drift;
* each metric carries a **series** of ``{value, recorded_unix}`` points,
  appended on regeneration only when the value actually changed, so the
  committed file stays byte-stable across no-op report runs;
* thresholds come from the baselines' own ``min_*`` pins where they
  exist (``batch.speedup`` fails below ``min_speedup``), ``exact``
  metrics pin to their first recorded value, and everything else is
  informational (machine-dependent throughputs are tracked, never
  gated).

``repro bench report`` regenerates the trajectory; ``repro bench report
--check`` recomputes current values and exits non-zero if any gated
metric regressed beyond its pinned tolerance — the CI regression gate.
Unknown future ``BENCH_*.json`` files degrade gracefully: every numeric
leaf is tracked as an informational metric, so the trajectory always
covers the whole committed baseline set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.console import info, wall_clock

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "extract_metrics",
    "build_trajectory",
    "check_trajectory",
    "run_report",
]

TRAJECTORY_SCHEMA_VERSION = 1

#: metrics are (name, value, direction, threshold) tuples.
Metric = tuple[str, Any, str, float | None]


# ------------------------------------------------------------- extraction


def _numeric_leaves(data: Any, prefix: str) -> Iterator[tuple[str, float]]:
    if isinstance(data, dict):
        for key in sorted(data):
            yield from _numeric_leaves(data[key], f"{prefix}.{key}")
    elif isinstance(data, bool):
        return
    elif isinstance(data, (int, float)):
        yield prefix, float(data)


def _extract_batch(data: dict[str, Any]) -> Iterator[Metric]:
    measured = data.get("measured", {})
    yield "batch.speedup", measured.get("speedup"), "higher", data.get(
        "min_speedup"
    )
    yield "batch.hit_rate", measured.get("hit_rate"), "higher", data.get(
        "min_hit_rate"
    )
    yield "batch.sequential_ms", measured.get("sequential_ms"), "lower", None
    yield "batch.batched_ms", measured.get("batched_ms"), "lower", None
    yield "batch.emax_values", data.get("emax_values"), "exact", None


def _extract_engines(data: dict[str, Any]) -> Iterator[Metric]:
    for config in data.get("configs", []):
        torus = str(config.get("torus", "?"))
        yield f"engines.{torus}.pairs", config.get("pairs"), "exact", None
        yield f"engines.{torus}.emax", config.get("emax"), "exact", None
        for backend, rate in sorted(config.get("pairs_per_sec", {}).items()):
            yield (
                f"engines.{torus}.pairs_per_sec.{backend}",
                rate,
                "higher",
                None,
            )


def _extract_exp22(data: dict[str, Any]) -> Iterator[Metric]:
    for case, counts in sorted(data.get("counts", {}).items()):
        for field, value in sorted(counts.items()):
            yield f"exp22.{case}.{field}", value, "exact", None


def _extract_lint(data: dict[str, Any]) -> Iterator[Metric]:
    yield "lint.rules", len(data.get("rules", [])), "exact", None
    corpus = data.get("corpus", {})
    yield "lint.corpus.files", corpus.get("files"), "exact", None
    for code, count in sorted(corpus.get("per_file", {}).items()):
        yield f"lint.corpus.per_file.{code}", count, "exact", None
    self_lint = data.get("self_lint", {})
    yield "lint.self_findings", self_lint.get("findings"), "exact", None
    for scope, rate in sorted(data.get("files_per_sec", {}).items()):
        yield f"lint.files_per_sec.{scope}", rate, "higher", None


_EXTRACTORS: dict[str, Callable[[dict[str, Any]], Iterator[Metric]]] = {
    "BENCH_batch.json": _extract_batch,
    "BENCH_engines.json": _extract_engines,
    "BENCH_exp22.json": _extract_exp22,
    "BENCH_lint.json": _extract_lint,
}


def extract_metrics(name: str, data: dict[str, Any]) -> list[Metric]:
    """The named metrics one baseline file contributes.

    Known baselines get curated extraction (thresholds, exactness);
    unknown ones fall back to every numeric leaf as an informational
    series, keyed by the filename stem.
    """
    extractor = _EXTRACTORS.get(name)
    if extractor is not None:
        metrics = [m for m in extractor(data) if m[1] is not None]
    else:
        stem = name.removeprefix("BENCH_").removesuffix(".json")
        metrics = [
            (metric, value, "higher", None)
            for metric, value in _numeric_leaves(data, stem)
        ]
    return metrics


# ------------------------------------------------------------- trajectory


def build_trajectory(
    benchmarks_dir: str | Path,
    previous: dict[str, Any] | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """Aggregate every ``BENCH_*.json`` into the trajectory structure.

    ``previous`` (a loaded trajectory of the same schema version) seeds
    the per-metric series; a new point is appended only when a metric's
    current value differs from its latest recorded one, so regenerating
    against unchanged baselines is a no-op on the series.  Metrics whose
    source baseline disappeared are retired (dropped with a note in
    ``retired``); ``exact`` metrics keep their first value as the pin.
    """
    directory = Path(benchmarks_dir)
    sources = sorted(
        p.name for p in directory.glob("BENCH_*.json")
        if p.name != "BENCH_trajectory.json"
    )
    stamp = wall_clock() if now is None else now
    old_metrics: dict[str, Any] = {}
    if previous and previous.get("schema_version") == TRAJECTORY_SCHEMA_VERSION:
        old_metrics = dict(previous.get("metrics", {}))

    metrics: dict[str, Any] = {}
    for source in sources:
        data = json.loads((directory / source).read_text(encoding="utf-8"))
        for name, value, direction, threshold in extract_metrics(source, data):
            entry = old_metrics.get(name)
            series = list(entry.get("series", [])) if entry else []
            if not series or series[-1]["value"] != value:
                series.append({"value": value, "recorded_unix": stamp})
            metrics[name] = {
                "source": source,
                "direction": direction,
                "threshold": threshold,
                "series": series,
            }
    retired = sorted(set(old_metrics) - set(metrics))
    trajectory: dict[str, Any] = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "description": (
            "Per-metric history of the committed BENCH_*.json baselines, "
            "regenerated by `repro bench report`. direction=exact metrics "
            "pin to their first recorded value; thresholded metrics fail "
            "`repro bench report --check` when the latest value violates "
            "the pinned bound; threshold=null series are informational."
        ),
        "sources": sources,
        "metrics": metrics,
    }
    if retired:
        trajectory["retired"] = retired
    return trajectory


def check_trajectory(
    trajectory: dict[str, Any], benchmarks_dir: str | Path
) -> list[str]:
    """Regression check: current baseline values vs the trajectory's pins.

    Returns human-readable violation strings (empty = pass):

    * an ``exact`` metric whose current value differs from its first
      recorded (pinned) value;
    * a thresholded ``higher``/``lower`` metric whose current value is
      on the wrong side of the threshold;
    * a baseline file present in the trajectory's sources but missing
      on disk (a silently dropped pin is itself a regression).
    """
    directory = Path(benchmarks_dir)
    if trajectory.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
        return [
            f"trajectory schema_version "
            f"{trajectory.get('schema_version')!r} != supported "
            f"{TRAJECTORY_SCHEMA_VERSION}"
        ]
    violations: list[str] = []
    current: dict[str, Metric] = {}
    for source in trajectory.get("sources", []):
        path = directory / source
        if not path.exists():
            violations.append(
                f"{source}: baseline file missing (was in the trajectory)"
            )
            continue
        data = json.loads(path.read_text(encoding="utf-8"))
        for metric in extract_metrics(source, data):
            current[metric[0]] = metric

    for name, entry in sorted(trajectory.get("metrics", {}).items()):
        series = entry.get("series", [])
        if not series:
            continue
        present = current.get(name)
        if present is None:
            violations.append(
                f"{name}: metric vanished from {entry.get('source')}"
            )
            continue
        _, value, _, _ = present
        direction = entry.get("direction")
        threshold = entry.get("threshold")
        if direction == "exact":
            pinned = series[0]["value"]
            if value != pinned:
                violations.append(
                    f"{name}: exact pin drifted — {pinned!r} -> {value!r}"
                )
        elif threshold is not None:
            if direction == "higher" and value < threshold:
                violations.append(
                    f"{name}: {value!r} fell below the pinned minimum "
                    f"{threshold!r}"
                )
            elif direction == "lower" and value > threshold:
                violations.append(
                    f"{name}: {value!r} exceeded the pinned maximum "
                    f"{threshold!r}"
                )
    return violations


def run_report(
    benchmarks_dir: str | Path = "benchmarks",
    output: str | Path | None = None,
    check: bool = False,
) -> int:
    """The ``repro bench report`` entry point; returns the exit code."""
    directory = Path(benchmarks_dir)
    out_path = (
        Path(output) if output is not None
        else directory / "BENCH_trajectory.json"
    )
    previous: dict[str, Any] | None = None
    if out_path.exists():
        previous = json.loads(out_path.read_text(encoding="utf-8"))

    if check:
        if previous is None:
            print(f"no trajectory at {out_path} — run `repro bench report`")
            return 1
        violations = check_trajectory(previous, directory)
        if violations:
            print(f"{len(violations)} benchmark regression(s):")
            for violation in violations:
                print(f"  {violation}")
            return 1
        gated = sum(
            1
            for entry in previous.get("metrics", {}).values()
            if entry.get("direction") == "exact"
            or entry.get("threshold") is not None
        )
        print(
            f"bench trajectory OK: {len(previous.get('metrics', {}))} "
            f"metrics ({gated} gated) across "
            f"{len(previous.get('sources', []))} baselines"
        )
        return 0

    trajectory = build_trajectory(directory, previous=previous)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    info(f"bench trajectory written to {out_path}")
    print(
        f"{len(trajectory['metrics'])} metrics across "
        f"{len(trajectory['sources'])} baselines -> {out_path}"
    )
    violations = check_trajectory(trajectory, directory)
    if violations:
        print(f"{len(violations)} benchmark regression(s):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0

"""Developer tooling for the repro codebase.

The package currently ships one subsystem: :mod:`repro.devtools.lint`, an
AST-based lint framework whose rules encode the repo-specific invariants
the paper's identities depend on (no silent flooring of load expressions,
guarded divisions in the numeric hot paths, explicit routing metadata,
facade discipline around the load engine, centralized constructor
validation).  Run it as::

    python -m repro.devtools.lint src tests
    repro lint src tests

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from repro.devtools.lint import Finding, Rule, all_rules, lint_paths

__all__ = ["Finding", "Rule", "all_rules", "lint_paths"]

"""Mechanical fixes for the two safely-rewritable rules.

``repro lint --fix`` applies, and ``--diff`` previews, source rewrites
for:

* **RL006** — unused imports are deleted; a partially-unused statement
  (``import a, b`` with only ``b`` used, parenthesized multi-line
  ``from`` imports) is rebuilt with just the surviving aliases;
* **RL007** — a mutable default is replaced by ``None`` and an
  ``if param is None: param = <original>`` guard is inserted at the top
  of the body (after the docstring), preserving call-time semantics
  while un-sharing the container.

Fixes are computed from the same rule implementations the linter runs —
anything ``# repro: noqa``-suppressed is left alone — and edits are
applied in reverse document order so positions stay valid.  The rewrite
is idempotent: fixed code produces no further findings, so a second
``--fix`` is a no-op (there is a test pinning exactly that).
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.lint import (
    FileContext,
    _lint_context,
    _parse_source,
    get_rule,
    iter_python_files,
)
from repro.devtools.lint.semantics import Project

__all__ = ["FIXABLE_CODES", "FileFix", "FixResult", "fix_paths", "fix_source"]

#: codes --fix knows how to rewrite.
FIXABLE_CODES = ("RL006", "RL007")

_RL006_NAME_RE = re.compile(r"^`(?P<name>[^`]+)` is imported")


@dataclass
class _Edit:
    """One replacement of a half-open source span (1-based lines)."""

    start: tuple[int, int]
    end: tuple[int, int]
    text: str


@dataclass
class FileFix:
    """Outcome for one file."""

    path: Path
    original: str
    fixed: str
    descriptions: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self) -> str:
        """Unified diff of the rewrite (empty when unchanged)."""
        if not self.changed:
            return ""
        rel = self.path.as_posix()
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=f"a/{rel}",
                tofile=f"b/{rel}",
            )
        )


@dataclass
class FixResult:
    """Aggregate outcome of one --fix / --diff run."""

    fixes: list[FileFix] = field(default_factory=list)

    @property
    def changed_files(self) -> list[FileFix]:
        return [fix for fix in self.fixes if fix.changed]

    @property
    def total_fixes(self) -> int:
        return sum(len(fix.descriptions) for fix in self.fixes)


def _offsets(source: str) -> list[int]:
    """Byte offset of the start of each 1-based line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _apply(source: str, edits: list[_Edit]) -> str:
    starts = _offsets(source)

    def pos(where: tuple[int, int]) -> int:
        lineno, col = where
        if lineno - 1 >= len(starts):
            return len(source)
        return starts[lineno - 1] + col

    out = source
    for edit in sorted(edits, key=lambda e: pos(e.start), reverse=True):
        out = out[: pos(edit.start)] + edit.text + out[pos(edit.end) :]
    return out


# ---------------------------------------------------------------- RL006


def _rl006_edits(
    ctx: FileContext, codes: Iterable[str]
) -> tuple[list[_Edit], list[str]]:
    if "RL006" not in codes:
        return [], []
    rule = get_rule("RL006")
    findings = _lint_context(ctx, [rule])
    #: import statement lineno → unused bound names flagged there.
    unused_at: dict[int, set[str]] = {}
    for finding in findings:
        match = _RL006_NAME_RE.match(finding.message)
        if match:
            unused_at.setdefault(finding.line, set()).add(match.group("name"))
    if not unused_at:
        return [], []
    edits: list[_Edit] = []
    descriptions: list[str] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        unused = unused_at.get(node.lineno)
        if not unused:
            continue

        def bound_name(alias: ast.alias) -> str:
            if isinstance(node, ast.Import) and alias.asname is None:
                return alias.name.split(".")[0]
            return alias.asname or alias.name

        keep = [a for a in node.names if bound_name(a) not in unused]
        dropped = [bound_name(a) for a in node.names if bound_name(a) in unused]
        if not dropped:
            continue
        end_lineno = node.end_lineno or node.lineno
        if not keep:
            # delete the whole statement, including its trailing newline
            edits.append(_Edit((node.lineno, 0), (end_lineno + 1, 0), ""))
        else:
            indent = " " * node.col_offset
            if isinstance(node, ast.Import):
                slim: ast.stmt = ast.Import(names=keep)
            else:
                slim = ast.ImportFrom(
                    module=node.module, names=keep, level=node.level
                )
            rebuilt = ast.unparse(slim)
            edits.append(
                _Edit(
                    (node.lineno, 0),
                    (end_lineno, node.end_col_offset or 0),
                    indent + rebuilt,
                )
            )
        for name in sorted(dropped):
            descriptions.append(
                f"RL006 line {node.lineno}: removed unused import `{name}`"
            )
    return edits, descriptions


# ---------------------------------------------------------------- RL007


def _default_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, ast.expr]]:
    """``(param name, default expr)`` pairs, in parameter order."""
    out: list[tuple[str, ast.expr]] = []
    positional = list(func.args.posonlyargs) + list(func.args.args)
    defaults = list(func.args.defaults)
    for arg, default in zip(positional[len(positional) - len(defaults) :],
                            defaults):
        out.append((arg.arg, default))
    for arg, default in zip(func.args.kwonlyargs, func.args.kw_defaults):
        if default is not None:
            out.append((arg.arg, default))
    return out


def _body_insertion_point(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[int, int]:
    """``(1-based line to insert before, body indent column)``."""
    first = func.body[0]
    rest = func.body[1:]
    if (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
        and rest
    ):
        target = rest[0]
    elif (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    ):
        # docstring-only body: insert after it
        return ((first.end_lineno or first.lineno) + 1, first.col_offset)
    else:
        target = first
    return (target.lineno, target.col_offset)


def _rl007_edits(
    ctx: FileContext, codes: Iterable[str]
) -> tuple[list[_Edit], list[str]]:
    if "RL007" not in codes:
        return [], []
    rule = get_rule("RL007")
    findings = _lint_context(ctx, [rule])
    flagged = {(f.line, f.col) for f in findings}
    if not flagged:
        return [], []
    edits: list[_Edit] = []
    descriptions: list[str] = []
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        guards: list[tuple[str, str]] = []
        for param, default in _default_params(func):
            if (default.lineno, default.col_offset) not in flagged:
                continue
            original = ctx.segment(default)
            if not original:
                continue
            edits.append(
                _Edit(
                    (default.lineno, default.col_offset),
                    (
                        default.end_lineno or default.lineno,
                        default.end_col_offset or default.col_offset,
                    ),
                    "None",
                )
            )
            guards.append((param, original))
            descriptions.append(
                f"RL007 line {default.lineno}: `{func.name}({param}=...)` "
                "default moved into the body"
            )
        if guards and func.body:
            lineno, col = _body_insertion_point(func)
            indent = " " * col
            block = "".join(
                f"{indent}if {param} is None:\n"
                f"{indent}    {param} = {original}\n"
                for param, original in guards
            )
            edits.append(_Edit((lineno, 0), (lineno, 0), block))
    return edits, descriptions


# ------------------------------------------------------------- entry points


def fix_source(
    path: Path,
    source: str,
    tree: ast.Module,
    codes: Iterable[str] = FIXABLE_CODES,
) -> FileFix:
    """Compute (without writing) the fixes for one parsed file."""
    ctx = FileContext(path, source, tree, Project.build([(path, tree)]))
    edits: list[_Edit] = []
    descriptions: list[str] = []
    for collect in (_rl006_edits, _rl007_edits):
        new_edits, new_descriptions = collect(ctx, tuple(codes))
        edits.extend(new_edits)
        descriptions.extend(new_descriptions)
    fixed = _apply(source, edits) if edits else source
    return FileFix(
        path=path, original=source, fixed=fixed, descriptions=descriptions
    )


def fix_paths(
    paths: Iterable[str | Path],
    write: bool,
    codes: Iterable[str] = FIXABLE_CODES,
) -> FixResult:
    """Fix (or preview fixes for) every Python file under ``paths``.

    ``write=False`` is the ``--diff`` dry run: nothing touches disk and
    callers render :meth:`FileFix.diff`.  Files that fail to parse are
    skipped — the lint run itself reports them as RL000.
    """
    wanted = tuple(c for c in codes if c in FIXABLE_CODES)
    result = FixResult()
    for path in iter_python_files(paths):
        source, tree, _error = _parse_source(path)
        if tree is None:
            continue
        fix = fix_source(path, source, tree, wanted)
        result.fixes.append(fix)
        if write and fix.changed:
            path.write_text(fix.fixed, encoding="utf-8")
    return result

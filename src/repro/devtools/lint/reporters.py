"""Output formats for lint runs: human text and machine JSON.

The JSON form is a stable contract (CI uploads it as an artifact):
:func:`parse_json` reconstructs a :class:`LintReport` from it, and a
round-trip test pins ``parse_json(render_json(r)) == r``.
"""

from __future__ import annotations

import json

from repro.devtools.lint import Finding, LintReport

__all__ = ["render_text", "render_json", "parse_json"]


def render_text(report: LintReport) -> str:
    """One finding per line, plus a trailing summary line."""
    lines = [finding.render() for finding in report.findings]
    if report.findings:
        by_code = ", ".join(
            f"{code}×{count}" for code, count in report.counts.items()
        )
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) [{by_code}]"
        )
    else:
        lines.append(f"clean: 0 findings in {report.files_scanned} file(s)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable JSON document (findings sorted by path/line/col)."""
    doc = {
        "files_scanned": report.files_scanned,
        "total": len(report.findings),
        "counts": report.counts,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in report.findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def parse_json(text: str) -> LintReport:
    """Inverse of :func:`render_json` (``counts``/``total`` are derived)."""
    doc = json.loads(text)
    return LintReport(
        findings=[
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                code=f["code"],
                message=f["message"],
            )
            for f in doc["findings"]
        ],
        files_scanned=doc["files_scanned"],
    )

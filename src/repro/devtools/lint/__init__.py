"""Core of the repro lint framework.

The framework is deliberately small: a :class:`Rule` walks one parsed
file (:class:`FileContext`) and yields :class:`Finding` objects; the
registry maps rule codes to rule instances; :func:`lint_paths` drives the
walk over files, applies ``# repro: noqa(...)`` suppressions, and returns
the surviving findings sorted for stable output.

Suppression syntax, on the offending line::

    x = total // n          # repro: noqa(RL001)
    y = a / b               # repro: noqa(RL001,RL002)
    z = risky()             # repro: noqa          (suppresses every rule)

Rules self-register via the :func:`register` decorator; adding a rule is
one class in :mod:`repro.devtools.lint.rules` (see
``docs/STATIC_ANALYSIS.md`` for the recipe).
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "parse_noqa",
]

#: code used for files the framework itself cannot parse.
SYNTAX_ERROR_CODE = "RL000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\s*\))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint diagnostic, anchored to a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.noqa = parse_noqa(source)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    @property
    def is_test_file(self) -> bool:
        """Whether this file belongs to the test suite (fixtures included)."""
        parts = self.path.parts
        if "tests" in parts:
            return True
        name = self.path.name
        return name.startswith(("test_", "bench_")) or name == "conftest.py"

    @property
    def is_init_file(self) -> bool:
        return self.path.name == "__init__.py"

    def in_package(self, *segments: str) -> bool:
        """Whether the file lives under ``repro/<seg1>/<seg2>/…``."""
        needle = "repro/" + "/".join(segments)
        return needle in self.posix_path

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule(abc.ABC):
    """One lint rule: a code, a one-line summary, and a ``check``."""

    #: unique rule code, e.g. ``RL001``.
    code: str = "RL999"
    #: one-line human summary shown by ``--list-rules``.
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path-based scoping)."""
        return True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate lint rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_rules_loaded() -> None:
    # The built-in rule set registers on import; keep the import lazy so
    # the framework core has no rule dependencies.
    from repro.devtools.lint import rules as _rules  # noqa: F401  (side effect)


def parse_noqa(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed codes.

    ``None`` means "suppress every rule on this line" (bare
    ``# repro: noqa``); a frozenset suppresses just the listed codes.
    """
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(c.strip() for c in codes.split(","))
    return out


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deduplicated, sorted ``.py`` walk."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(collected)


def lint_file(
    path: Path, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one file; a syntax error yields a single RL000 finding."""
    if rules is None:
        rules = all_rules()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return [
            Finding(
                path=path.as_posix(),
                line=err.lineno or 1,
                col=(err.offset or 1) - 1,
                code=SYNTAX_ERROR_CODE,
                message=f"syntax error: {err.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            suppressed = ctx.noqa.get(finding.line)
            if suppressed is None and finding.line in ctx.noqa:
                continue  # bare noqa
            if suppressed is not None and finding.code in suppressed:
                continue
            findings.append(finding)
    return findings


@dataclass
class LintReport:
    """Aggregate result of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given codes; ``ignore`` drops
    codes after the fact.  Unknown codes in either raise ``KeyError``.
    """
    rules: Sequence[Rule] = all_rules()
    if select is not None:
        rules = tuple(get_rule(code) for code in select)
    if ignore is not None:
        dropped = {get_rule(code).code for code in ignore}
        rules = tuple(rule for rule in rules if rule.code not in dropped)
    report = LintReport()
    for path in iter_python_files(paths):
        report.files_scanned += 1
        report.findings.extend(lint_file(path, rules))
    report.findings.sort()
    return report

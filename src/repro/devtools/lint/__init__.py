"""Core of the repro lint framework.

The framework is deliberately small: a :class:`Rule` walks one parsed
file (:class:`FileContext`) and yields :class:`Finding` objects; the
registry maps rule codes to rule instances; :func:`lint_paths` drives the
walk over files, applies ``# repro: noqa(...)`` suppressions, and returns
the surviving findings sorted for stable output.

Suppression syntax, on the offending line::

    x = total // n          # repro: noqa(RL001)
    y = a / b               # repro: noqa(RL001,RL002)
    z = risky()             # repro: noqa          (suppresses every rule)

Rules self-register via the :func:`register` decorator; adding a rule is
one class in :mod:`repro.devtools.lint.rules` (see
``docs/STATIC_ANALYSIS.md`` for the recipe).
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.lint.semantics import (
    ImportResolver,
    Project,
    module_name_for_path,
)

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "parse_noqa",
]

#: code used for files the framework itself cannot parse.
SYNTAX_ERROR_CODE = "RL000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\s*\))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint diagnostic, anchored to a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """Everything a rule may inspect about one source file.

    ``project`` is the whole-program index built by :func:`lint_paths`
    (single-file runs get a one-module project); ``resolver`` is the
    file's own alias-aware import resolver, and :meth:`resolve` is the
    one call rules should use — it resolves through the file's imports
    *and* canonicalizes re-exports through the project.
    """

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        project: "Project | None" = None,
    ):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.noqa = parse_noqa(source)
        self.project = project
        self._resolver: "ImportResolver | None" = None
        self._effective_noqa: dict[int, frozenset[str] | None] | None = None

    @property
    def resolver(self) -> "ImportResolver":
        """This file's alias-aware import resolver (built lazily)."""
        if self._resolver is None:
            if self.project is not None:
                info = self.project.module(module_name_for_path(self.path))
                if info is not None and info.path == self.path:
                    self._resolver = info.resolver
            if self._resolver is None:
                self._resolver = ImportResolver(
                    self.tree,
                    module_name=module_name_for_path(self.path),
                    is_package=self.path.name == "__init__.py",
                )
        return self._resolver

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical qualified name of a ``Name``/``Attribute`` chain.

        Aliases are seen through (``from repro.load.engine import fft as
        f`` makes ``f.FFTBackend`` resolve), and re-export chains are
        chased through the project when one is available.
        """
        qname = self.resolver.qualified_name(node)
        if qname is None:
            return None
        if self.project is not None:
            return self.project.canonical(qname)
        return qname

    @property
    def effective_noqa(self) -> dict[int, frozenset[str] | None]:
        """Line suppressions with multiline statements expanded.

        A ``# repro: noqa(...)`` anywhere inside a parenthesized import
        or a def/class header (decorators included) suppresses findings
        anchored to *any* line of that statement — a finding on a
        decorated ``def`` anchors to the ``def`` line while the pragma
        often sits on the decorator or a wrapped argument line.
        """
        if self._effective_noqa is None:
            self._effective_noqa = _expand_noqa_spans(self.tree, self.noqa)
        return self._effective_noqa

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    @property
    def is_test_file(self) -> bool:
        """Whether this file belongs to the test suite (fixtures included)."""
        parts = self.path.parts
        if "tests" in parts:
            return True
        name = self.path.name
        return name.startswith(("test_", "bench_")) or name == "conftest.py"

    @property
    def is_init_file(self) -> bool:
        return self.path.name == "__init__.py"

    def in_package(self, *segments: str) -> bool:
        """Whether the file lives under ``repro/<seg1>/<seg2>/…``."""
        needle = "repro/" + "/".join(segments)
        return needle in self.posix_path

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule(abc.ABC):
    """One lint rule: a code, a one-line summary, and a ``check``."""

    #: unique rule code, e.g. ``RL001``.
    code: str = "RL999"
    #: one-line human summary shown by ``--list-rules``.
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path-based scoping)."""
        return True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate lint rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_rules_loaded() -> None:
    # The built-in rule set registers on import; keep the import lazy so
    # the framework core has no rule dependencies.
    from repro.devtools.lint import rules as _rules  # noqa: F401  (side effect)


def parse_noqa(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed codes.

    ``None`` means "suppress every rule on this line" (bare
    ``# repro: noqa``); a frozenset suppresses just the listed codes.
    """
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(c.strip() for c in codes.split(","))
    return out


def _expand_noqa_spans(
    tree: ast.Module, noqa: dict[int, frozenset[str] | None]
) -> dict[int, frozenset[str] | None]:
    """Spread suppressions across multiline statement spans.

    Import statements get their full node span (parenthesized imports
    wrap); def/class statements get their *header* span — first
    decorator line through the line before the body — so a pragma on a
    decorator suppresses a finding anchored on the ``def`` line without
    blanketing the whole function body.
    """
    effective: dict[int, frozenset[str] | None] = dict(noqa)
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            start = min(
                [node.lineno] + [d.lineno for d in node.decorator_list]
            )
            body_start = node.body[0].lineno if node.body else node.lineno + 1
            spans.append((start, max(start, body_start - 1)))
    for start, end in spans:
        entries = [noqa[line] for line in range(start, end + 1) if line in noqa]
        if not entries:
            continue
        merged: frozenset[str] | None
        if any(entry is None for entry in entries):
            merged = None
        else:
            merged = frozenset().union(
                *[entry for entry in entries if entry is not None]
            )
        for line in range(start, end + 1):
            existing = effective.get(line, frozenset())
            if line in effective and existing is None:
                continue
            if merged is None:
                effective[line] = None
            else:
                assert existing is not None
                effective[line] = existing | merged
    return effective


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deduplicated, sorted ``.py`` walk."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(collected)


def _parse_source(path: Path) -> tuple[str, ast.Module | None, Finding | None]:
    """Read and parse one file; syntax errors become an RL000 finding."""
    source = path.read_text(encoding="utf-8")
    try:
        return source, ast.parse(source, filename=str(path)), None
    except SyntaxError as err:
        return (
            source,
            None,
            Finding(
                path=path.as_posix(),
                line=err.lineno or 1,
                col=(err.offset or 1) - 1,
                code=SYNTAX_ERROR_CODE,
                message=f"syntax error: {err.msg}",
            ),
        )


def _lint_context(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over an already-built context, applying noqa."""
    findings: list[Finding] = []
    noqa = ctx.effective_noqa
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            suppressed = noqa.get(finding.line)
            if suppressed is None and finding.line in noqa:
                continue  # bare noqa
            if suppressed is not None and finding.code in suppressed:
                continue
            findings.append(finding)
    return findings


def lint_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    project: Project | None = None,
) -> list[Finding]:
    """Lint one file; a syntax error yields a single RL000 finding.

    Without a ``project``, a single-module one is built so semantic
    rules still resolve the file's own imports.
    """
    if rules is None:
        rules = all_rules()
    source, tree, error = _parse_source(path)
    if tree is None:
        assert error is not None
        return [error]
    if project is None:
        project = Project.build([(path, tree)])
    return _lint_context(FileContext(path, source, tree, project), rules)


@dataclass
class LintReport:
    """Aggregate result of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given codes; ``ignore`` drops
    codes after the fact.  Unknown codes in either raise ``KeyError``.
    """
    rules: Sequence[Rule] = all_rules()
    if select is not None:
        rules = tuple(get_rule(code) for code in select)
    if ignore is not None:
        dropped = {get_rule(code).code for code in ignore}
        rules = tuple(rule for rule in rules if rule.code not in dropped)
    report = LintReport()
    # First pass parses everything so semantic rules see the whole
    # program (import graph, re-export chains) — not just one file.
    parsed: list[tuple[Path, str, ast.Module]] = []
    for path in iter_python_files(paths):
        report.files_scanned += 1
        source, tree, error = _parse_source(path)
        if tree is None:
            assert error is not None
            report.findings.append(error)
        else:
            parsed.append((path, source, tree))
    project = Project.build([(path, tree) for path, _, tree in parsed])
    for path, source, tree in parsed:
        ctx = FileContext(path, source, tree, project)
        report.findings.extend(_lint_context(ctx, rules))
    report.findings.sort()
    return report

"""The built-in rule set: repo-specific invariants RL001–RL017.

Each rule generalizes a bug class this repository has actually hit (see
``docs/STATIC_ANALYSIS.md`` for the catalogue and the PR-1 incidents the
first five rules grew out of).  Rules are heuristics, not proofs — the
``# repro: noqa(CODE)`` escape hatch exists precisely for the sites where
a human can certify the invariant holds.

RL001–RL010 are (mostly) single-file pattern matchers; RL011–RL015 are
built on :mod:`repro.devtools.lint.semantics` — they resolve names
through the file's imports (``ctx.resolve``), follow re-export chains
through the project, and run CFG-based taint analyses.  RL004, RL009,
and RL010 were retrofitted onto the same resolver, so renamed imports
(``from repro.load.edge_loads import edge_loads_reference as oracle``)
no longer slip past them.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint import FileContext, Finding, Rule, register
from repro.devtools.lint.semantics import (
    FunctionScopes,
    GlobalUsage,
    TaintAnalysis,
    run_taint,
)

__all__ = [
    "FloorOnLoadExpression",
    "UnguardedDivision",
    "RoutingMissingInvarianceFlag",
    "LoadFacadeBypass",
    "ConstructorSkipsValidation",
    "UnusedImport",
    "MutableDefaultArgument",
    "FullLoadEvalInLoop",
    "DirectPoolConstruction",
    "WallClockOrPrintInLibrary",
    "AmbientRNG",
    "NondetIterationIntoSink",
    "ExactnessTaint",
    "ExecutorWorkerPurity",
    "SpanOutsideWith",
    "PerPlacementLoopEval",
    "DynamicTelemetryName",
]

#: identifier fragments that mark a value as a real-valued load figure —
#: flooring these silently truncates Definition-4/5 quantities (the PR-1
#: ``LinkCountSummary.normalized`` bug class).
_LOAD_KEYWORDS = (
    "load",
    "ratio",
    "bound",
    "emax",
    "frac",
    "weight",
    "prob",
    "latency",
)

#: denominator spellings that are known nonzero mathematical constants.
_NONZERO_CONSTANTS = frozenset(
    {"np.pi", "numpy.pi", "math.pi", "math.tau", "math.e"}
)

#: the load-engine internals that must only be reached through the
#: :class:`repro.load.engine.LoadEngine` facade.
_ENGINE_INTERNALS = frozenset(
    {
        "edge_loads_reference",
        "ReferenceBackend",
        "VectorizedBackend",
        "FFTBackend",
        "DisplacementBackend",
        "ParallelBackend",
    }
)


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_loadlike(name: str) -> bool:
    lowered = name.lower()
    return any(key in lowered for key in _LOAD_KEYWORDS)


def _is_floor_call(node: ast.Call) -> bool:
    """``math.floor(...)`` / ``np.floor(...)`` / bare ``floor(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "floor"
    if isinstance(func, ast.Attribute):
        return func.attr == "floor"
    return False


@register
class FloorOnLoadExpression(Rule):
    """RL001 — ``//`` or ``floor`` applied to a load/ratio/bound value.

    Loads, linearity ratios, and the Eq. 6/8/9 bounds are rationals;
    flooring them silently truncates (PR 1's
    ``LinkCountSummary.normalized`` bug).  Index/count arithmetic such as
    ``m // 2`` ring splits is whitelisted by the identifier heuristic:
    only expressions that *mention* a load-like identifier (or assign to
    one) are flagged.
    """

    code = "RL001"
    summary = "floor-division/floor() on a load, ratio, or bound expression"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()

        def flag(node: ast.AST, detail: str) -> Iterator[Finding]:
            key = (node.lineno, node.col_offset)
            if key not in reported:
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"{detail} — loads and bounds are rationals; use true "
                    "division (or suppress with `# repro: noqa(RL001)` if "
                    "this is genuinely integral)",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.FloorDiv):
                if any(_is_loadlike(name) for name in _identifiers(node)):
                    yield from flag(
                        node,
                        f"floor division in `{ctx.segment(node)}` involves a "
                        "load-like value",
                    )
            elif isinstance(node, ast.Call) and _is_floor_call(node):
                if any(
                    _is_loadlike(name)
                    for arg in node.args
                    for name in _identifiers(arg)
                ):
                    yield from flag(
                        node,
                        f"`{ctx.segment(node)}` floors a load-like value",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                if node.value is None or not any(
                    _is_loadlike(name)
                    for target in targets
                    for name in _identifiers(target)
                ):
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.BinOp) and isinstance(
                        sub.op, ast.FloorDiv
                    ):
                        yield from flag(
                            sub,
                            "floor division assigned to a load-like name "
                            f"(`{ctx.segment(node)}`)",
                        )
                    elif isinstance(sub, ast.Call) and _is_floor_call(sub):
                        yield from flag(
                            sub,
                            "floor() result assigned to a load-like name "
                            f"(`{ctx.segment(node)}`)",
                        )


class _ScopeGuards:
    """Guard expressions visible inside one function (or module) scope."""

    def __init__(self, inherited: tuple[str, ...] = ()):
        self.texts: list[str] = list(inherited)

    def add(self, text: str) -> None:
        if text:
            self.texts.append(text)

    def covers(self, denominator_text: str) -> bool:
        # Word-boundary match so a denominator `k` is not "guarded" by an
        # unrelated `if link:` test.
        pattern = re.compile(
            rf"(?<![\w.]){re.escape(denominator_text)}(?![\w(])"
        )
        return any(pattern.search(guard) for guard in self.texts)


@register
class UnguardedDivision(Rule):
    """RL002 — division by a bare name with no visible zero guard.

    Scoped to the numeric hot paths (``repro.load``, ``repro.bisection``,
    ``repro.sim``) where a zero denominator is a latent
    ``ZeroDivisionError`` (PR 1's empty-path-set crash class).  A
    denominator counts as guarded when the enclosing function mentions it
    in any ``if``/``while``/``assert``/ternary test, comprehension
    filter, or ``max``/``min`` clamp.  Modulus is deliberately out of
    scope: ``x % k`` by a validated radix is the codebase's cyclic
    bread-and-butter and never reaches zero past construction.
    """

    code = "RL002"
    summary = "division without a zero guard in a load/bisection/sim hot path"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return any(
            ctx.in_package(pkg) for pkg in ("load", "bisection", "sim")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree.body, _ScopeGuards())

    # ------------------------------------------------------------ helpers

    def _check_scope(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        inherited: _ScopeGuards,
    ) -> Iterator[Finding]:
        guards = _ScopeGuards(tuple(inherited.texts))
        nested: list[list[ast.stmt]] = []
        divisions: list[ast.BinOp] = []
        for node in self._walk_shallow(body, nested):
            if isinstance(node, (ast.If, ast.While)):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.IfExp):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.Assert):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    guards.add(ctx.segment(cond))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in ("max", "min"):
                    for arg in node.args:
                        guards.add(ctx.segment(arg))
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv)
            ):
                divisions.append(node)
        for division in divisions:
            key = self._denominator_key(ctx, division.right)
            if key is None:
                continue
            if guards.covers(key):
                continue
            yield self.finding(
                ctx,
                division,
                f"division by `{ctx.segment(division.right)}` has no zero "
                "guard in this scope — raise a descriptive error or clamp "
                "before dividing",
            )
        for sub_body in nested:
            yield from self._check_scope(ctx, sub_body, guards)

    @staticmethod
    def _walk_shallow(
        body: list[ast.stmt], nested: list[list[ast.stmt]]
    ) -> Iterator[ast.AST]:
        """Walk statements without descending into nested def/class bodies."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                nested.append(node.body)
                # decorators/defaults still belong to the outer scope
                stack.extend(ast.iter_child_nodes(node))
                for child in node.body:
                    if child in stack:
                        stack.remove(child)
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _denominator_key(
        self, ctx: FileContext, denom: ast.expr
    ) -> str | None:
        """The text to look for in guards, or ``None`` when exempt."""
        if isinstance(denom, ast.Constant):
            if denom.value == 0:
                return str(denom.value)  # certain bug; nothing can guard it
            return None
        if isinstance(denom, ast.Name):
            return denom.id
        if isinstance(denom, ast.Attribute):
            text = ctx.segment(denom)
            if text in _NONZERO_CONSTANTS:
                return None
            return text
        if (
            isinstance(denom, ast.Call)
            and isinstance(denom.func, ast.Name)
            and denom.func.id == "len"
            and len(denom.args) == 1
        ):
            return ctx.segment(denom.args[0])
        return None


@register
class RoutingMissingInvarianceFlag(Rule):
    """RL003 — a direct ``RoutingAlgorithm`` subclass with no explicit
    ``translation_invariant`` declaration.

    The displacement-class cache dispatches on this flag; inheriting the
    base default silently (PR 1's missing declaration) either forfeits
    the cache or — worse, if the default ever changed — corrupts loads
    for non-invariant routings.  Direct subclasses must state the flag;
    deeper subclasses inherit an explicit ancestor value.
    """

    code = "RL003"
    summary = "RoutingAlgorithm subclass missing translation_invariant"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._bases_routing_algorithm(node):
                continue
            if self._declares_flag(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"routing class `{node.name}` subclasses RoutingAlgorithm "
                "directly but does not declare `translation_invariant` — "
                "state it explicitly (the displacement cache dispatches on "
                "this flag)",
            )

    @staticmethod
    def _bases_routing_algorithm(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else None
            if name is None and isinstance(base, ast.Attribute):
                name = base.attr
            if name == "RoutingAlgorithm":
                return True
        return False

    @staticmethod
    def _declares_flag(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "translation_invariant"
                    ):
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "translation_invariant"
                ):
                    return True
        return False


@register
class LoadFacadeBypass(Rule):
    """RL004 — load-engine internals referenced outside ``repro.load``.

    ``edge_loads_reference`` and the backend classes are implementation
    details of the :class:`repro.load.engine.LoadEngine` facade; code
    that imports them directly bypasses backend selection, the default
    engine, and future sharding/caching policy.  Tests are exempt — the
    cross-check suites *must* reach the oracle directly.

    Resolver-backed: a renamed import (``from repro.load.edge_loads
    import edge_loads_reference as oracle``) is seen through, and a
    local class that merely *shares* a backend's name no longer
    false-positives when its definition is resolvable elsewhere.
    """

    code = "RL004"
    summary = "direct use of load-engine internals outside repro.load"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        if ctx.in_package("load") or ctx.in_package("devtools"):
            return False
        return True

    @staticmethod
    def _internal_qname(qname: str) -> bool:
        leaf = qname.rsplit(".", 1)[-1]
        return qname.startswith("repro.load.") and leaf in _ENGINE_INTERNALS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[int] = set()

        def flag(node: ast.AST, name: str) -> Iterator[Finding]:
            if node.lineno not in reported:
                reported.add(node.lineno)
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` is a load-engine internal — go through "
                    "`repro.load.engine.LoadEngine` (e.g. "
                    "`LoadEngine('reference').edge_loads(...)`) instead",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    origin = ctx.resolver.bindings.get(bound)
                    canonical = (
                        ctx.project.canonical(origin)
                        if origin is not None and ctx.project is not None
                        else origin
                    )
                    if canonical is not None and self._internal_qname(
                        canonical
                    ):
                        yield from flag(node, alias.name)
                    elif canonical is None and alias.name in _ENGINE_INTERNALS:
                        yield from flag(node, alias.name)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if isinstance(node, ast.Name) and not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                qname = ctx.resolve(node)
                leaf = node.attr if isinstance(node, ast.Attribute) else node.id
                if qname is not None:
                    if self._internal_qname(qname):
                        yield from flag(node, qname.rsplit(".", 1)[-1])
                elif leaf in _ENGINE_INTERNALS:
                    yield from flag(node, leaf)


@register
class ConstructorSkipsValidation(Rule):
    """RL005 — a public torus/mixedradix constructor with no
    ``repro.util.validation`` call.

    Parameter checks live in :mod:`repro.util.validation` so error
    messages stay uniform and tests pin one behaviour; inline ``raise``
    statements drift.  Any public class under ``repro.torus`` or
    ``repro.mixedradix`` that defines ``__init__`` must call a
    ``check_*`` helper (directly or via ``validation.check_*``).
    """

    code = "RL005"
    summary = "torus/mixedradix constructor skips repro.util.validation"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("torus") or ctx.in_package("mixedradix")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            init = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            if self._calls_validator(init):
                continue
            yield self.finding(
                ctx,
                init,
                f"`{node.name}.__init__` never calls a "
                "`repro.util.validation` `check_*` helper — centralize its "
                "parameter checks there",
            )

    @staticmethod
    def _calls_validator(init: ast.FunctionDef) -> bool:
        for node in ast.walk(init):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name is not None and name.startswith("check_"):
                return True
        return False


@register
class UnusedImport(Rule):
    """RL006 — an imported name never used in the module.

    ``__future__`` imports, ``__init__.py`` re-exports, and ``conftest``
    fixture plumbing are exempt; a string constant equal to the name
    (``__all__`` entries) counts as a use.  Flake8-style ``# noqa`` on
    the import line is honored too, so side-effect imports marked for
    ecosystem tools don't need a second pragma.
    """

    code = "RL006"
    summary = "unused import"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_init_file and ctx.path.name != "conftest.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imported: list[tuple[str, ast.stmt]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = (alias.asname or alias.name).split(".")[0]
                    imported.append((bound, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.append((alias.asname or alias.name, node))
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                used.add(node.value)
                # forward-reference strings ("np.ndarray | Iterable[int]")
                # keep their imports alive; prose docstrings don't match.
                if re.fullmatch(r"[\w.\[\], |']+", node.value):
                    used.update(re.findall(r"[A-Za-z_]\w*", node.value))
        for name, node in imported:
            line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) else ""
            if "noqa" in line:
                continue
            if name not in used:
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` is imported but never used — remove it (or "
                    "re-export via `__all__` if it is public API)",
                )


@register
class MutableDefaultArgument(Rule):
    """RL007 — a mutable default argument (shared across calls).

    Beyond literal ``[]``/``{}`` and the ``list``/``dict``/``set``
    builtins, the attribute-form stdlib factories
    (``collections.defaultdict(list)``, ``collections.deque()``, …) and
    tuples *containing* mutable literals (``([], {})`` — the tuple is
    immutable, its elements are not) are mutable too; all were blind
    spots of the original builtin-name check.
    """

    code = "RL007"
    summary = "mutable default argument"

    _MUTABLE_FACTORIES = ("list", "dict", "set")
    #: canonical qualified names of stdlib mutable-container factories.
    _MUTABLE_FACTORY_QNAMES = frozenset(
        {
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
            "collections.ChainMap",
        }
    )
    #: leaf-name fallback when the import is not visible to the resolver.
    _MUTABLE_FACTORY_LEAVES = frozenset(
        {"defaultdict", "deque", "OrderedDict", "Counter", "ChainMap"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(ctx, default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default `{ctx.segment(default)}` in "
                        f"`{node.name}` is shared across calls — default to "
                        "None and build inside the body",
                    )

    def _is_mutable(self, ctx: FileContext, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_mutable(ctx, elt) for elt in node.elts)
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._MUTABLE_FACTORIES:
            return True
        qname = ctx.resolve(func)
        if qname is not None:
            return qname in self._MUTABLE_FACTORY_QNAMES
        leaf = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return leaf in self._MUTABLE_FACTORY_LEAVES


@register
class FullLoadEvalInLoop(Rule):
    """RL008 — ``odr_edge_loads`` called inside a loop in ``placements/``.

    A full evaluation is :math:`O(|P|^2)` pair work; search and
    enumeration code in :mod:`repro.placements` that re-evaluates inside
    a loop almost always wants the :math:`O(|P|)` incremental kernels
    (:func:`repro.load.odr_loads.odr_edge_loads_add_delta` /
    ``_swap_delta``) instead — the difference is the entire speed-up of
    the exact-search engine.  Sites that *are* the brute-force oracle
    (e.g. the catalog sweep) certify themselves with
    ``# repro: noqa(RL008)``.
    """

    code = "RL008"
    summary = "full odr_edge_loads evaluation inside a loop in placements/"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
              ast.DictComp, ast.GeneratorExp)

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("placements")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, self._LOOPS):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name != "odr_edge_loads":
                    continue
                key = (node.lineno, node.col_offset)
                if key in reported:  # nested loops see the same call twice
                    continue
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    "full O(|P|^2) `odr_edge_loads` evaluation inside a "
                    "loop — use the incremental kernels "
                    "(`odr_edge_loads_add_delta`/`_swap_delta`), or "
                    "suppress with `# repro: noqa(RL008)` if this site is "
                    "deliberately the brute-force oracle",
                )


@register
class DirectPoolConstruction(Rule):
    """RL009 — a process pool constructed outside ``repro.exec``.

    Bare ``ProcessPoolExecutor``/``multiprocessing.Pool`` fan-out has no
    retry budget, no deadline watchdog, no checkpoint journal, and no
    serial fallback — exactly the failure modes the resilient execution
    layer exists to absorb.  All pool call sites go through
    :class:`repro.exec.ResilientExecutor`; the one legitimate raw
    constructor (inside the executor itself) certifies with
    ``# repro: noqa(RL009)``.  Tests are exempt — harness cross-checks
    may drive bare pools on purpose.
    """

    code = "RL009"
    summary = "direct process-pool construction outside repro/exec"

    #: canonical qualified names that construct a process pool.
    _POOL_QNAMES = frozenset(
        {
            "concurrent.futures.ProcessPoolExecutor",
            "concurrent.futures.process.ProcessPoolExecutor",
            "multiprocessing.Pool",
            "multiprocessing.pool.Pool",
            "multiprocessing.dummy.Pool",
        }
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return not ctx.in_package("exec")

    def _is_pool_qname(self, qname: str) -> bool:
        return qname in self._POOL_QNAMES or (
            qname.startswith("multiprocessing.") and qname.endswith(".Pool")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: str | None = None
            qname = ctx.resolve(func)
            if qname is not None:
                if self._is_pool_qname(qname):
                    flagged = ctx.segment(func) or qname
            elif isinstance(func, ast.Attribute):
                if func.attr == "ProcessPoolExecutor":
                    flagged = ctx.segment(func)
                elif func.attr == "Pool" and isinstance(func.value, ast.Call):
                    # `mp.get_context("spawn").Pool()` — resolve the
                    # inner call's target instead of the unresolvable
                    # call result.
                    inner = ctx.resolve(func.value.func)
                    if inner is not None and inner.startswith(
                        "multiprocessing."
                    ):
                        flagged = ctx.segment(func)
            if flagged is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"`{flagged}` constructs a raw process pool — fan out "
                    "through `repro.exec.ResilientExecutor` (retries, "
                    "deadlines, checkpointing, serial fallback), or certify "
                    "an exempt site with `# repro: noqa(RL009)`",
                )


@register
class WallClockOrPrintInLibrary(Rule):
    """RL010 — wall-clock reads or bare ``print`` in library code.

    ``time.time()`` is NTP-steppable: durations derived from it can jump
    backwards or skew (the ``ExecutionReport.started_at`` bug class) —
    measure with ``time.perf_counter()``/``time.monotonic()`` and take
    the one informational wall-clock stamp via
    :func:`repro.obs.console.wall_clock`.  Bare ``print`` in library
    code pollutes machine-parsed stdout and ignores ``--quiet`` —
    results return to the caller; diagnostics go through
    :mod:`repro.obs.console`.  The CLI (stdout *is* its contract),
    ``devtools``, and the console module itself are exempt.
    """

    code = "RL010"
    summary = "wall-clock time.time()/bare print() in library code"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file or not ctx.in_package():
            return False
        if ctx.path.name == "cli.py" or ctx.in_package("devtools"):
            return False
        return not ctx.posix_path.endswith("repro/obs/console.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Names appearing as a call's func are handled in the Call
        # branch; everything else resolving to `time.time` is a bare
        # reference (`default_factory=time.time`, `clock = now`).
        call_funcs = {
            id(node.func)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and id(node) not in call_funcs:
                if ctx.resolve(node) == "time.time":
                    # flag the reference itself, so
                    # `default_factory=time.time` is caught without a call
                    yield self.finding(
                        ctx,
                        node,
                        "`time.time` is wall-clock (NTP-steppable) — measure "
                        "with `time.perf_counter()`, and take informational "
                        "timestamps via `repro.obs.console.wall_clock()`, or "
                        "certify with `# repro: noqa(RL010)`",
                    )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
            ):
                if ctx.resolve(node) == "time.time":
                    yield self.finding(
                        ctx,
                        node,
                        f"`{node.id}` is bound to wall-clock `time.time` — "
                        "measure with `time.perf_counter()` or use "
                        "`repro.obs.console.wall_clock()`, or certify with "
                        "`# repro: noqa(RL010)`",
                    )
            elif isinstance(node, ast.Call):
                qname = ctx.resolve(node.func)
                if qname == "time.time":
                    yield self.finding(
                        ctx,
                        node,
                        f"`{ctx.segment(node.func)}()` is wall-clock "
                        "(NTP-steppable) — measure with "
                        "`time.perf_counter()` or use "
                        "`repro.obs.console.wall_clock()`, or certify with "
                        "`# repro: noqa(RL010)`",
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "bare `print()` in library code — return results to "
                        "the caller and route diagnostics through "
                        "`repro.obs.console` (quiet-aware stderr), or "
                        "certify with `# repro: noqa(RL010)`",
                    )


@register
class AmbientRNG(Rule):
    """RL011 — ambient RNG call in library code.

    Every stochastic path in this repository threads an explicit,
    seeded generator through :func:`repro.util.rng.resolve_rng` /
    :func:`~repro.util.rng.spawn_rngs`; that is what makes annealing and
    randomized-search results replayable from a manifest seed.  A
    ``random.random()`` / ``np.random.shuffle(...)`` global-state call —
    or a private ``np.random.default_rng(...)`` that bypasses the shared
    entry point — reintroduces ambient state the manifest cannot
    capture.  Resolver-backed, so ``import numpy.random as npr`` and
    ``from random import shuffle`` are both seen.  Explicit generator
    *classes* (``random.Random(seed)``, ``np.random.PCG64(seed)``) are
    exempt: constructing one with a pinned seed is deterministic.
    """

    code = "RL011"
    summary = "ambient/unseeded RNG call outside repro.util.rng"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file or not ctx.in_package():
            return False
        return not ctx.posix_path.endswith("repro/util/rng.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = ctx.resolve(node.func)
            if qname is None:
                continue
            in_random = qname.startswith("random.")
            in_np_random = qname.startswith("numpy.random.")
            if not (in_random or in_np_random):
                continue
            leaf = qname.rsplit(".", 1)[-1]
            if leaf[:1].isupper():
                continue  # explicit generator classes are deterministic
            if leaf == "default_rng":
                detail = (
                    f"`{qname}` bypasses the shared RNG entry point — "
                    "accept a `seed_or_rng` and call "
                    "`repro.util.rng.resolve_rng(seed_or_rng)` instead"
                )
            else:
                detail = (
                    f"`{qname}` mutates/reads ambient RNG state — thread "
                    "an explicit generator from "
                    "`repro.util.rng.resolve_rng(seed)` through the call "
                    "chain"
                )
            yield self.finding(
                ctx,
                node,
                detail + ", or certify with `# repro: noqa(RL011)`",
            )


@register
class NondetIterationIntoSink(Rule):
    """RL012 — unordered iteration flowing into a deterministic sink.

    ``set`` iteration order is salted per process; ``os.listdir`` /
    ``glob`` / ``Path.iterdir`` order is filesystem-dependent.  Content
    built from them is fine to *aggregate* (sums, counts) but must not
    reach order-sensitive sinks — checkpoint-journal writes, fingerprint
    computations, ``Metrics`` merges, trace emission — without an
    intervening ``sorted(...)``: two runs of the same experiment would
    journal different byte streams and resume would refuse the mismatch.
    Dataflow-based: the taint engine follows the unordered value through
    assignments, loop variables, comprehensions, and container mutation
    to the sink argument.  Plain ``dict`` iteration is deliberately not
    a source — insertion order is deterministic since Python 3.7.
    """

    code = "RL012"
    summary = "unordered iteration reaches a deterministic sink unsorted"

    _FS_QNAMES = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )
    _PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})
    _SINK_METHODS = {
        "record": "a checkpoint-journal/metrics write",
        "merge": "a metrics merge",
        "emit": "a trace sink",
        "event": "a trace sink",
    }
    _ORDER_INSENSITIVE = frozenset(
        {"sorted", "len", "sum", "min", "max", "any", "all"}
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test_file and ctx.in_package()

    # ------------------------------------------------------ TaintSpec

    def source(self, node: ast.expr, resolve) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        qname = resolve(func)
        if qname in self._FS_QNAMES:
            return True
        return (
            qname is None
            and isinstance(func, ast.Attribute)
            and func.attr in self._PATH_METHODS
        )

    def sanitizer(self, call: ast.Call, resolve) -> bool:
        return (
            isinstance(call.func, ast.Name)
            and call.func.id in self._ORDER_INSENSITIVE
        )

    def sink(self, call: ast.Call, resolve) -> str | None:
        func = call.func
        leaf = None
        if isinstance(func, ast.Attribute):
            leaf = func.attr
        elif isinstance(func, ast.Name):
            leaf = func.id
        if leaf is not None and "fingerprint" in leaf.lower():
            return "a fingerprint computation"
        if isinstance(func, ast.Attribute) and func.attr in self._SINK_METHODS:
            return self._SINK_METHODS[func.attr]
        if any(kw.arg == "fingerprint" for kw in call.keywords):
            return "a fingerprint argument"
        return None

    # ----------------------------------------------------------- check

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for hit in run_taint(func, self, ctx.resolve):
                src = hit.sources[0]
                src_text = ctx.segment(src) or type(src).__name__
                yield self.finding(
                    ctx,
                    hit.sink,
                    f"value derived from unordered `{src_text}` (line "
                    f"{src.lineno}) reaches {hit.label} — iteration order "
                    "is nondeterministic; wrap the iteration in "
                    "`sorted(...)`, or certify with `# repro: noqa(RL012)`",
                )


@register
class ExactnessTaint(Rule):
    """RL013 — float-introducing ops reaching an ``edge_loads`` return.

    Paper loads are rationals with denominator ``routing_load_quantum``;
    the engine contract (PR 6) is that every backend snaps its float
    accumulation back to that lattice with
    :func:`repro.load.quantize.snap_loads` before returning.  This pass
    taints float-introducing expressions (true division, ``float()``,
    ``np.fft``/``mean`` results) inside any ``repro.load`` function
    whose name contains ``edge_loads`` and reports returns the taint can
    reach without passing through ``snap_loads`` (or an integral
    rounding).  The reference oracle, whose raw float accumulation *is*
    the definition under test, certifies itself with a noqa.
    """

    code = "RL013"
    summary = "unsnapped float arithmetic reaches an edge_loads return"

    _SANITIZER_QNAMES = frozenset(
        {"repro.load.quantize.snap_loads", "numpy.rint"}
    )
    _SANITIZER_LEAVES = frozenset({"snap_loads", "rint", "round", "int"})
    _FLOAT_QNAMES = frozenset(
        {"numpy.true_divide", "numpy.divide", "numpy.mean", "numpy.average"}
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("load")

    # ------------------------------------------------------ TaintSpec

    def source(self, node: ast.expr, resolve) -> bool:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        qname = resolve(func)
        if qname is not None:
            return qname in self._FLOAT_QNAMES or qname.startswith(
                "numpy.fft."
            )
        return isinstance(func, ast.Attribute) and func.attr == "mean"

    def sanitizer(self, call: ast.Call, resolve) -> bool:
        func = call.func
        qname = resolve(func)
        if qname in self._SANITIZER_QNAMES:
            return True
        leaf = None
        if isinstance(func, ast.Attribute):
            leaf = func.attr
        elif isinstance(func, ast.Name):
            leaf = func.id
        return leaf in self._SANITIZER_LEAVES

    def sink(self, call: ast.Call, resolve) -> str | None:
        return None  # the sink is the return statement, handled below

    # ----------------------------------------------------------- check

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "edge_loads" in func.name:
                yield from self._check_function(ctx, func)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        analysis = TaintAnalysis(func, self, ctx.resolve)
        for _block, unit in analysis.iter_units():
            if not isinstance(unit, ast.Return) or unit.value is None:
                continue
            sources = analysis.taint_of(unit, unit.value)
            if not sources:
                continue
            src = sources[0]
            src_text = ctx.segment(src) or type(src).__name__
            yield self.finding(
                ctx,
                unit,
                f"`{func.name}` returns loads that float-introducing "
                f"`{src_text}` (line {src.lineno}) can reach without "
                "`repro.load.quantize.snap_loads` — snap to the routing "
                "quantum before returning, or certify with "
                "`# repro: noqa(RL013)`",
            )


@register
class ExecutorWorkerPurity(Rule):
    """RL014 — an unpicklable or impure worker handed to the executor.

    :class:`repro.exec.ResilientExecutor` ships its worker across a
    process boundary: lambdas and nested functions fail to pickle at
    submit time (or worse, only on the fallback path), and a worker that
    reads a module global some *other* function mutates sees whatever
    the fork copied — not the parent's later writes — which is silent
    nondeterminism under retries.  The sanctioned worker-state pattern
    (globals written by the very ``initializer=`` passed alongside the
    worker) is exempt.
    """

    code = "RL014"
    summary = "lambda/closure or mutated-global worker given to ResilientExecutor"

    _EXECUTOR_QNAMES = frozenset(
        {
            "repro.exec.ResilientExecutor",
            "repro.exec.executor.ResilientExecutor",
        }
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test_file

    def _is_executor_call(self, ctx: FileContext, node: ast.Call) -> bool:
        qname = ctx.resolve(node.func)
        if qname is not None:
            return qname in self._EXECUTOR_QNAMES
        func = node.func
        leaf = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return leaf == "ResilientExecutor"

    @staticmethod
    def _worker_expr(node: ast.Call) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == "worker_fn":
                return kw.value
        return node.args[0] if node.args else None

    @staticmethod
    def _initializer_name(node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                return kw.value.id
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = FunctionScopes(ctx.tree)
        usage = GlobalUsage(ctx.tree)
        defs_by_name: dict[str, list[ast.AST]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs_by_name.setdefault(node.name, []).append(node)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_executor_call(ctx, node):
                continue
            worker = self._worker_expr(node)
            if worker is None:
                continue
            if isinstance(worker, ast.Lambda):
                yield self.finding(
                    ctx,
                    worker,
                    "lambda worker given to ResilientExecutor — workers "
                    "cross a process boundary and must be importable "
                    "module-level functions",
                )
                continue
            if not isinstance(worker, ast.Name):
                continue
            name = worker.id
            if name in scopes.module_functions:
                impure = usage.reads(name) & usage.mutated_globals()
                init_name = self._initializer_name(node)
                if init_name is not None:
                    impure -= usage.writes(init_name)
                if impure:
                    listed = ", ".join(
                        f"`{g}` (mutated by "
                        + "/".join(usage.mutators_of(g))
                        + ")"
                        for g in sorted(impure)
                    )
                    yield self.finding(
                        ctx,
                        worker,
                        f"worker `{name}` reads mutated module globals: "
                        f"{listed} — forked workers see a stale copy; pass "
                        "the state through `initializer=`/payloads, or "
                        "certify with `# repro: noqa(RL014)`",
                    )
            elif any(
                scopes.is_nested(d) for d in defs_by_name.get(name, [])
            ):
                yield self.finding(
                    ctx,
                    worker,
                    f"worker `{name}` is a nested function (closure) — it "
                    "cannot pickle across the process boundary; hoist it "
                    "to module level",
                )


@register
class SpanOutsideWith(Rule):
    """RL015 — ``tracer.span(...)`` used outside a ``with`` statement.

    A :class:`repro.obs.tracer.Span` only records on ``__exit__``; a
    span created outside a ``with`` (stored, returned, or discarded)
    silently drops its timing and, with an active tracer, corrupts span
    nesting for everything recorded while it dangles.  Chained
    annotations inside the with-item (``with tracer.span("x").annotate(
    ...)``) are recognized.  The tracer module itself and tests are
    exempt.
    """

    code = "RL015"
    summary = "tracer.span(...) outside a `with` statement"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file or not ctx.in_package():
            return False
        return not ctx.posix_path.endswith("repro/obs/tracer.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr: ast.expr | None = item.context_expr
                    while isinstance(expr, ast.Call):
                        allowed.add(id(expr))
                        func = expr.func
                        expr = (
                            func.value
                            if isinstance(func, ast.Attribute)
                            else None
                        )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in allowed
                and self._tracer_like(ctx, node.func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`{ctx.segment(node.func)}(...)` outside a `with` — "
                    "spans record on __exit__; write "
                    "`with tracer.span(...):`, or certify a deliberate "
                    "handle with `# repro: noqa(RL015)`",
                )

    @staticmethod
    def _tracer_like(ctx: FileContext, receiver: ast.expr) -> bool:
        segment = ctx.segment(receiver).lower()
        return "tracer" in segment


@register
class PerPlacementLoopEval(Rule):
    """RL016 — per-placement load evaluation loop that should batch.

    A loop in :mod:`repro.placements` or :mod:`repro.experiments` that
    calls a full load evaluator (``edge_loads`` / ``emax`` / the
    module-level ``*_edge_loads`` functions) once per placement pays the
    spectral-plan setup once per call; the batched facade
    (:meth:`repro.load.engine.LoadEngine.edge_loads_many` /
    ``emax_many``) amortizes one stacked transform over the whole block
    and is bit-identical after the integer snap-back.  Loops that build
    a :class:`~repro.torus.topology.Torus` in their body are per-torus
    sweeps — a batch cannot span tori, so they are exempt.  Reference
    oracles certify themselves with ``# repro: noqa(RL016)``.
    """

    code = "RL016"
    summary = "per-placement load-evaluation loop in placements/experiments"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
              ast.DictComp, ast.GeneratorExp)

    #: leaf callable names that evaluate one placement from scratch.
    _EVAL_LEAVES = frozenset({
        "edge_loads",
        "emax",
        "odr_edge_loads",
        "udr_edge_loads",
        "edge_loads_reference",
        "fft_edge_loads",
        "displacement_edge_loads",
    })

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("placements") or ctx.in_package("experiments")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # a loop nest that constructs a Torus is a per-torus sweep: no
        # single batch can span its iterations, so the whole nest —
        # inner per-placement loops included — is exempt.
        exempt: set[int] = set()
        for loop in ast.walk(ctx.tree):
            if isinstance(loop, self._LOOPS) and self._builds_torus(loop):
                for sub in ast.walk(loop):
                    if isinstance(sub, self._LOOPS):
                        exempt.add(id(sub))
        reported: set[tuple[int, int]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, self._LOOPS) or id(loop) in exempt:
                continue
            for node in self._per_iteration_nodes(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name not in self._EVAL_LEAVES:
                    continue
                key = (node.lineno, node.col_offset)
                if key in reported:  # nested loops see the same call twice
                    continue
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"per-placement `{name}` call inside a loop — batch "
                    "the placements and route through "
                    "`LoadEngine.edge_loads_many`/`emax_many` (one stacked "
                    "spectral transform per block, bit-identical after "
                    "snap-back), or suppress with `# repro: noqa(RL016)` "
                    "if this site is deliberately per-placement",
                )

    @staticmethod
    def _per_iteration_nodes(loop: ast.AST) -> Iterator[ast.AST]:
        """Nodes evaluated once per loop iteration.

        A ``for`` loop's iterable and a comprehension's outermost source
        expression run exactly once — calls there are not per-placement
        work and are excluded."""
        if isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(loop, ast.While):
                yield from ast.walk(loop.test)
            for stmt in [*loop.body, *loop.orelse]:
                yield from ast.walk(stmt)
            return
        once = {id(n) for n in ast.walk(loop.generators[0].iter)}
        for node in ast.walk(loop):
            if id(node) not in once and node is not loop:
                yield node

    @staticmethod
    def _builds_torus(loop: ast.AST) -> bool:
        """Whether the loop constructs a ``Torus`` — a per-torus sweep,
        which batched evaluation cannot serve."""
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "Torus":
                return True
        return False


@register
class DynamicTelemetryName(Rule):
    """RL017 — dynamic span/metric name fed into the telemetry registry.

    Trace tooling — ``repro trace diff``, the stitcher's canonical form,
    the bench observatory's pinned metric names, Prometheus exposition —
    keys everything on span and metric *names*.  A name built at runtime
    (f-string, ``+``, ``.format``, a variable) fragments those keys into
    unbounded families that no dashboard, diff, or grep can enumerate,
    and silently bloats the metrics registry.  Names passed to
    ``tracer.span`` / ``tracer.event`` / ``tracer.record_span`` and to
    ``metrics.counter`` / ``gauge`` / ``histogram`` must therefore be
    dotted lowercase string literals (``"engine.fft.fast_path"``).
    Closed sets route through literal ``if``/``elif`` dispatch (see
    ``repro.load.engine.facade._count_backend_call``); a deliberately
    dynamic name certifies itself with ``# repro: noqa(RL017)``.  The
    observability package itself (which implements the registry) and
    tests are exempt.
    """

    code = "RL017"
    summary = "dynamic span/metric name fed to tracer/Metrics"

    #: tracer methods whose first argument is a span/event name.
    _TRACER_METHODS = frozenset({"span", "event", "record_span"})
    #: metrics-registry factories whose first argument is a metric name.
    _METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

    #: dotted lowercase: at least two ``[a-z][a-z0-9_]*`` segments.
    _NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file or not ctx.in_package():
            return False
        return not ctx.in_package("obs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.args
            ):
                continue
            method = node.func.attr
            receiver = ctx.segment(node.func.value).lower()
            if method in self._TRACER_METHODS:
                if "tracer" not in receiver:
                    continue
            elif method in self._METRIC_METHODS:
                if "metrics" not in receiver:
                    continue
            else:
                continue
            name_arg = node.args[0]
            if (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                and self._NAME_RE.match(name_arg.value)
            ):
                continue
            rendered = ctx.segment(name_arg)
            if len(rendered) > 40:
                rendered = rendered[:37] + "..."
            yield self.finding(
                ctx,
                name_arg,
                f"`{ctx.segment(node.func)}({rendered}, ...)` — span/metric "
                "names must be dotted lowercase string literals (e.g. "
                '`"engine.fft.fast_path"`) so trace diffs, bench pins, and '
                "Prometheus exposition see a closed name set; dispatch "
                "closed families through literal if/elif, or certify with "
                "`# repro: noqa(RL017)`",
            )

"""The built-in rule set: repo-specific invariants RL001–RL010.

Each rule generalizes a bug class this repository has actually hit (see
``docs/STATIC_ANALYSIS.md`` for the catalogue and the PR-1 incidents the
first five rules grew out of).  Rules are heuristics, not proofs — the
``# repro: noqa(CODE)`` escape hatch exists precisely for the sites where
a human can certify the invariant holds.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint import FileContext, Finding, Rule, register

__all__ = [
    "FloorOnLoadExpression",
    "UnguardedDivision",
    "RoutingMissingInvarianceFlag",
    "LoadFacadeBypass",
    "ConstructorSkipsValidation",
    "UnusedImport",
    "MutableDefaultArgument",
    "FullLoadEvalInLoop",
    "DirectPoolConstruction",
    "WallClockOrPrintInLibrary",
]

#: identifier fragments that mark a value as a real-valued load figure —
#: flooring these silently truncates Definition-4/5 quantities (the PR-1
#: ``LinkCountSummary.normalized`` bug class).
_LOAD_KEYWORDS = (
    "load",
    "ratio",
    "bound",
    "emax",
    "frac",
    "weight",
    "prob",
    "latency",
)

#: denominator spellings that are known nonzero mathematical constants.
_NONZERO_CONSTANTS = frozenset(
    {"np.pi", "numpy.pi", "math.pi", "math.tau", "math.e"}
)

#: the load-engine internals that must only be reached through the
#: :class:`repro.load.engine.LoadEngine` facade.
_ENGINE_INTERNALS = frozenset(
    {
        "edge_loads_reference",
        "ReferenceBackend",
        "VectorizedBackend",
        "FFTBackend",
        "DisplacementBackend",
        "ParallelBackend",
    }
)


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_loadlike(name: str) -> bool:
    lowered = name.lower()
    return any(key in lowered for key in _LOAD_KEYWORDS)


def _is_floor_call(node: ast.Call) -> bool:
    """``math.floor(...)`` / ``np.floor(...)`` / bare ``floor(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "floor"
    if isinstance(func, ast.Attribute):
        return func.attr == "floor"
    return False


@register
class FloorOnLoadExpression(Rule):
    """RL001 — ``//`` or ``floor`` applied to a load/ratio/bound value.

    Loads, linearity ratios, and the Eq. 6/8/9 bounds are rationals;
    flooring them silently truncates (PR 1's
    ``LinkCountSummary.normalized`` bug).  Index/count arithmetic such as
    ``m // 2`` ring splits is whitelisted by the identifier heuristic:
    only expressions that *mention* a load-like identifier (or assign to
    one) are flagged.
    """

    code = "RL001"
    summary = "floor-division/floor() on a load, ratio, or bound expression"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()

        def flag(node: ast.AST, detail: str) -> Iterator[Finding]:
            key = (node.lineno, node.col_offset)
            if key not in reported:
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"{detail} — loads and bounds are rationals; use true "
                    "division (or suppress with `# repro: noqa(RL001)` if "
                    "this is genuinely integral)",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.FloorDiv):
                if any(_is_loadlike(name) for name in _identifiers(node)):
                    yield from flag(
                        node,
                        f"floor division in `{ctx.segment(node)}` involves a "
                        "load-like value",
                    )
            elif isinstance(node, ast.Call) and _is_floor_call(node):
                if any(
                    _is_loadlike(name)
                    for arg in node.args
                    for name in _identifiers(arg)
                ):
                    yield from flag(
                        node,
                        f"`{ctx.segment(node)}` floors a load-like value",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                if node.value is None or not any(
                    _is_loadlike(name)
                    for target in targets
                    for name in _identifiers(target)
                ):
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.BinOp) and isinstance(
                        sub.op, ast.FloorDiv
                    ):
                        yield from flag(
                            sub,
                            "floor division assigned to a load-like name "
                            f"(`{ctx.segment(node)}`)",
                        )
                    elif isinstance(sub, ast.Call) and _is_floor_call(sub):
                        yield from flag(
                            sub,
                            "floor() result assigned to a load-like name "
                            f"(`{ctx.segment(node)}`)",
                        )


class _ScopeGuards:
    """Guard expressions visible inside one function (or module) scope."""

    def __init__(self, inherited: tuple[str, ...] = ()):
        self.texts: list[str] = list(inherited)

    def add(self, text: str) -> None:
        if text:
            self.texts.append(text)

    def covers(self, denominator_text: str) -> bool:
        # Word-boundary match so a denominator `k` is not "guarded" by an
        # unrelated `if link:` test.
        pattern = re.compile(
            rf"(?<![\w.]){re.escape(denominator_text)}(?![\w(])"
        )
        return any(pattern.search(guard) for guard in self.texts)


@register
class UnguardedDivision(Rule):
    """RL002 — division by a bare name with no visible zero guard.

    Scoped to the numeric hot paths (``repro.load``, ``repro.bisection``,
    ``repro.sim``) where a zero denominator is a latent
    ``ZeroDivisionError`` (PR 1's empty-path-set crash class).  A
    denominator counts as guarded when the enclosing function mentions it
    in any ``if``/``while``/``assert``/ternary test, comprehension
    filter, or ``max``/``min`` clamp.  Modulus is deliberately out of
    scope: ``x % k`` by a validated radix is the codebase's cyclic
    bread-and-butter and never reaches zero past construction.
    """

    code = "RL002"
    summary = "division without a zero guard in a load/bisection/sim hot path"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return any(
            ctx.in_package(pkg) for pkg in ("load", "bisection", "sim")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree.body, _ScopeGuards())

    # ------------------------------------------------------------ helpers

    def _check_scope(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        inherited: _ScopeGuards,
    ) -> Iterator[Finding]:
        guards = _ScopeGuards(tuple(inherited.texts))
        nested: list[list[ast.stmt]] = []
        divisions: list[ast.BinOp] = []
        for node in self._walk_shallow(body, nested):
            if isinstance(node, (ast.If, ast.While)):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.IfExp):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.Assert):
                guards.add(ctx.segment(node.test))
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    guards.add(ctx.segment(cond))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in ("max", "min"):
                    for arg in node.args:
                        guards.add(ctx.segment(arg))
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv)
            ):
                divisions.append(node)
        for division in divisions:
            key = self._denominator_key(ctx, division.right)
            if key is None:
                continue
            if guards.covers(key):
                continue
            yield self.finding(
                ctx,
                division,
                f"division by `{ctx.segment(division.right)}` has no zero "
                "guard in this scope — raise a descriptive error or clamp "
                "before dividing",
            )
        for sub_body in nested:
            yield from self._check_scope(ctx, sub_body, guards)

    @staticmethod
    def _walk_shallow(
        body: list[ast.stmt], nested: list[list[ast.stmt]]
    ) -> Iterator[ast.AST]:
        """Walk statements without descending into nested def/class bodies."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                nested.append(node.body)
                # decorators/defaults still belong to the outer scope
                stack.extend(ast.iter_child_nodes(node))
                for child in node.body:
                    if child in stack:
                        stack.remove(child)
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _denominator_key(
        self, ctx: FileContext, denom: ast.expr
    ) -> str | None:
        """The text to look for in guards, or ``None`` when exempt."""
        if isinstance(denom, ast.Constant):
            if denom.value == 0:
                return str(denom.value)  # certain bug; nothing can guard it
            return None
        if isinstance(denom, ast.Name):
            return denom.id
        if isinstance(denom, ast.Attribute):
            text = ctx.segment(denom)
            if text in _NONZERO_CONSTANTS:
                return None
            return text
        if (
            isinstance(denom, ast.Call)
            and isinstance(denom.func, ast.Name)
            and denom.func.id == "len"
            and len(denom.args) == 1
        ):
            return ctx.segment(denom.args[0])
        return None


@register
class RoutingMissingInvarianceFlag(Rule):
    """RL003 — a direct ``RoutingAlgorithm`` subclass with no explicit
    ``translation_invariant`` declaration.

    The displacement-class cache dispatches on this flag; inheriting the
    base default silently (PR 1's missing declaration) either forfeits
    the cache or — worse, if the default ever changed — corrupts loads
    for non-invariant routings.  Direct subclasses must state the flag;
    deeper subclasses inherit an explicit ancestor value.
    """

    code = "RL003"
    summary = "RoutingAlgorithm subclass missing translation_invariant"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._bases_routing_algorithm(node):
                continue
            if self._declares_flag(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"routing class `{node.name}` subclasses RoutingAlgorithm "
                "directly but does not declare `translation_invariant` — "
                "state it explicitly (the displacement cache dispatches on "
                "this flag)",
            )

    @staticmethod
    def _bases_routing_algorithm(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else None
            if name is None and isinstance(base, ast.Attribute):
                name = base.attr
            if name == "RoutingAlgorithm":
                return True
        return False

    @staticmethod
    def _declares_flag(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "translation_invariant"
                    ):
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "translation_invariant"
                ):
                    return True
        return False


@register
class LoadFacadeBypass(Rule):
    """RL004 — load-engine internals referenced outside ``repro.load``.

    ``edge_loads_reference`` and the backend classes are implementation
    details of the :class:`repro.load.engine.LoadEngine` facade; code
    that imports them directly bypasses backend selection, the default
    engine, and future sharding/caching policy.  Tests are exempt — the
    cross-check suites *must* reach the oracle directly.
    """

    code = "RL004"
    summary = "direct use of load-engine internals outside repro.load"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        if ctx.in_package("load") or ctx.in_package("devtools"):
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[int] = set()

        def flag(node: ast.AST, name: str) -> Iterator[Finding]:
            if node.lineno not in reported:
                reported.add(node.lineno)
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` is a load-engine internal — go through "
                    "`repro.load.engine.LoadEngine` (e.g. "
                    "`LoadEngine('reference').edge_loads(...)`) instead",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _ENGINE_INTERNALS:
                        yield from flag(node, alias.name)
            elif isinstance(node, ast.Attribute):
                if node.attr in _ENGINE_INTERNALS:
                    yield from flag(node, node.attr)
            elif isinstance(node, ast.Name):
                if node.id in _ENGINE_INTERNALS and isinstance(
                    node.ctx, ast.Load
                ):
                    yield from flag(node, node.id)


@register
class ConstructorSkipsValidation(Rule):
    """RL005 — a public torus/mixedradix constructor with no
    ``repro.util.validation`` call.

    Parameter checks live in :mod:`repro.util.validation` so error
    messages stay uniform and tests pin one behaviour; inline ``raise``
    statements drift.  Any public class under ``repro.torus`` or
    ``repro.mixedradix`` that defines ``__init__`` must call a
    ``check_*`` helper (directly or via ``validation.check_*``).
    """

    code = "RL005"
    summary = "torus/mixedradix constructor skips repro.util.validation"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("torus") or ctx.in_package("mixedradix")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            init = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            if self._calls_validator(init):
                continue
            yield self.finding(
                ctx,
                init,
                f"`{node.name}.__init__` never calls a "
                "`repro.util.validation` `check_*` helper — centralize its "
                "parameter checks there",
            )

    @staticmethod
    def _calls_validator(init: ast.FunctionDef) -> bool:
        for node in ast.walk(init):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name is not None and name.startswith("check_"):
                return True
        return False


@register
class UnusedImport(Rule):
    """RL006 — an imported name never used in the module.

    ``__future__`` imports, ``__init__.py`` re-exports, and ``conftest``
    fixture plumbing are exempt; a string constant equal to the name
    (``__all__`` entries) counts as a use.  Flake8-style ``# noqa`` on
    the import line is honored too, so side-effect imports marked for
    ecosystem tools don't need a second pragma.
    """

    code = "RL006"
    summary = "unused import"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_init_file and ctx.path.name != "conftest.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imported: list[tuple[str, ast.stmt]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = (alias.asname or alias.name).split(".")[0]
                    imported.append((bound, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.append((alias.asname or alias.name, node))
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                used.add(node.value)
                # forward-reference strings ("np.ndarray | Iterable[int]")
                # keep their imports alive; prose docstrings don't match.
                if re.fullmatch(r"[\w.\[\], |']+", node.value):
                    used.update(re.findall(r"[A-Za-z_]\w*", node.value))
        for name, node in imported:
            line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) else ""
            if "noqa" in line:
                continue
            if name not in used:
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` is imported but never used — remove it (or "
                    "re-export via `__all__` if it is public API)",
                )


@register
class MutableDefaultArgument(Rule):
    """RL007 — a mutable default argument (shared across calls)."""

    code = "RL007"
    summary = "mutable default argument"

    _MUTABLE_FACTORIES = ("list", "dict", "set")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default `{ctx.segment(default)}` in "
                        f"`{node.name}` is shared across calls — default to "
                        "None and build inside the body",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_FACTORIES
        )


@register
class FullLoadEvalInLoop(Rule):
    """RL008 — ``odr_edge_loads`` called inside a loop in ``placements/``.

    A full evaluation is :math:`O(|P|^2)` pair work; search and
    enumeration code in :mod:`repro.placements` that re-evaluates inside
    a loop almost always wants the :math:`O(|P|)` incremental kernels
    (:func:`repro.load.odr_loads.odr_edge_loads_add_delta` /
    ``_swap_delta``) instead — the difference is the entire speed-up of
    the exact-search engine.  Sites that *are* the brute-force oracle
    (e.g. the catalog sweep) certify themselves with
    ``# repro: noqa(RL008)``.
    """

    code = "RL008"
    summary = "full odr_edge_loads evaluation inside a loop in placements/"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
              ast.DictComp, ast.GeneratorExp)

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return ctx.in_package("placements")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported: set[tuple[int, int]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, self._LOOPS):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name != "odr_edge_loads":
                    continue
                key = (node.lineno, node.col_offset)
                if key in reported:  # nested loops see the same call twice
                    continue
                reported.add(key)
                yield self.finding(
                    ctx,
                    node,
                    "full O(|P|^2) `odr_edge_loads` evaluation inside a "
                    "loop — use the incremental kernels "
                    "(`odr_edge_loads_add_delta`/`_swap_delta`), or "
                    "suppress with `# repro: noqa(RL008)` if this site is "
                    "deliberately the brute-force oracle",
                )


@register
class DirectPoolConstruction(Rule):
    """RL009 — a process pool constructed outside ``repro.exec``.

    Bare ``ProcessPoolExecutor``/``multiprocessing.Pool`` fan-out has no
    retry budget, no deadline watchdog, no checkpoint journal, and no
    serial fallback — exactly the failure modes the resilient execution
    layer exists to absorb.  All pool call sites go through
    :class:`repro.exec.ResilientExecutor`; the one legitimate raw
    constructor (inside the executor itself) certifies with
    ``# repro: noqa(RL009)``.  Tests are exempt — harness cross-checks
    may drive bare pools on purpose.
    """

    code = "RL009"
    summary = "direct process-pool construction outside repro/exec"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file:
            return False
        return not ctx.in_package("exec")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        pool_names: set[str] = set()  # names bound to a pool constructor
        mp_aliases: set[str] = set()  # module aliases of multiprocessing
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        mp_aliases.add(
                            (alias.asname or alias.name).split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if (
                        alias.name == "ProcessPoolExecutor"
                        and module.startswith("concurrent.futures")
                    ):
                        pool_names.add(bound)
                    elif alias.name == "Pool" and module.startswith(
                        "multiprocessing"
                    ):
                        pool_names.add(bound)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged = None
            if isinstance(func, ast.Name) and func.id in pool_names:
                flagged = func.id
            elif isinstance(func, ast.Attribute):
                if func.attr == "ProcessPoolExecutor":
                    flagged = ctx.segment(func)
                elif func.attr == "Pool":
                    root = func.value
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if (
                        isinstance(root, ast.Name)
                        and root.id in mp_aliases
                    ):
                        flagged = ctx.segment(func)
            if flagged is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"`{flagged}` constructs a raw process pool — fan out "
                    "through `repro.exec.ResilientExecutor` (retries, "
                    "deadlines, checkpointing, serial fallback), or certify "
                    "an exempt site with `# repro: noqa(RL009)`",
                )


@register
class WallClockOrPrintInLibrary(Rule):
    """RL010 — wall-clock reads or bare ``print`` in library code.

    ``time.time()`` is NTP-steppable: durations derived from it can jump
    backwards or skew (the ``ExecutionReport.started_at`` bug class) —
    measure with ``time.perf_counter()``/``time.monotonic()`` and take
    the one informational wall-clock stamp via
    :func:`repro.obs.console.wall_clock`.  Bare ``print`` in library
    code pollutes machine-parsed stdout and ignores ``--quiet`` —
    results return to the caller; diagnostics go through
    :mod:`repro.obs.console`.  The CLI (stdout *is* its contract),
    ``devtools``, and the console module itself are exempt.
    """

    code = "RL010"
    summary = "wall-clock time.time()/bare print() in library code"

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file or not ctx.in_package():
            return False
        if ctx.path.name == "cli.py" or ctx.in_package("devtools"):
            return False
        return not ctx.posix_path.endswith("repro/obs/console.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases: set[str] = set()  # module aliases of `time`
        clock_names: set[str] = set()  # names bound by `from time import time`
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            clock_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
            ):
                # flag the reference itself, so `default_factory=time.time`
                # is caught even without a call
                yield self.finding(
                    ctx,
                    node,
                    "`time.time` is wall-clock (NTP-steppable) — measure "
                    "with `time.perf_counter()`, and take informational "
                    "timestamps via `repro.obs.console.wall_clock()`, or "
                    "certify with `# repro: noqa(RL010)`",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                if node.func.id in clock_names:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{node.func.id}()` (from time import time) is "
                        "wall-clock — measure with `time.perf_counter()` "
                        "or use `repro.obs.console.wall_clock()`, or "
                        "certify with `# repro: noqa(RL010)`",
                    )
                elif node.func.id == "print":
                    yield self.finding(
                        ctx,
                        node,
                        "bare `print()` in library code — return results to "
                        "the caller and route diagnostics through "
                        "`repro.obs.console` (quiet-aware stderr), or "
                        "certify with `# repro: noqa(RL010)`",
                    )

"""Function-scope and module-global usage analysis.

Two cheap passes the purity rules query:

* :class:`FunctionScopes` — which functions are nested inside other
  functions (closures), and which names each function closes over;
* :class:`GlobalUsage` — per module-level function, the module globals
  it *reads* and the globals it *mutates* through a ``global``
  declaration.  A worker function shipped to a process pool that reads
  a parent-mutated global is nondeterministic (the worker sees whatever
  the fork copied, not the parent's later writes) — unless the same
  fan-out's initializer is the thing that writes it, which is the
  sanctioned worker-state pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["FunctionScopes", "GlobalUsage"]

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound in ``func``'s own scope (params, assignments, defs)."""
    bound: set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in _scope_walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, _FUNCS + (ast.ClassDef,)) and node is not func:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            bound.update(node.names)
    return bound


def _scope_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without entering nested function scopes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCS + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class FunctionScopes:
    """Maps every function in a module to its enclosing function."""

    def __init__(self, tree: ast.Module):
        #: id(func node) → enclosing function node (``None`` at module level).
        self._enclosing: dict[int, ast.AST | None] = {}
        #: function name → module-level def node (last definition wins).
        self.module_functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._index(tree, None)

    def _index(self, node: ast.AST, enclosing: ast.AST | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCS):
                self._enclosing[id(child)] = enclosing
                if enclosing is None and not isinstance(node, ast.ClassDef):
                    self.module_functions[child.name] = child
                self._index(child, child)
            elif isinstance(child, ast.Lambda):
                self._enclosing[id(child)] = enclosing
                self._index(child, enclosing)
            else:
                self._index(child, enclosing)

    def is_nested(self, func: ast.AST) -> bool:
        """Whether ``func`` is defined inside another function (a closure)."""
        return self._enclosing.get(id(func)) is not None


class GlobalUsage:
    """Per module-level function: globals read vs globals mutated."""

    def __init__(self, tree: ast.Module):
        self.scopes = FunctionScopes(tree)
        self._module_names = self._collect_module_names(tree)
        self._reads: dict[str, frozenset[str]] = {}
        self._writes: dict[str, frozenset[str]] = {}
        for name, func in self.scopes.module_functions.items():
            reads, writes = self._analyze(func)
            self._reads[name] = reads
            self._writes[name] = writes

    @staticmethod
    def _collect_module_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _analyze(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[frozenset[str], frozenset[str]]:
        declared_global: set[str] = set()
        for node in _scope_walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        local = _local_bindings(func) - declared_global
        reads: set[str] = set()
        writes: set[str] = set()
        for node in _scope_walk(func):
            if not isinstance(node, ast.Name):
                continue
            if isinstance(node.ctx, ast.Load):
                if node.id in self._module_names and node.id not in local:
                    reads.add(node.id)
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                if node.id in declared_global:
                    writes.add(node.id)
        return frozenset(reads), frozenset(writes)

    # ------------------------------------------------------------- queries

    def reads(self, function_name: str) -> frozenset[str]:
        """Module globals the named function reads."""
        return self._reads.get(function_name, frozenset())

    def writes(self, function_name: str) -> frozenset[str]:
        """Module globals the named function mutates via ``global``."""
        return self._writes.get(function_name, frozenset())

    def mutated_globals(self) -> frozenset[str]:
        """Every module global some function mutates via ``global``."""
        out: set[str] = set()
        for writes in self._writes.values():
            out |= writes
        return frozenset(out)

    def mutators_of(self, name: str) -> tuple[str, ...]:
        """Names of the functions that mutate global ``name``."""
        return tuple(
            sorted(fn for fn, writes in self._writes.items() if name in writes)
        )

"""Per-function control-flow graphs and reaching definitions.

The CFG is statement-granular: every basic block carries an ordered list
of *units* — simple statements, plus the header nodes of compound
statements (an ``if``'s test lives in the block before the branch; a
``for`` statement itself appears as a unit modelling ``target =
next(iter)``).  Nested function and class bodies are opaque single
units: intraprocedural analyses do not descend into them.

:class:`ReachingDefinitions` is the classic gen/kill worklist solve over
that graph.  A *definition* is any binding of a simple local name —
assignment targets, tuple unpacking, augmented and annotated
assignments, ``for`` targets, ``with ... as`` names, walrus expressions
— identified by its defining unit node.  The dataflow/taint engine in
:mod:`repro.devtools.lint.semantics.dataflow` is built directly on the
per-unit reaching sets exposed here.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["BasicBlock", "ControlFlowGraph", "ReachingDefinitions"]

#: AST node types whose bodies form new scopes the CFG must not enter.
_NEW_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class BasicBlock:
    """One straight-line run of units with its successor edges."""

    __slots__ = ("index", "units", "successors")

    def __init__(self, index: int):
        self.index = index
        self.units: list[ast.AST] = []
        self.successors: list[int] = []

    def add_successor(self, index: int) -> None:
        if index not in self.successors:
            self.successors.append(index)

    def __repr__(self) -> str:
        return (
            f"BasicBlock({self.index}, units={len(self.units)}, "
            f"succ={self.successors})"
        )


class _LoopFrame:
    """Break/continue targets for the innermost enclosing loop."""

    __slots__ = ("continue_to", "break_to")

    def __init__(self, continue_to: int, break_to: int):
        self.continue_to = continue_to
        self.break_to = break_to


class ControlFlowGraph:
    """Statement-level CFG for one function body (or statement list)."""

    def __init__(self, blocks: list[BasicBlock], entry: int, exit: int):
        self.blocks = blocks
        self.entry = entry
        self.exit = exit

    # ------------------------------------------------------------ building

    @classmethod
    def for_function(
        cls, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "ControlFlowGraph":
        return cls.for_statements(func.body)

    @classmethod
    def for_statements(cls, body: list[ast.stmt]) -> "ControlFlowGraph":
        builder = _Builder()
        start = builder.new_block()
        end = builder.walk_body(body, start)
        if end is not None:
            builder.blocks[end].add_successor(builder.exit)
        return cls(builder.blocks, entry=start, exit=builder.exit)

    # ----------------------------------------------------------- traversal

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds

    def iter_units(self) -> Iterator[tuple[BasicBlock, ast.AST]]:
        """Every (block, unit) pair in block order."""
        for block in self.blocks:
            for unit in block.units:
                yield block, unit


class _Builder:
    """Recursive CFG construction with loop/exception frames."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.exit = self.new_block()  # block 0 is the virtual exit
        self.loops: list[_LoopFrame] = []
        # blocks that may transfer to an active exception handler
        self.handler_entries: list[list[int]] = []

    def new_block(self) -> int:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block.index

    # ------------------------------------------------------------- helpers

    def _note_may_raise(self, block: int) -> None:
        """Inside a try, any unit may jump to the handlers."""
        for entries in self.handler_entries:
            for handler in entries:
                self.blocks[block].add_successor(handler)

    # ---------------------------------------------------------------- walk

    def walk_body(self, body: list[ast.stmt], current: int) -> int | None:
        """Thread ``body`` from block ``current``; return the fall-through
        block, or ``None`` when every path leaves (return/raise/jump)."""
        live: int | None = current
        for stmt in body:
            if live is None:
                # unreachable code still gets a block so its units exist
                # for position queries, but no edges lead into it.
                live = self.new_block()
            live = self._walk_stmt(stmt, live)
        return live

    def _walk_stmt(self, stmt: ast.stmt, current: int) -> int | None:
        if isinstance(stmt, _NEW_SCOPE):
            # opaque: the def/class statement binds a name, nothing more.
            self.blocks[current].units.append(stmt)
            return current
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].units.append(stmt)
            self._note_may_raise(current)
            self.blocks[current].add_successor(self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].units.append(stmt)
            if self.loops:
                self.blocks[current].add_successor(self.loops[-1].break_to)
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].units.append(stmt)
            if self.loops:
                self.blocks[current].add_successor(self.loops[-1].continue_to)
            return None
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._walk_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].units.append(stmt)
            self._note_may_raise(current)
            return self.walk_body(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._walk_match(stmt, current)
        # simple statement
        self.blocks[current].units.append(stmt)
        self._note_may_raise(current)
        return current

    def _walk_if(self, stmt: ast.If, current: int) -> int | None:
        self.blocks[current].units.append(stmt)  # models the test
        self._note_may_raise(current)
        then_entry = self.new_block()
        self.blocks[current].add_successor(then_entry)
        then_exit = self.walk_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.new_block()
            self.blocks[current].add_successor(else_entry)
            else_exit = self.walk_body(stmt.orelse, else_entry)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self.new_block()
        if then_exit is not None:
            self.blocks[then_exit].add_successor(join)
        if else_exit is not None:
            self.blocks[else_exit].add_successor(join)
        return join

    def _walk_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int | None:
        header = self.new_block()
        self.blocks[current].add_successor(header)
        # the loop statement itself is the header unit: for a `for` loop
        # it models `target = next(iter)`; for `while`, the test.
        self.blocks[header].units.append(stmt)
        self._note_may_raise(header)
        body_entry = self.new_block()
        after = self.new_block()
        self.blocks[header].add_successor(body_entry)
        self.blocks[header].add_successor(after)
        self.loops.append(_LoopFrame(continue_to=header, break_to=after))
        body_exit = self.walk_body(stmt.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            self.blocks[body_exit].add_successor(header)
        if stmt.orelse:
            # `else` runs on normal loop exit; approximate by threading it
            # between the header and `after`.
            else_entry = self.new_block()
            self.blocks[header].add_successor(else_entry)
            else_exit = self.walk_body(stmt.orelse, else_entry)
            if else_exit is not None:
                self.blocks[else_exit].add_successor(after)
        return after

    def _walk_try(self, stmt: ast.Try, current: int) -> int | None:
        handler_blocks = [self.new_block() for _ in stmt.handlers]
        after = self.new_block()
        self.handler_entries.append(handler_blocks)
        body_exit = self.walk_body(stmt.body, current)
        self.handler_entries.pop()
        exits: list[int | None] = []
        if stmt.orelse:
            if body_exit is not None:
                exits.append(self.walk_body(stmt.orelse, body_exit))
        else:
            exits.append(body_exit)
        for handler, block in zip(stmt.handlers, handler_blocks):
            self.blocks[block].units.append(handler)  # models `as name`
            exits.append(self.walk_body(handler.body, block))
        live_exits = [e for e in exits if e is not None]
        if stmt.finalbody:
            final_entry = self.new_block()
            for e in live_exits:
                self.blocks[e].add_successor(final_entry)
            final_exit = self.walk_body(stmt.finalbody, final_entry)
            if final_exit is None:
                return None
            self.blocks[final_exit].add_successor(after)
            return after
        if not live_exits:
            return None
        for e in live_exits:
            self.blocks[e].add_successor(after)
        return after

    def _walk_match(self, stmt: ast.Match, current: int) -> int | None:
        self.blocks[current].units.append(stmt)  # models the subject
        self._note_may_raise(current)
        after = self.new_block()
        for case in stmt.cases:
            case_entry = self.new_block()
            self.blocks[current].add_successor(case_entry)
            case_exit = self.walk_body(case.body, case_entry)
            if case_exit is not None:
                self.blocks[case_exit].add_successor(after)
        # no case may match at all: fall through.
        self.blocks[current].add_successor(after)
        return after


# --------------------------------------------------------------- definitions


def _target_names(target: ast.expr) -> Iterator[str]:
    """Simple names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def unit_definitions(unit: ast.AST) -> tuple[str, ...]:
    """Local names a CFG unit (re)binds, in syntactic order."""
    names: list[str] = []
    if isinstance(unit, ast.Assign):
        for target in unit.targets:
            names.extend(_target_names(target))
    elif isinstance(unit, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(unit, ast.AnnAssign) and unit.value is None:
            return ()
        names.extend(_target_names(unit.target))
    elif isinstance(unit, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(unit.target))
    elif isinstance(unit, (ast.With, ast.AsyncWith)):
        for item in unit.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(unit, ast.ExceptHandler):
        if unit.name:
            names.append(unit.name)
    elif isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(unit.name)
    # walrus targets anywhere inside the unit's expressions
    for sub in ast.walk(unit) if not isinstance(unit, _NEW_SCOPE) else ():
        if isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
            names.append(sub.target.id)
    return tuple(names)


#: one definition: (variable name, the unit node that binds it).
Definition = tuple[str, ast.AST]


class ReachingDefinitions:
    """Worklist reaching-definitions over a :class:`ControlFlowGraph`.

    ``before(unit)`` returns the set of definitions live immediately
    before the unit executes — the core query the taint engine runs per
    name load.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._gen: dict[int, dict[str, set[ast.AST]]] = {}
        self._in: dict[int, dict[str, set[ast.AST]]] = {}
        self._before_unit: dict[int, dict[str, set[ast.AST]]] = {}
        self._solve()

    @staticmethod
    def _copy(state: dict[str, set[ast.AST]]) -> dict[str, set[ast.AST]]:
        return {var: set(units) for var, units in state.items()}

    @staticmethod
    def _apply(state: dict[str, set[ast.AST]], unit: ast.AST) -> None:
        for var in unit_definitions(unit):
            state[var] = {unit}  # strong update: kill previous defs

    def _transfer(
        self, block: BasicBlock, state: dict[str, set[ast.AST]]
    ) -> dict[str, set[ast.AST]]:
        out = self._copy(state)
        for unit in block.units:
            self._before_unit[id(unit)] = self._copy(out)
            self._apply(out, unit)
        return out

    def _solve(self) -> None:
        blocks = {b.index: b for b in self.cfg.blocks}
        in_sets: dict[int, dict[str, set[ast.AST]]] = {
            i: {} for i in blocks
        }
        out_sets: dict[int, dict[str, set[ast.AST]]] = {
            i: {} for i in blocks
        }
        work = sorted(blocks)
        while work:
            index = work.pop(0)
            block = blocks[index]
            out = self._transfer(block, in_sets[index])
            if out != out_sets[index]:
                out_sets[index] = out
                for succ in block.successors:
                    merged = in_sets[succ]
                    changed = False
                    for var, units in out.items():
                        have = merged.setdefault(var, set())
                        if not units <= have:
                            have |= units
                            changed = True
                    if (changed or succ not in work) and succ not in work:
                        work.append(succ)
        self._in = in_sets

    # ------------------------------------------------------------- queries

    def before(self, unit: ast.AST) -> dict[str, set[ast.AST]]:
        """Definitions reaching the program point just before ``unit``."""
        return self._before_unit.get(id(unit), {})

    def block_in(self, index: int) -> dict[str, set[ast.AST]]:
        """Definitions reaching the entry of block ``index``."""
        return self._in.get(index, {})

"""Whole-program semantic analysis for the repro lint framework.

The original lint rules were single-file AST pattern matchers; this
package grows them three capabilities they could not express:

* **project-wide symbol resolution and an import graph**
  (:mod:`~repro.devtools.lint.semantics.resolver`) — every local name is
  mapped through the file's imports to a fully qualified name
  (``from repro.load.engine import fft as f`` makes ``f.FFTBackend``
  resolve to ``repro.load.engine.fft.FFTBackend``), and a
  :class:`~repro.devtools.lint.semantics.resolver.Project` built over all
  linted files chases re-export chains (``repro.load.engine.LoadEngine``
  canonicalizes to ``repro.load.engine.facade.LoadEngine``) and exposes
  the module-level import graph;

* **per-function control-flow graphs with reaching definitions**
  (:mod:`~repro.devtools.lint.semantics.cfg`) — basic blocks, branch and
  loop edges, and a standard worklist reaching-definitions solve;

* **a small taint/dataflow framework**
  (:mod:`~repro.devtools.lint.semantics.dataflow`) — rules declare
  sources, sanitizers, and sinks as predicates over resolved names and
  AST shapes; the engine propagates taint over the CFG to a fixpoint and
  reports every sink reached by unsanitized taint.

Rules access all of this through :class:`FileContext.resolver` (always
available, built from the file's own imports) and ``FileContext.project``
(populated by :func:`repro.devtools.lint.lint_paths` when a whole
directory is linted; single-file runs get a one-module project).

Everything here is pure stdlib ``ast`` work: no module is ever imported,
so linting cannot execute repository code.
"""

from __future__ import annotations

from repro.devtools.lint.semantics.cfg import (
    BasicBlock,
    ControlFlowGraph,
    ReachingDefinitions,
)
from repro.devtools.lint.semantics.dataflow import (
    TaintAnalysis,
    TaintHit,
    TaintSpec,
    run_taint,
)
from repro.devtools.lint.semantics.resolver import (
    ImportResolver,
    ModuleInfo,
    Project,
    module_name_for_path,
)
from repro.devtools.lint.semantics.scopes import (
    FunctionScopes,
    GlobalUsage,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "ReachingDefinitions",
    "TaintAnalysis",
    "TaintHit",
    "TaintSpec",
    "run_taint",
    "ImportResolver",
    "ModuleInfo",
    "Project",
    "module_name_for_path",
    "FunctionScopes",
    "GlobalUsage",
]

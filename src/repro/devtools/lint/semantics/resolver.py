"""Alias-aware name resolution and the whole-program module index.

:class:`ImportResolver` answers, for one file, "what fully qualified
name does this expression denote?" using nothing but the file's import
statements (plus simple module-level aliasing assignments).  It never
imports anything — resolution is purely syntactic, so ``import numpy as
np`` makes ``np.random.rand`` resolve to ``numpy.random.rand`` whether
or not numpy is installed.

:class:`Project` indexes every linted file by dotted module name, builds
the import graph between them, and canonicalizes qualified names through
re-export chains: ``repro.load.engine.LoadEngine`` follows the
``from repro.load.engine.facade import LoadEngine`` line in
``engine/__init__.py`` down to ``repro.load.engine.facade.LoadEngine``.
Rules match on canonical names, which is what makes them alias- *and*
import-graph-aware.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "ImportResolver",
    "ModuleInfo",
    "Project",
    "module_name_for_path",
]

#: roots recognized as "this repository's code" when deriving module
#: names from paths (fixture snippets live under ``repro/...`` too).
_PACKAGE_ROOTS = ("repro",)


def module_name_for_path(path: Path) -> str:
    """Derive a dotted module name from a file path.

    ``.../src/repro/load/engine/fft.py`` → ``repro.load.engine.fft``;
    ``__init__.py`` names its package.  Files outside a recognized
    package root (tests, benchmarks, scripts) get a best-effort name
    from their path stem, which keeps them resolvable without colliding
    with library modules.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in _PACKAGE_ROOTS:
        if root in parts:
            start = len(parts) - 1 - parts[::-1].index(root)
            return ".".join(parts[start:])
    return ".".join(p for p in parts[-2:] if p not in ("/", "")) or "<anon>"


class ImportResolver:
    """Per-file resolution of local names to fully qualified names.

    Parameters
    ----------
    tree:
        The parsed module.
    module_name:
        Dotted name of the module being resolved (needed for relative
        imports; ``""`` disables them).
    is_package:
        Whether ``module_name`` names a package (``__init__.py``) — a
        package's own name is the base for its level-1 relative imports.
    """

    def __init__(
        self,
        tree: ast.Module,
        module_name: str = "",
        is_package: bool = False,
    ):
        self.module_name = module_name
        self.is_package = is_package
        #: local name → fully qualified origin (``np`` → ``numpy``).
        self.bindings: dict[str, str] = {}
        #: every module named by an import statement, resolved absolute.
        self.imported_modules: set[str] = set()
        self._collect(tree)

    # ------------------------------------------------------------ building

    def _relative_base(self, level: int) -> str | None:
        """The package that a ``level``-dot relative import is rooted at."""
        if level == 0:
            return ""
        if not self.module_name:
            return None
        parts = self.module_name.split(".")
        # a module's level-1 base is its parent package; a package's is
        # itself, so drop one segment less for __init__ files.
        drop = level if not self.is_package else level - 1
        if drop >= len(parts):
            return None
        return ".".join(parts[: len(parts) - drop])

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imported_modules.add(alias.name)
                    if alias.asname is not None:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # `import a.b.c` binds the top-level name `a`.
                        top = alias.name.split(".")[0]
                        self.bindings.setdefault(top, top)
            elif isinstance(node, ast.ImportFrom):
                base = self._relative_base(node.level)
                if base is None:
                    continue
                module = node.module or ""
                absolute = ".".join(p for p in (base, module) if p)
                if absolute:
                    self.imported_modules.add(absolute)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    origin = (
                        f"{absolute}.{alias.name}" if absolute else alias.name
                    )
                    self.bindings[bound] = origin
        # Simple module-level aliasing assignments (`rand = np.random.rand`)
        # extend the binding map; processed in source order so chains work.
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                origin = self.qualified_name(stmt.value)
                if origin is not None:
                    self.bindings.setdefault(stmt.targets[0].id, origin)

    # ----------------------------------------------------------- resolving

    def qualified_name(self, node: ast.AST) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a qualified name.

        Returns ``None`` for anything not rooted in an imported (or
        aliased) name — locals, call results, subscripts.
        """
        if isinstance(node, ast.Name):
            return self.bindings.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualified_name(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


class ModuleInfo:
    """One indexed module: path, tree, and its import resolver."""

    def __init__(self, name: str, path: Path, tree: ast.Module):
        self.name = name
        self.path = path
        self.tree = tree
        self.resolver = ImportResolver(
            tree,
            module_name=name,
            is_package=path.name == "__init__.py",
        )

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name!r})"


class Project:
    """A whole-program index over every linted module.

    Build once per lint run (``lint_paths`` does); rules then resolve
    names through :meth:`canonical` and walk :attr:`import_graph`.
    """

    #: re-export chains longer than this are assumed cyclic and abandoned.
    _MAX_CHASE = 32

    def __init__(self, modules: Iterable[ModuleInfo] = ()):
        self.modules: dict[str, ModuleInfo] = {}
        for info in modules:
            self.add(info)

    @classmethod
    def build(cls, files: Iterable[tuple[Path, ast.Module]]) -> "Project":
        """Index ``(path, tree)`` pairs into a project."""
        project = cls()
        for path, tree in files:
            project.add(ModuleInfo(module_name_for_path(path), path, tree))
        return project

    def add(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info

    def module(self, name: str) -> ModuleInfo | None:
        """The indexed module of that dotted name, if any."""
        return self.modules.get(name)

    # ------------------------------------------------------- import graph

    @property
    def import_graph(self) -> dict[str, tuple[str, ...]]:
        """``module → modules it imports`` (project members only), sorted."""
        graph: dict[str, tuple[str, ...]] = {}
        for name, info in sorted(self.modules.items()):
            edges: set[str] = set()
            for target in info.resolver.imported_modules:
                if target in self.modules and target != name:
                    edges.add(target)
            # `from pkg import sym` where pkg.sym is itself a module is an
            # edge to that module too.
            for origin in info.resolver.bindings.values():
                if origin in self.modules and origin != name:
                    edges.add(origin)
            graph[name] = tuple(sorted(edges))
        return graph

    def importers_of(self, name: str) -> tuple[str, ...]:
        """Project modules that import module ``name`` (reverse edges)."""
        return tuple(
            src for src, targets in self.import_graph.items() if name in targets
        )

    # ------------------------------------------------------ canonical names

    def _split_module_prefix(self, qname: str) -> tuple[str, list[str]] | None:
        """Longest indexed-module prefix of ``qname`` plus leftover parts."""
        parts = qname.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None

    def canonical(self, qname: str) -> str:
        """Follow re-export chains down to the defining module.

        ``repro.load.engine.LoadEngine`` → the origin recorded by the
        ``from .facade import LoadEngine`` binding in the package's
        ``__init__`` → ``repro.load.engine.facade.LoadEngine`` (itself
        canonicalized recursively).  Names that resolve outside the
        project, or that the owning module defines directly, come back
        unchanged.
        """
        seen: set[str] = set()
        current = qname
        for _ in range(self._MAX_CHASE):
            if current in seen:
                break
            seen.add(current)
            split = self._split_module_prefix(current)
            if split is None:
                break
            prefix, rest = split
            if not rest:
                break  # the name *is* a module; already canonical
            head, tail = rest[0], rest[1:]
            origin = self.modules[prefix].resolver.bindings.get(head)
            if origin is None or origin == f"{prefix}.{head}":
                break  # defined here (or self-referential): canonical
            current = ".".join([origin, *tail])
        return current

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        return f"Project({len(self.modules)} modules)"
